//! Failure injection: the coding layer must turn transport misbehaviour
//! into errors, never into silently wrong output.

use std::sync::Arc;

use bytes::Bytes;
use coded_terasort::coding::decode::DecodePipeline;
use coded_terasort::coding::encode::Encoder;
use coded_terasort::coding::intermediate::MapOutputStore;
use coded_terasort::coding::packet::CodedPacket;
use coded_terasort::coding::placement::PlacementPlan;
use coded_terasort::coding::CodedError;
use coded_terasort::net::fault::{FaultAction, FaultyTransport};
use coded_terasort::net::local::LocalFabric;
use coded_terasort::net::{NetError, Tag, Transport};

/// Builds keep-rule stores for a (k, r) deployment with deterministic
/// contents.
fn stores(k: usize, r: usize) -> Vec<MapOutputStore> {
    let plan = PlacementPlan::new(k, r).unwrap();
    (0..k)
        .map(|node| {
            let mut st = MapOutputStore::new();
            for fid in plan.files_of_node(node) {
                let f = plan.nodes_of_file(fid);
                for t in 0..k {
                    if plan.keeps_intermediate(node, f, t) {
                        let data: Vec<u8> = (0..20 + t * 3).map(|i| (t * 41 + i) as u8).collect();
                        st.insert(t, f, Bytes::from(data));
                    }
                }
            }
            st
        })
        .collect()
}

#[test]
fn truncated_packet_is_rejected_not_misdecoded() {
    let stores = stores(4, 2);
    let enc = Encoder::new(4, 2, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let wire = pkt.to_bytes();
    for cut in 0..wire.len() {
        assert!(
            CodedPacket::from_bytes(&wire[..cut]).is_err(),
            "truncation at {cut} must fail to parse"
        );
    }
}

#[test]
fn bitflip_in_header_is_caught_or_changes_attribution() {
    // Flip each header byte; the parse must either fail or produce a
    // packet whose decode then fails at a well-defined point. (Payload
    // bit-flips are undetectable without checksums — XOR codes have no
    // integrity layer; that is the transport's job, as in the paper's TCP.)
    let stores = stores(3, 2);
    let enc = Encoder::new(3, 2, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let wire = pkt.to_bytes();
    let header_len = wire.len() - pkt.payload.len();
    let mut outcomes = (0usize, 0usize); // (parse errors, decode errors)
    for i in 0..header_len {
        let mut bad = wire.clone();
        bad[i] ^= 0x01;
        match CodedPacket::from_bytes(&bad) {
            Err(_) => outcomes.0 += 1,
            Ok(parsed) => {
                let mut pipe = DecodePipeline::new(3, 2, 1).unwrap();
                if pipe.accept(&parsed, &stores[1]).is_err() {
                    outcomes.1 += 1;
                }
            }
        }
    }
    assert!(
        outcomes.0 + outcomes.1 >= header_len / 2,
        "most header corruptions must surface: {outcomes:?} of {header_len}"
    );
}

#[test]
fn decode_without_map_output_reports_missing_intermediate() {
    let stores = stores(3, 2);
    let enc = Encoder::new(3, 2, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let empty = MapOutputStore::new();
    let mut pipe = DecodePipeline::new(3, 2, 1).unwrap();
    let err = pipe.accept(&pkt, &empty).unwrap_err();
    assert!(matches!(err, CodedError::MissingIntermediate { .. }));
}

#[test]
fn dropped_frames_surface_as_timeouts() {
    // A transport that drops everything: the receiver's timed wait must
    // expire rather than hang or fabricate data.
    let fabric = LocalFabric::new(2);
    let lossy = FaultyTransport::new(
        Arc::new(fabric.endpoint(0)),
        Box::new(|_, _, _, _| FaultAction::Drop),
    );
    lossy
        .send(1, Tag::app(0), Bytes::from_static(b"vanishes"))
        .unwrap();
    assert_eq!(lossy.dropped(), 1);
    let rx = fabric.endpoint(1);
    let err = rx
        .recv_timeout(0, Tag::app(0), std::time::Duration::from_millis(30))
        .unwrap_err();
    assert!(matches!(err, NetError::Timeout { .. }));
}

#[test]
fn corrupted_wire_bytes_fail_engine_style_parsing() {
    // Simulate the engine's decode stage receiving a corrupted frame via a
    // corrupting transport.
    let fabric = LocalFabric::new(2);
    let stores = stores(2, 1);
    let enc = Encoder::new(2, 1, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let corruptor = FaultyTransport::new(
        Arc::new(fabric.endpoint(0)),
        Box::new(|_, _, payload, _| {
            let mut bad = payload.to_vec();
            bad[0] ^= 0xFF; // destroy the magic
            FaultAction::Corrupt(Bytes::from(bad))
        }),
    );
    corruptor
        .send(1, Tag::app(0), Bytes::from(pkt.to_bytes()))
        .unwrap();
    let raw = fabric.endpoint(1).recv(0, Tag::app(0)).unwrap();
    let err = CodedPacket::from_bytes(&raw).unwrap_err();
    assert!(matches!(err, CodedError::MalformedPacket { .. }));
}

#[test]
fn peer_shutdown_mid_shuffle_disconnects_cleanly() {
    let fabric = LocalFabric::new(3);
    let a = fabric.endpoint(0);
    let b = fabric.endpoint(2);
    // Node 2 dies (its mailbox closes); node 0's later receive from it
    // must fail with Disconnected instead of hanging.
    b.shutdown();
    let handle = std::thread::spawn(move || a.recv(2, Tag::app(0)));
    std::thread::sleep(std::time::Duration::from_millis(20));
    fabric.abort(); // cluster teardown path
    assert!(matches!(
        handle.join().unwrap(),
        Err(NetError::Disconnected { .. })
    ));
}
