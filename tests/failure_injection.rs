//! Failure injection: the coding layer must turn transport misbehaviour
//! into errors, never into silently wrong output — and, with the MDS
//! quorum decode, a straggling or dead sender must not hold the shuffle
//! hostage. The straggler tests inject deterministic slowdown rules
//! ({2×, 10×, ∞}) on one rank and hold the measured makespans inside the
//! `cts_netsim::straggler` model's brackets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use coded_terasort::coding::decode::DecodePipeline;
use coded_terasort::coding::encode::Encoder;
use coded_terasort::coding::intermediate::MapOutputStore;
use coded_terasort::coding::packet::CodedPacket;
use coded_terasort::coding::placement::PlacementPlan;
use coded_terasort::coding::CodedError;
use coded_terasort::mapreduce::{EngineError, RecoveryMode};
use coded_terasort::net::fault::{
    straggler_blackhole_rule, straggler_delay_rule, CrashPoint, CrashSpec, FaultAction,
    FaultyTransport,
};
use coded_terasort::net::local::LocalFabric;
use coded_terasort::net::{HealthConfig, NetError, Tag, Transport};
use coded_terasort::netsim::straggler::{Slowdown, StragglerModel};
use coded_terasort::netsim::RecoveryModel;
use coded_terasort::prelude::*;
use coded_terasort::terasort::SortRun;
use proptest::prelude::*;

/// Builds keep-rule stores for a (k, r) deployment with deterministic
/// contents.
fn stores(k: usize, r: usize) -> Vec<MapOutputStore> {
    let plan = PlacementPlan::new(k, r).unwrap();
    (0..k)
        .map(|node| {
            let mut st = MapOutputStore::new();
            for fid in plan.files_of_node(node) {
                let f = plan.nodes_of_file(fid);
                for t in 0..k {
                    if plan.keeps_intermediate(node, f, t) {
                        let data: Vec<u8> = (0..20 + t * 3).map(|i| (t * 41 + i) as u8).collect();
                        st.insert(t, f, Bytes::from(data));
                    }
                }
            }
            st
        })
        .collect()
}

#[test]
fn truncated_packet_is_rejected_not_misdecoded() {
    let stores = stores(4, 2);
    let enc = Encoder::new(4, 2, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let wire = pkt.to_bytes();
    for cut in 0..wire.len() {
        assert!(
            CodedPacket::from_bytes(&wire[..cut]).is_err(),
            "truncation at {cut} must fail to parse"
        );
    }
}

#[test]
fn bitflip_in_header_is_caught_or_changes_attribution() {
    // Flip each header byte; the parse must either fail or produce a
    // packet whose decode then fails at a well-defined point. (Payload
    // bit-flips are undetectable without checksums — XOR codes have no
    // integrity layer; that is the transport's job, as in the paper's TCP.)
    let stores = stores(3, 2);
    let enc = Encoder::new(3, 2, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let wire = pkt.to_bytes();
    let header_len = wire.len() - pkt.payload.len();
    let mut outcomes = (0usize, 0usize); // (parse errors, decode errors)
    for i in 0..header_len {
        let mut bad = wire.clone();
        bad[i] ^= 0x01;
        match CodedPacket::from_bytes(&bad) {
            Err(_) => outcomes.0 += 1,
            Ok(parsed) => {
                let mut pipe = DecodePipeline::new(3, 2, 1).unwrap();
                if pipe.accept(&parsed, &stores[1]).is_err() {
                    outcomes.1 += 1;
                }
            }
        }
    }
    assert!(
        outcomes.0 + outcomes.1 >= header_len / 2,
        "most header corruptions must surface: {outcomes:?} of {header_len}"
    );
}

#[test]
fn decode_without_map_output_reports_missing_intermediate() {
    let stores = stores(3, 2);
    let enc = Encoder::new(3, 2, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let empty = MapOutputStore::new();
    let mut pipe = DecodePipeline::new(3, 2, 1).unwrap();
    let err = pipe.accept(&pkt, &empty).unwrap_err();
    assert!(matches!(err, CodedError::MissingIntermediate { .. }));
}

#[test]
fn dropped_frames_surface_as_timeouts() {
    // A transport that drops everything: the receiver's timed wait must
    // expire rather than hang or fabricate data.
    let fabric = LocalFabric::new(2);
    let lossy = FaultyTransport::new(
        Arc::new(fabric.endpoint(0)),
        Box::new(|_, _, _, _| FaultAction::Drop),
    );
    lossy
        .send(1, Tag::app(0), Bytes::from_static(b"vanishes"))
        .unwrap();
    assert_eq!(lossy.dropped(), 1);
    let rx = fabric.endpoint(1);
    let err = rx
        .recv_timeout(0, Tag::app(0), std::time::Duration::from_millis(30))
        .unwrap_err();
    assert!(matches!(err, NetError::Timeout { .. }));
}

#[test]
fn corrupted_wire_bytes_fail_engine_style_parsing() {
    // Simulate the engine's decode stage receiving a corrupted frame via a
    // corrupting transport.
    let fabric = LocalFabric::new(2);
    let stores = stores(2, 1);
    let enc = Encoder::new(2, 1, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let corruptor = FaultyTransport::new(
        Arc::new(fabric.endpoint(0)),
        Box::new(|_, _, payload, _| {
            let mut bad = payload.to_vec();
            bad[0] ^= 0xFF; // destroy the magic
            FaultAction::Corrupt(Bytes::from(bad))
        }),
    );
    corruptor
        .send(1, Tag::app(0), Bytes::from(pkt.to_bytes()))
        .unwrap();
    let raw = fabric.endpoint(1).recv(0, Tag::app(0)).unwrap();
    let err = CodedPacket::from_bytes(&raw).unwrap_err();
    assert!(matches!(err, CodedError::MalformedPacket { .. }));
}

/// One timed coded sort with an optional fault rule on `victim`.
fn timed_run(
    input: &Bytes,
    k: usize,
    r: usize,
    decode: DecodeMode,
    fault: Option<(usize, Arc<coded_terasort::net::fault::FaultRule>)>,
) -> (Vec<Vec<u8>>, f64) {
    let mut job = SortJob::local(k, r)
        .with_field(FieldKind::Gf256)
        .with_decode(decode);
    if let Some((victim, rule)) = fault {
        job.engine.cluster = job.engine.cluster.with_fault(victim, rule);
    }
    let started = Instant::now();
    let run = run_coded_terasort(input.clone(), &job).expect("coded sort with straggler");
    let elapsed = started.elapsed().as_secs_f64();
    run.validate().expect("TeraValidate");
    (run.outcome.outputs, elapsed)
}

#[test]
fn quorum_decode_outruns_delayed_stragglers() {
    let (k, r) = (5usize, 3usize);
    let victim = 1usize;
    let input = teragen::generate(2_000, 2017);

    // Healthy baseline: calibrates the straggler model's brackets.
    let (reference, healthy_s) = timed_run(&input, k, r, DecodeMode::Quorum, None);

    // Deterministic {2×, 10×} slowdowns: the victim's multicasts arrive
    // `factor × unit` late, where the unit is the healthy makespan floored
    // at 40 ms so CI timing noise can't drown the signal, and the whole
    // sweep is capped to keep the suite fast.
    let unit_s = healthy_s.max(0.04);
    for factor in [2.0f64, 10.0] {
        let delay_s = (factor * unit_s).min(0.4);
        let model = StragglerModel::new(healthy_s, Slowdown::DelayS(delay_s));
        let rule = straggler_delay_rule(Duration::from_secs_f64(delay_s));

        let (outputs, quorum_s) = timed_run(
            &input,
            k,
            r,
            DecodeMode::Quorum,
            Some((victim, Arc::clone(&rule))),
        );
        assert_eq!(outputs, reference, "quorum output diverged at {factor}×");
        let bracket = model.quorum_bracket();
        assert!(
            bracket.contains(quorum_s),
            "{factor}×: quorum makespan {quorum_s:.3}s outside [{:.3}, {:.3}]s",
            bracket.lo_s,
            bracket.hi_s
        );

        // Contrast: the paper's barrier-on-all decode must eat the delay.
        let (all_outputs, all_s) = timed_run(&input, k, r, DecodeMode::All, Some((victim, rule)));
        assert_eq!(
            all_outputs, reference,
            "all-mode output diverged at {factor}×"
        );
        let all_bracket = model.all_bracket();
        assert!(
            all_bracket.contains(all_s),
            "{factor}×: all-mode makespan {all_s:.3}s below the injected delay {delay_s:.3}s"
        );
    }
}

#[test]
fn quorum_decode_survives_a_dead_sender() {
    // The ∞ point of the sweep: the victim's multicasts never arrive.
    // Only the quorum decode can finish; its makespan must still track
    // the healthy run, and the output must stay byte-identical.
    let (k, r) = (5usize, 3usize);
    let victim = 2usize;
    let input = teragen::generate(2_000, 4099);

    let (reference, healthy_s) = timed_run(&input, k, r, DecodeMode::Quorum, None);
    let model = StragglerModel::new(healthy_s, Slowdown::Blackhole);
    let (outputs, dead_s) = timed_run(
        &input,
        k,
        r,
        DecodeMode::Quorum,
        Some((victim, straggler_blackhole_rule())),
    );
    assert_eq!(outputs, reference, "output diverged with a dead sender");
    let bracket = model.quorum_bracket();
    assert!(
        bracket.contains(dead_s),
        "dead-sender makespan {dead_s:.3}s outside [{:.3}, {:.3}]s",
        bracket.lo_s,
        bracket.hi_s
    );
    assert!(model.predicted_speedup().is_infinite());
}

/// One timed coded sort at (k, r) with GF(256) + quorum decode, optional
/// fail-stop crash injection, and the given recovery mode. `tcp` selects
/// the loopback-TCP cluster instead of the in-memory fabric.
fn crash_run(
    input: &Bytes,
    k: usize,
    r: usize,
    tcp: bool,
    recovery: RecoveryMode,
    heartbeat: Duration,
    crashes: &[CrashSpec],
) -> (coded_terasort::mapreduce::Result<SortRun>, f64) {
    let mut job = SortJob::local(k, r);
    if tcp {
        job.engine = coded_terasort::mapreduce::EngineConfig::tcp(k, r);
    }
    let mut job = job
        .with_field(FieldKind::Gf256)
        .with_decode(DecodeMode::Quorum)
        .with_recovery(recovery)
        .with_heartbeat(heartbeat);
    for spec in crashes {
        job.engine = job.engine.with_crash(*spec);
    }
    let started = Instant::now();
    let run = run_coded_terasort(input.clone(), &job);
    (run, started.elapsed().as_secs_f64())
}

/// The tentpole acceptance sweep on one fabric: K = 16, r = 3, one rank
/// killed fail-stop mid-Map.
///
/// * `--recovery speculative` must finish with output byte-identical to
///   the healthy run's, with the makespan inside the
///   [`RecoveryModel::speculative_bracket`] calibrated from the measured
///   healthy makespan and the health layer's death deadline;
/// * `--recovery off` must fail fast with the crash's identity as a typed
///   [`EngineError::RankDied`] — no deadline waits, no hang — inside
///   [`RecoveryModel::failfast_bracket`].
fn kill_mid_map_acceptance(tcp: bool) {
    let (k, r) = (16usize, 3usize);
    let victim = 5usize;
    // TCP runs 16 socket-fed ranks; under full-suite parallel load a
    // heartbeat thread can starve long enough to miss a tight deadline,
    // so the real-socket leg gets a wider interval than the in-memory one.
    let heartbeat = Duration::from_millis(if tcp { 25 } else { 10 });
    let crash = CrashSpec {
        rank: victim,
        point: CrashPoint::MidMap,
    };
    let input = teragen::generate(3_000, 1617);

    // Healthy baseline under the same config (recovery armed, heartbeats
    // flowing, nobody dies): calibrates the recovery model's brackets.
    let (healthy, healthy_s) =
        crash_run(&input, k, r, tcp, RecoveryMode::Speculative, heartbeat, &[]);
    let healthy = healthy.expect("healthy baseline");
    healthy.validate().expect("TeraValidate healthy");

    let detect_s = HealthConfig::from_heartbeat(heartbeat)
        .death_deadline()
        .as_secs_f64();
    let model = RecoveryModel::new(healthy_s, detect_s);

    // Speculative: survivors adopt the victim's partition; output is
    // byte-identical and the makespan pays at most detection + headroom.
    let (recovered, recovered_s) = crash_run(
        &input,
        k,
        r,
        tcp,
        RecoveryMode::Speculative,
        heartbeat,
        &[crash],
    );
    let recovered = recovered.expect("speculative recovery must complete");
    recovered.validate().expect("TeraValidate recovered");
    assert_eq!(
        recovered.outcome.outputs, healthy.outcome.outputs,
        "recovered output diverged from the healthy run"
    );
    let bracket = model.speculative_bracket();
    assert!(
        bracket.contains(recovered_s),
        "recovery makespan {recovered_s:.3}s outside [{:.3}, {:.3}]s",
        bracket.lo_s,
        bracket.hi_s
    );

    // Recovery off: the same death is a fast typed error, never a hang.
    let (failed, failed_s) = crash_run(&input, k, r, tcp, RecoveryMode::Off, heartbeat, &[crash]);
    match failed {
        Err(EngineError::RankDied { rank, point }) => {
            assert_eq!(rank, victim);
            assert_eq!(point, CrashPoint::MidMap);
        }
        other => panic!("recovery off must fail with RankDied, got {other:?}"),
    }
    let bracket = model.failfast_bracket();
    assert!(
        bracket.contains(failed_s),
        "fail-fast took {failed_s:.3}s, outside [{:.3}, {:.3}]s",
        bracket.lo_s,
        bracket.hi_s
    );
}

#[test]
fn killed_mid_map_rank_recovers_byte_identically_on_the_local_fabric() {
    kill_mid_map_acceptance(false);
}

#[test]
fn killed_mid_map_rank_recovers_byte_identically_on_the_tcp_fabric() {
    kill_mid_map_acceptance(true);
}

#[test]
fn more_deaths_than_the_code_tolerates_degrade_gracefully() {
    // Two fail-stop deaths exceed the quorum code's one-dead-sender
    // capacity: the job must abort with a structured report naming the
    // dead ranks and the starved groups — quickly, never hanging on the
    // idle deadline.
    let (k, r) = (8usize, 3usize);
    let heartbeat = Duration::from_millis(5);
    let input = teragen::generate(1_200, 4242);
    let crashes = [
        CrashSpec {
            rank: 1,
            point: CrashPoint::MidMap,
        },
        CrashSpec {
            rank: 6,
            point: CrashPoint::MidMap,
        },
    ];
    let started = Instant::now();
    let (outcome, _) = crash_run(
        &input,
        k,
        r,
        false,
        RecoveryMode::Speculative,
        heartbeat,
        &crashes,
    );
    match outcome {
        Err(EngineError::Unrecoverable(report)) => {
            assert_eq!(report.dead, vec![1, 6]);
            assert!(
                !report.unrecoverable_groups.is_empty(),
                "the report must name the starved groups"
            );
        }
        other => panic!("two deaths must be Unrecoverable, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "graceful degradation must not hang"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chaos sweep over (K, r, victim, crash point): any single fail-stop
    /// death under speculative recovery sorts byte-identically to the
    /// healthy run, and the same death with recovery off surfaces as the
    /// typed crash identity — structured errors, never hangs.
    #[test]
    fn chaos_single_death_recovers_or_fails_typed(
        k in 4usize..=6,
        r_sel in 0usize..2,
        victim_sel in any::<u64>(),
        point_sel in 0usize..4,
        records in 200usize..600,
        seed in any::<u64>(),
    ) {
        let r = 2 + r_sel;
        prop_assume!(r < k);
        let victim = (victim_sel as usize) % k;
        let point = match point_sel {
            0 => CrashPoint::MidMap,
            1 => CrashPoint::MidEncode,
            2 => CrashPoint::AfterSends(victim_sel % 4),
            _ => CrashPoint::PreReduce,
        };
        let heartbeat = Duration::from_millis(5);
        let crash = CrashSpec { rank: victim, point };
        let input = teragen::generate(records, seed);

        let (healthy, _) = crash_run(
            &input, k, r, false, RecoveryMode::Speculative, heartbeat, &[],
        );
        let healthy = healthy.expect("healthy chaos baseline");

        let (recovered, _) = crash_run(
            &input, k, r, false, RecoveryMode::Speculative, heartbeat, &[crash],
        );
        let recovered = recovered.expect("single death must be recoverable");
        recovered.validate().expect("TeraValidate chaos");
        prop_assert_eq!(
            &recovered.outcome.outputs,
            &healthy.outcome.outputs,
            "k={} r={} victim={} point={}",
            k, r, victim, point
        );

        let (failed, _) = crash_run(
            &input, k, r, false, RecoveryMode::Off, heartbeat, &[crash],
        );
        match failed {
            Err(EngineError::RankDied { rank, point: p }) => {
                prop_assert_eq!(rank, victim);
                prop_assert_eq!(p, point);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "recovery off must fail typed, got {other:?}"
                )));
            }
        }
    }
}

#[test]
fn peer_shutdown_mid_shuffle_disconnects_cleanly() {
    let fabric = LocalFabric::new(3);
    let a = fabric.endpoint(0);
    let b = fabric.endpoint(2);
    // Node 2 dies (its mailbox closes); node 0's later receive from it
    // must fail with Disconnected instead of hanging.
    b.shutdown();
    let handle = std::thread::spawn(move || a.recv(2, Tag::app(0)));
    std::thread::sleep(std::time::Duration::from_millis(20));
    fabric.abort(); // cluster teardown path
    assert!(matches!(
        handle.join().unwrap(),
        Err(NetError::Disconnected { .. })
    ));
}
