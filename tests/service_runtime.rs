//! The job-oriented runtime end to end: many simultaneous tenants on one
//! resident fabric must give exactly the bytes a serial one-shot run
//! gives, admission must refuse (not wedge) past the queue bound, and a
//! NIC-throttled tenant must pay its own backpressure without dragging an
//! unshaped tenant's tail latency along.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use coded_terasort::mapreduce::grep::Grep;
use coded_terasort::mapreduce::wordcount::WordCount;
use coded_terasort::mapreduce::EngineError;
use coded_terasort::prelude::*;

/// Submits a mixed batch of sort + wordcount + grep jobs concurrently and
/// checks every output against its serial one-shot reference.
fn mixed_batch_matches_one_shot(template: EngineConfig) {
    let k = template.k;
    let runtime = JobRuntime::start(
        RuntimeConfig::new(template)
            .with_max_concurrent(3)
            .with_queue_capacity(16),
    )
    .unwrap();

    let sort_inputs: Vec<Bytes> = (0..3)
        .map(|i| teragen::generate(900 + i * 100, i as u64))
        .collect();
    let text = Bytes::from(
        (0..400)
            .map(|i| format!("line {} of the service test corpus\n", i % 23))
            .collect::<String>()
            .into_bytes(),
    );

    // One-shot references, run serially outside the runtime.
    let sort_refs: Vec<Vec<Vec<u8>>> = sort_inputs
        .iter()
        .map(|input| {
            run_terasort(input.clone(), &SortJob::local(k, 1))
                .unwrap()
                .outcome
                .outputs
        })
        .collect();
    let wc_ref = run_sequential(&WordCount, &text, k);
    let grep_ref = run_sequential(&Grep::new(&b"corpus"[..]), &text, k);

    // The same jobs, all in flight at once on the shared runtime: sorts
    // alternate coded/uncoded, plus a coded wordcount and an uncoded grep.
    let mut handles = Vec::new();
    for (i, input) in sort_inputs.iter().cloned().enumerate() {
        handles.push(
            runtime
                .submit(move |ctx| {
                    let workload = TeraSortWorkload::range(ctx.cfg.k);
                    if i % 2 == 0 {
                        ctx.run_coded(&workload, input)
                    } else {
                        ctx.run_uncoded(&workload, input)
                    }
                })
                .unwrap(),
        );
    }
    let text_wc = text.clone();
    handles.push(
        runtime
            .submit(move |ctx| ctx.run_coded(&WordCount, text_wc))
            .unwrap(),
    );
    let text_grep = text.clone();
    handles.push(
        runtime
            .submit(move |ctx| ctx.run_uncoded(&Grep::new(&b"corpus"[..]), text_grep))
            .unwrap(),
    );

    let mut outputs: Vec<Vec<Vec<u8>>> = handles
        .into_iter()
        .map(|h| h.wait().unwrap().outputs)
        .collect();
    let grep_out = outputs.pop().unwrap();
    let wc_out = outputs.pop().unwrap();
    assert_eq!(outputs, sort_refs, "sort jobs diverged from one-shot runs");
    assert_eq!(wc_out, wc_ref, "wordcount diverged from one-shot run");
    assert_eq!(grep_out, grep_ref, "grep diverged from one-shot run");
    runtime.shutdown();
}

#[test]
fn concurrent_jobs_match_one_shot_over_local_fabric() {
    mixed_batch_matches_one_shot(EngineConfig::local(4, 2));
}

#[test]
fn concurrent_jobs_match_one_shot_over_tcp_fabric() {
    mixed_batch_matches_one_shot(EngineConfig::tcp(3, 2));
}

#[test]
fn admission_refuses_with_a_typed_error_when_saturated() {
    let runtime = JobRuntime::start(
        RuntimeConfig::new(EngineConfig::local(2, 1))
            .with_max_concurrent(1)
            .with_queue_capacity(1),
    )
    .unwrap();

    // Wedge the single dispatcher on a gate so submissions pile up.
    let gate = std::sync::Arc::new(AtomicBool::new(false));
    let gate_job = std::sync::Arc::clone(&gate);
    let input = teragen::generate(200, 1);
    let blocker = runtime
        .submit(move |ctx| {
            while !gate_job.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            ctx.run_uncoded(&TeraSortWorkload::range(ctx.cfg.k), input)
        })
        .unwrap();

    // Wait until the dispatcher has picked the blocker up, then fill the
    // one queue slot; the next submit must refuse, not block or panic.
    while runtime.status(blocker.id()) == Some(JobStatus::Queued) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued_input = teragen::generate(200, 2);
    let queued = runtime
        .submit(move |ctx| ctx.run_uncoded(&TeraSortWorkload::range(ctx.cfg.k), queued_input))
        .unwrap();
    let refused_input = teragen::generate(200, 3);
    let refused = runtime
        .submit(move |ctx| ctx.run_uncoded(&TeraSortWorkload::range(ctx.cfg.k), refused_input));
    match refused {
        Err(EngineError::Busy { .. }) => {}
        other => panic!("expected Busy, got {other:?}"),
    }

    gate.store(true, Ordering::SeqCst);
    blocker.wait().unwrap();
    queued.wait().unwrap();
    runtime.shutdown();
}

/// Runs `jobs` small unshaped sort jobs back to back on `runtime` and
/// returns the per-job latencies in seconds.
fn drive_unshaped(runtime: &JobRuntime, jobs: usize, input: &Bytes) -> Vec<f64> {
    (0..jobs)
        .map(|_| {
            let input = input.clone();
            let started = Instant::now();
            runtime
                .submit(move |ctx| ctx.run_uncoded(&TeraSortWorkload::range(ctx.cfg.k), input))
                .unwrap()
                .wait()
                .unwrap();
            started.elapsed().as_secs_f64()
        })
        .collect()
}

fn p99(latencies: &[f64]) -> f64 {
    let mut l = latencies.to_vec();
    l.sort_by(|a, b| a.partial_cmp(b).unwrap());
    l[((l.len() - 1) as f64 * 0.99).round() as usize]
}

/// The acceptance criterion: a tenant whose emulated NIC token bucket is
/// saturated backpressures *itself* — per-job Nic instances mean its
/// pacing sleeps never touch the other tenant's flows — so the unshaped
/// tenant's p99 stays within 2× of its uncontended p99.
#[test]
fn throttled_tenant_does_not_inflate_unshaped_p99() {
    let config = || {
        RuntimeConfig::new(EngineConfig::local(3, 1))
            .with_max_concurrent(2)
            .with_queue_capacity(8)
    };
    let fast_input = teragen::generate(300, 7);
    let jobs = 20;

    // Baseline: the unshaped tenant alone on a runtime.
    let solo_runtime = JobRuntime::start(config()).unwrap();
    let solo_p99 = p99(&drive_unshaped(&solo_runtime, jobs, &fast_input));
    solo_runtime.shutdown();

    // Contended: tenant T keeps one throttled job in flight at all times
    // (50 KB/s egress, 4 KiB burst — the token bucket is saturated for
    // the whole shuffle) while tenant B runs the same unshaped stream.
    let runtime = JobRuntime::start(config()).unwrap();
    let slow_nic = NicProfile {
        rate_bytes_per_sec: Some(50_000.0),
        burst_bytes: 4096.0,
        ..NicProfile::unlimited()
    };
    let throttled_input = teragen::generate(1_500, 8);
    let stop = AtomicBool::new(false);
    let throttled_done = AtomicUsize::new(0);

    let (contended, throttled_latency) = std::thread::scope(|s| {
        let throttler = s.spawn(|| {
            let mut total = Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                let input = throttled_input.clone();
                let nic = slow_nic;
                let started = Instant::now();
                runtime
                    .submit(move |ctx| {
                        let mut cfg = ctx.cfg.clone();
                        cfg.cluster.nic = Some(nic);
                        ctx.run_uncoded_with(&TeraSortWorkload::range(cfg.k), input, &cfg)
                    })
                    .unwrap()
                    .wait()
                    .unwrap();
                total += started.elapsed();
                throttled_done.fetch_add(1, Ordering::SeqCst);
            }
            total
        });
        let contended = drive_unshaped(&runtime, jobs, &fast_input);
        stop.store(true, Ordering::SeqCst);
        let total = throttler.join().unwrap();
        (contended, total)
    });
    let finished = throttled_done.load(Ordering::SeqCst);
    runtime.shutdown();

    // The throttled tenant really was backpressured: its jobs each took
    // far longer than the unshaped tenant's whole stream tail.
    assert!(finished >= 1, "throttler never completed a job");
    let throttled_avg = throttled_latency.as_secs_f64() / finished as f64;
    assert!(
        throttled_avg > 4.0 * solo_p99,
        "throttled jobs ({throttled_avg:.3}s avg) should dwarf unshaped ones ({solo_p99:.3}s p99)"
    );
    // …and the unshaped tenant barely noticed: p99 within 2× of solo
    // (plus a 50 ms absolute floor so a microsecond-scale baseline does
    // not make scheduler noise a test failure).
    let contended_p99 = p99(&contended);
    assert!(
        contended_p99 <= (2.0 * solo_p99).max(solo_p99 + 0.050),
        "throttled tenant inflated unshaped p99: solo {solo_p99:.4}s vs contended {contended_p99:.4}s"
    );
}
