//! Steady-state allocation audit of the compute-plane hot loop.
//!
//! A counting global allocator wraps `System`; after one warm-up round
//! trip (which sizes every grow-only buffer), the full
//! encode → pack → unpack → decode kernel must perform **zero** heap
//! allocations per iteration:
//!
//! * encode: [`Encoder::encode_group_into`] into a warm `EncodeScratch`;
//! * pack:   [`CodedPacket::write_wire`] into a reused wire buffer;
//! * unpack: [`CodedPacket::read_wire`] — zero-copy payload borrow plus a
//!   reused header vector;
//! * decode: [`Decoder::decode_packet_into`] into a warm accumulator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use cts_core::decode::{DecodePipeline, Decoder};
use cts_core::encode::{EncodeScratch, Encoder};
use cts_core::intermediate::MapOutputStore;
use cts_core::packet::CodedPacket;
use cts_core::placement::PlacementPlan;
use cts_core::subset::NodeSet;

/// Allocation counter (counts `alloc`, `alloc_zeroed`, and growth via
/// `realloc`; deallocations are free).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Keep-rule store for one node of a `(k, r)` deployment.
fn store_for(k: usize, r: usize, node: usize, value_len: usize) -> MapOutputStore {
    let plan = PlacementPlan::new(k, r).unwrap();
    let mut store = MapOutputStore::new();
    for fid in plan.files_of_node(node) {
        let file = plan.nodes_of_file(fid);
        for t in 0..k {
            if plan.keeps_intermediate(node, file, t) {
                let data: Vec<u8> = (0..value_len)
                    .map(|i| (t * 41 + i * 7 + file.bits() as usize) as u8)
                    .collect();
                store.insert(t, file, Bytes::from(data));
            }
        }
    }
    store
}

#[test]
fn warm_round_trip_allocates_nothing() {
    let (k, r, value_len) = (6usize, 3usize, 4096usize);
    let sender = 0usize;
    let receiver = 1usize;
    let tx_store = store_for(k, r, sender, value_len);
    let rx_store = store_for(k, r, receiver, value_len);
    let encoder = Encoder::new(k, r, sender).unwrap();
    let decoder = Decoder::new(k, r, receiver).unwrap();
    // A group containing both endpoints.
    let m: NodeSet = encoder
        .groups()
        .groups_of_node(sender)
        .map(|(_, m)| m)
        .find(|m| m.contains(receiver))
        .expect("shared group");

    let mut scratch = EncodeScratch::new();
    let mut wire: Vec<u8> = Vec::new();
    let mut shell = CodedPacket::empty();
    let mut acc: Vec<u8> = Vec::new();

    // Warm-up: size every grow-only buffer, and freeze one wire frame (the
    // loop re-encodes the same group, so content is identical; receiving
    // from a fabric would hand us a `Bytes` frame exactly like this one).
    encoder
        .encode_group_into(m, &tx_store, &mut scratch)
        .unwrap();
    wire.clear();
    CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
    let frame = Bytes::from(wire.clone());
    shell.read_wire(&frame).unwrap();
    decoder
        .decode_packet_into(&shell, &rx_store, &mut acc)
        .unwrap();
    let warm_payload = scratch.payload.clone();
    let warm_segment = acc.clone();
    assert!(!warm_segment.is_empty(), "decode must recover bytes");

    // Measured steady state: the full round trip, many times, zero allocs.
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..100 {
        encoder
            .encode_group_into(m, &tx_store, &mut scratch)
            .unwrap();
        wire.clear();
        CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
        shell.read_wire(&frame).unwrap();
        decoder
            .decode_packet_into(&shell, &rx_store, &mut acc)
            .unwrap();
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "warm encode→pack→unpack→decode round trip performed {allocs} heap allocations"
    );

    // And it still computes the right thing.
    assert_eq!(scratch.payload, warm_payload);
    assert_eq!(acc, warm_segment);
    assert_eq!(wire, &frame[..]);
}

/// The same steady-state audit over GF(256): the q-ary coding plane's
/// table lookups and SIMD kernels work entirely in the caller's buffers
/// (nibble tables live on the stack; log/exp tables are `const`), so the
/// warm encode → pack → unpack → decode round trip must stay at zero
/// heap allocations with nontrivial coefficients too.
#[test]
fn warm_gf256_round_trip_allocates_nothing() {
    use cts_core::field::FieldKind;
    let (k, r, value_len) = (6usize, 3usize, 4096usize);
    let sender = 0usize;
    let receiver = 1usize;
    let tx_store = store_for(k, r, sender, value_len);
    let rx_store = store_for(k, r, receiver, value_len);
    let encoder = Encoder::with_field(k, r, sender, FieldKind::Gf256).unwrap();
    let decoder = Decoder::with_field(k, r, receiver, FieldKind::Gf256).unwrap();
    let m: NodeSet = encoder
        .groups()
        .groups_of_node(sender)
        .map(|(_, m)| m)
        .find(|m| m.contains(receiver))
        .expect("shared group");

    let mut scratch = EncodeScratch::new();
    let mut wire: Vec<u8> = Vec::new();
    let mut shell = CodedPacket::empty();
    let mut acc: Vec<u8> = Vec::new();

    // Warm-up (also latches the kernel dispatch OnceLock outside the
    // measured window).
    encoder
        .encode_group_into(m, &tx_store, &mut scratch)
        .unwrap();
    wire.clear();
    CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
    let frame = Bytes::from(wire.clone());
    shell.read_wire(&frame).unwrap();
    decoder
        .decode_packet_into(&shell, &rx_store, &mut acc)
        .unwrap();
    let warm_segment = acc.clone();
    assert!(!warm_segment.is_empty(), "decode must recover bytes");

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..100 {
        encoder
            .encode_group_into(m, &tx_store, &mut scratch)
            .unwrap();
        wire.clear();
        CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
        shell.read_wire(&frame).unwrap();
        decoder
            .decode_packet_into(&shell, &rx_store, &mut acc)
            .unwrap();
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "warm GF(256) encode→pack→unpack→decode round trip performed {allocs} heap allocations"
    );
    assert_eq!(acc, warm_segment);
}

/// The *parallel* decode fan-out path: each worker draws segment
/// accumulators from a sharded checkout of the pipeline's pool
/// ([`DecodePipeline::segment_shard`]) instead of allocating one segment
/// per packet. A warm wave loop — refill the shard, then per packet
/// get → parse → decode → put — must perform zero heap allocations.
#[test]
fn warm_parallel_decode_shard_path_allocates_nothing() {
    let (k, r, value_len) = (6usize, 3usize, 4096usize);
    let sender = 0usize;
    let receiver = 1usize;
    let tx_store = store_for(k, r, sender, value_len);
    let rx_store = store_for(k, r, receiver, value_len);
    let encoder = Encoder::new(k, r, sender).unwrap();
    let pipeline = DecodePipeline::new(k, r, receiver).unwrap();
    let m: NodeSet = encoder
        .groups()
        .groups_of_node(sender)
        .map(|(_, m)| m)
        .find(|m| m.contains(receiver))
        .expect("shared group");

    // One frozen wire frame, as a fabric would hand to every worker.
    let mut scratch = EncodeScratch::new();
    encoder
        .encode_group_into(m, &tx_store, &mut scratch)
        .unwrap();
    let mut wire = Vec::new();
    CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
    let frame = Bytes::from(wire);

    const WAVE: usize = 4;
    let mut shard = pipeline.segment_shard(WAVE);
    let mut shell = CodedPacket::empty();
    let mut reference = Vec::new();
    // Warm-up wave: sizes the accumulators (pool is cold, so these get()s
    // allocate) and every grow-only parse buffer.
    for _ in 0..WAVE {
        let mut acc = shard.get();
        shell.read_wire(&frame).unwrap();
        pipeline
            .decoder()
            .decode_packet_into(&shell, &rx_store, &mut acc)
            .unwrap();
        reference.clone_from(&acc);
        shard.put(acc);
    }
    assert!(!reference.is_empty(), "decode must recover bytes");

    // Measured steady state: fifty waves of the per-packet worker path.
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut last_len = 0usize;
    for _ in 0..50 {
        shard.refill(WAVE);
        for _ in 0..WAVE {
            let mut acc = shard.get();
            shell.read_wire(&frame).unwrap();
            pipeline
                .decoder()
                .decode_packet_into(&shell, &rx_store, &mut acc)
                .unwrap();
            last_len = acc.len();
            shard.put(acc);
        }
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "warm sharded parallel-decode path performed {allocs} heap allocations"
    );
    assert_eq!(last_len, reference.len());
}

/// The observability plane on the same warm round trip: metric
/// instruments tick every iteration the way the engines tick them, a
/// stage span closes into a warm ring, and the **disabled** trace and
/// span collectors swallow their events — all still at zero heap
/// allocations. Instrument registration and ring growth pay their
/// allocations once, up front; the steady state is free, which is what
/// lets the daemon keep them on by default.
#[test]
fn warm_metrics_enabled_round_trip_allocates_nothing() {
    use cts_core::metrics::MetricsHub;
    use cts_net::span::{SpanCollector, StageSpan};
    use cts_net::trace::{EventKind, TraceCollector};

    let (k, r, value_len) = (6usize, 3usize, 4096usize);
    let sender = 0usize;
    let receiver = 1usize;
    let tx_store = store_for(k, r, sender, value_len);
    let rx_store = store_for(k, r, receiver, value_len);
    let encoder = Encoder::new(k, r, sender).unwrap();
    let decoder = Decoder::new(k, r, receiver).unwrap();
    let m: NodeSet = encoder
        .groups()
        .groups_of_node(sender)
        .map(|(_, m)| m)
        .find(|m| m.contains(receiver))
        .expect("shared group");

    // The instruments the engines touch per packet / per stage, created
    // (and their one-time registration allocations paid) before the
    // measured window.
    let hub = MetricsHub::new();
    let packets = hub.counter("cts_decode_packets_total");
    let depth = hub.gauge("cts_admission_queue_depth");
    let shuffle_ns = hub.histogram_with("cts_stage_seconds", "stage", "Shuffle", 1e-9);
    // Enabled span ring, deliberately tiny so the warm-up fills it and
    // the measured records overwrite in place instead of growing.
    let spans = SpanCollector::with_capacity(true, 64);
    let shuffle = spans.intern("Shuffle");
    // Observability switched off must be indistinguishable from absent.
    let trace_off = TraceCollector::new(false);
    let spans_off = SpanCollector::new(false);

    let mut scratch = EncodeScratch::new();
    let mut wire: Vec<u8> = Vec::new();
    let mut shell = CodedPacket::empty();
    let mut acc: Vec<u8> = Vec::new();

    // Warm-up: size the coding buffers and saturate the span ring.
    encoder
        .encode_group_into(m, &tx_store, &mut scratch)
        .unwrap();
    wire.clear();
    CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
    let frame = Bytes::from(wire.clone());
    shell.read_wire(&frame).unwrap();
    decoder
        .decode_packet_into(&shell, &rx_store, &mut acc)
        .unwrap();
    for i in 0..80u64 {
        spans.record(StageSpan {
            job: 0,
            rank: 0,
            stage: shuffle,
            start_ns: i,
            end_ns: i + 1,
        });
    }
    let warm_segment = acc.clone();
    assert!(!warm_segment.is_empty(), "decode must recover bytes");

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..100u64 {
        encoder
            .encode_group_into(m, &tx_store, &mut scratch)
            .unwrap();
        wire.clear();
        CodedPacket::write_wire(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
        shell.read_wire(&frame).unwrap();
        decoder
            .decode_packet_into(&shell, &rx_store, &mut acc)
            .unwrap();
        // Per-packet and per-stage observability, as the engines emit it.
        packets.inc();
        depth.set(i as i64);
        shuffle_ns.record(1 + i * 1_000);
        let start = spans.now_ns();
        spans.record(StageSpan {
            job: 0,
            rank: 0,
            stage: shuffle,
            start_ns: start,
            end_ns: spans.now_ns(),
        });
        // Disabled collectors: interning and recording are no-ops.
        let s = trace_off.intern("Shuffle");
        trace_off.record(
            s,
            sender,
            m.bits().into(),
            wire.len() as u64,
            EventKind::Multicast,
        );
        let s2 = spans_off.intern("Shuffle");
        spans_off.record(StageSpan {
            job: 0,
            rank: 0,
            stage: s2,
            start_ns: 0,
            end_ns: 1,
        });
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "metrics-enabled warm round trip performed {allocs} heap allocations"
    );
    assert_eq!(acc, warm_segment);
    assert_eq!(packets.get(), 100);
    assert_eq!(spans.recorded(), 180);
    assert_eq!(shuffle_ns.count(), 100);
    assert_eq!(spans_off.recorded(), 0);
    assert!(trace_off.snapshot().total_bytes() == 0);
}
