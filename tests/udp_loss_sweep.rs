//! Datagram-loss recovery sweep for the physical UDP-multicast fabric:
//! under injected loss rates the coded sort must still produce
//! byte-identical output, and the NACK layer's retransmit traffic must
//! stay within its bounded budget (multicast repairs first, lossless TCP
//! unicast after `max_multicast_repairs` rounds — so recovery always
//! terminates and never balloons).
//!
//! Skips gracefully where the kernel denies multicast membership, like
//! every `udp_` test in this tree.

use std::sync::Arc;

use coded_terasort::prelude::*;
use cts_net::fault::{datagram_loss_rule, sender_blackout_rule};
use cts_net::udp::{skip_without_multicast, UdpConfig};

#[test]
fn loss_sweep_recovers_byte_identical_output_within_budget() {
    if skip_without_multicast() {
        return;
    }
    let (k, r) = (5usize, 2usize);
    let input = teragen::generate(2_000, 2017);
    let reference = run_coded_terasort(
        input.clone(),
        &SortJob::local(k, r).with_fabric(ShuffleFabric::SerialUnicast),
    )
    .expect("lossless reference run");
    reference.validate().expect("TeraValidate reference");

    for loss_percent in [0u32, 5, 20] {
        let mut udp = UdpConfig::default();
        if loss_percent > 0 {
            udp.fault = Some(datagram_loss_rule(loss_percent, u64::from(loss_percent)));
            // A brisk NACK cadence keeps the lossy runs fast in CI.
            udp.nack_interval = std::time::Duration::from_millis(10);
        }
        let stats = Arc::clone(&udp.stats);
        let mut job = SortJob::local(k, r).with_fabric(ShuffleFabric::UdpMulticast);
        job.engine.cluster.udp = udp;
        let run = run_coded_terasort(input.clone(), &job)
            .unwrap_or_else(|e| panic!("udp run at {loss_percent}% loss: {e}"));
        run.validate()
            .unwrap_or_else(|e| panic!("TeraValidate at {loss_percent}% loss: {e}"));
        assert_eq!(
            run.outcome.outputs, reference.outcome.outputs,
            "output diverged at {loss_percent}% loss"
        );

        // The minimum datagram count this exchange needs: one chunk per
        // 1400-byte slice of every multicast payload, exactly once.
        let chunk = 1400u64;
        let ideal_chunks: u64 = run
            .outcome
            .trace
            .stage_events("Shuffle")
            .filter(|e| e.kind == cts_net::trace::EventKind::Multicast)
            .map(|e| e.bytes.div_ceil(chunk).max(1))
            .sum();
        let sent = stats.datagrams_sent();
        let dropped = stats.dropped_by_fault();
        let mcast_repairs = stats.mcast_repair_chunks();
        let tcp_repairs = stats.tcp_repair_chunks();
        assert!(sent > 0, "multicast path must have been exercised");
        assert!(ideal_chunks > 0);
        if loss_percent == 0 {
            assert_eq!(dropped, 0);
            assert_eq!(stats.nacks_sent(), 0, "no loss → no NACKs");
            assert_eq!(mcast_repairs + tcp_repairs, 0, "no loss → no repairs");
            assert_eq!(sent, ideal_chunks, "lossless run sends each chunk once");
        } else {
            assert!(dropped > 0, "the fault rule must have bitten");
            assert!(
                stats.nacks_sent() > 0,
                "recovery must go through NACKs at {loss_percent}% loss"
            );
            // Bounded retransmit budget: each chunk is re-multicast at most
            // `max_multicast_repairs` times before the TCP fallback, and a
            // TCP repair is lossless, so total attempted traffic (sent +
            // fault-dropped + TCP repairs) is a small multiple of the
            // ideal — never a retransmit storm.
            let rounds = u64::from(job.engine.cluster.udp.max_multicast_repairs);
            let budget = ideal_chunks * (2 + rounds);
            assert!(
                sent + dropped + tcp_repairs <= budget,
                "attempted {sent}+{dropped}+{tcp_repairs} exceeds budget {budget} \
                 (ideal {ideal_chunks}) at {loss_percent}% loss"
            );
            assert!(
                tcp_repairs <= ideal_chunks * 2,
                "tcp repairs {tcp_repairs} exceed 2× ideal {ideal_chunks}"
            );
        }
    }
}

#[test]
fn whole_sender_blackout_needs_no_nacks_under_quorum_decode() {
    // The hardest loss pattern the NACK layer faces: one rank's datagrams
    // *never* arrive, so loss recovery could only retransmit forever. The
    // MDS quorum decode sidesteps recovery entirely — every group missing
    // the victim's packet reaches rank from the other senders, healthy
    // groups decode from full receipt, and nobody ever sends a NACK.
    if skip_without_multicast() {
        return;
    }
    let (k, r) = (5usize, 3usize);
    let victim = 1usize;
    let input = teragen::generate(2_000, 2017);
    let reference = run_coded_terasort(
        input.clone(),
        &SortJob::local(k, r).with_field(FieldKind::Gf256),
    )
    .expect("lossless reference run");
    reference.validate().expect("TeraValidate reference");

    let udp = UdpConfig {
        fault: Some(sender_blackout_rule(victim)),
        ..Default::default()
    };
    let stats = Arc::clone(&udp.stats);
    let mut job = SortJob::local(k, r)
        .with_fabric(ShuffleFabric::UdpMulticast)
        .with_field(FieldKind::Gf256)
        .with_decode(DecodeMode::Quorum);
    job.engine.cluster.udp = udp;
    let run = run_coded_terasort(input.clone(), &job).expect("quorum run under blackout");
    run.validate().expect("TeraValidate under blackout");
    assert_eq!(
        run.outcome.outputs, reference.outcome.outputs,
        "output diverged under a whole-sender blackout"
    );
    assert!(
        stats.dropped_by_fault() > 0,
        "the blackout rule must have dropped the victim's datagrams"
    );
    assert_eq!(
        stats.nacks_sent(),
        0,
        "quorum decode must finish without a single NACK round"
    );
    assert_eq!(
        stats.mcast_repair_chunks() + stats.tcp_repair_chunks(),
        0,
        "no NACKs → no repair traffic"
    );
}
