//! Property-based end-to-end tests: for arbitrary inputs and (K, r), the
//! distributed coded sort equals the sequential sort.

use bytes::Bytes;
use coded_terasort::prelude::*;
use cts_terasort::record::RECORD_LEN;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CodedTeraSort == std sort of the whole input, for random record
    /// counts and (K, r).
    #[test]
    fn coded_sort_equals_std_sort(
        records in 1usize..400,
        k in 2usize..=6,
        r_sel in 0usize..6,
        seed in any::<u64>(),
    ) {
        let r = 1 + r_sel % k;
        let input = teragen::generate(records, seed);
        let run = run_coded_terasort(input.clone(), &SortJob::local(k, r)).unwrap();
        run.validate().unwrap();

        // Reference: plain std sort over whole records.
        let mut reference: Vec<&[u8]> = input.chunks_exact(RECORD_LEN).collect();
        reference.sort_unstable_by_key(|rec| &rec[..10]);
        let reference: Vec<u8> = reference.into_iter().flatten().copied().collect();
        let ours: Vec<u8> = run.outcome.outputs.iter().flatten().copied().collect();
        prop_assert_eq!(ours, reference);
    }

    /// Both engines agree on WordCount for arbitrary ASCII text.
    #[test]
    fn wordcount_engines_agree(
        text in proptest::collection::vec(" abcde\nfg", 0..200),
        k in 2usize..=5,
    ) {
        let input = Bytes::from(text.concat());
        let workload = coded_terasort::mapreduce::wordcount::WordCount;
        let seq = run_sequential(&workload, &input, k);
        let coded = run_coded(&workload, input, &EngineConfig::local(k, 2.min(k))).unwrap();
        prop_assert_eq!(seq, coded.outputs);
    }

    /// Shuffle bytes never exceed the uncoded engine's, at any (K, r),
    /// once the payloads dominate headers.
    #[test]
    fn coded_never_shuffles_more(
        k in 3usize..=6,
        r_sel in 0usize..4,
        seed in any::<u64>(),
    ) {
        let r = 2 + r_sel % (k - 1);
        let input = teragen::generate(3_000, seed);
        let unc = run_terasort(input.clone(), &SortJob::local(k, 1)).unwrap();
        let cod = run_coded_terasort(input, &SortJob::local(k, r)).unwrap();
        prop_assert!(
            cod.outcome.stats.shuffle_bytes() < unc.outcome.stats.shuffle_bytes(),
            "k={} r={}: {} !< {}",
            k, r,
            cod.outcome.stats.shuffle_bytes(),
            unc.outcome.stats.shuffle_bytes()
        );
    }

    /// The pod-partitioned engine (scalable-coding extension) sorts
    /// correctly for arbitrary valid (pods, g, r) decompositions.
    #[test]
    fn pod_engine_sorts_correctly(
        pods in 1usize..=3,
        g in 2usize..=4,
        r_sel in 0usize..3,
        records in 1usize..300,
        seed in any::<u64>(),
    ) {
        let k = pods * g;
        let r = 1 + r_sel % (g - 1).max(1);
        prop_assume!(r < g);
        let input = teragen::generate(records, seed);
        let workload = cts_terasort::workload::TeraSortWorkload::range(k);
        let out = coded_terasort::mapreduce::run_coded_pods(
            &workload,
            input.clone(),
            &EngineConfig::local(k, r),
            g,
        )
        .unwrap();
        cts_terasort::validate(&input, &out.outputs).unwrap();

        let mut reference: Vec<&[u8]> = input.chunks_exact(RECORD_LEN).collect();
        reference.sort_unstable_by_key(|rec| &rec[..10]);
        let reference: Vec<u8> = reference.into_iter().flatten().copied().collect();
        let ours: Vec<u8> = out.outputs.iter().flatten().copied().collect();
        prop_assert_eq!(ours, reference);
    }
}
