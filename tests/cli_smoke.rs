//! Workspace smoke tests for the `cts` CLI binary: usage must print, the
//! exit codes must distinguish help from misuse, and a tiny gen → sort →
//! theory round-trip must work end to end.

use std::process::Command;

fn cts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cts"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = cts().arg("--help").output().expect("run cts --help");
    assert!(out.status.success(), "--help must exit 0");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"), "usage header missing:\n{text}");
    for subcommand in ["gen", "sort", "model", "theory"] {
        assert!(
            text.contains(subcommand),
            "usage must mention `{subcommand}`"
        );
    }
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cts().output().expect("run cts");
    assert!(!out.status.success(), "bare invocation must exit nonzero");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("USAGE"),
        "usage not printed to stderr:\n{text}"
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cts()
        .arg("frobnicate")
        .output()
        .expect("run cts frobnicate");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown command"), "stderr:\n{text}");
}

#[test]
fn theory_reports_loads_and_optimum() {
    let out = cts()
        .args(["theory", "--k", "8"])
        .output()
        .expect("run cts theory");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("communication loads"), "stdout:\n{text}");
    assert!(text.contains("CMR"), "stdout:\n{text}");
}

#[test]
fn gen_then_sort_roundtrip() {
    let dir = std::env::temp_dir().join(format!("cts-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    let input = dir.join("input.bin");

    let gen = cts()
        .args(["gen", "--records", "600", "--seed", "7", "--out"])
        .arg(&input)
        .output()
        .expect("run cts gen");
    assert!(
        gen.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert_eq!(
        std::fs::metadata(&input).expect("generated file").len(),
        600 * 100,
        "TeraGen writes 100-byte records"
    );

    let sort = cts()
        .args(["sort", "--k", "4", "--r", "2", "--input"])
        .arg(&input)
        .output()
        .expect("run cts sort");
    assert!(
        sort.status.success(),
        "sort failed: {}",
        String::from_utf8_lossy(&sort.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}
