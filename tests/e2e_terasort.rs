//! End-to-end TeraSort / CodedTeraSort correctness across (K, r).

use coded_terasort::prelude::*;
use cts_terasort::record::{checksum, RECORD_LEN};
use cts_terasort::sort::is_sorted;

/// Coded and uncoded runs must produce byte-identical, TeraValidate-clean
/// output for every (K, r) in a representative grid, including the
/// degenerate corners r = 1 (TeraSort-shaped groups) and r = K (no
/// shuffle at all).
#[test]
fn grid_of_k_r_matches_uncoded() {
    let input = teragen::generate(3_000, 1001);
    for k in [2usize, 3, 4, 5, 6] {
        let baseline = run_terasort(input.clone(), &SortJob::local(k, 1)).unwrap();
        baseline.validate().unwrap();
        for r in 1..=k {
            let coded = run_coded_terasort(input.clone(), &SortJob::local(k, r)).unwrap();
            coded.validate().unwrap();
            assert_eq!(
                coded.outcome.outputs, baseline.outcome.outputs,
                "k={k} r={r}"
            );
        }
    }
}

#[test]
fn output_concatenation_is_globally_sorted() {
    let input = teragen::generate(5_000, 1002);
    let run = run_coded_terasort(input.clone(), &SortJob::local(6, 3)).unwrap();
    let all: Vec<u8> = run.outcome.outputs.iter().flatten().copied().collect();
    assert!(is_sorted(&all));
    assert_eq!(all.len(), input.len());
    assert_eq!(checksum(&all), checksum(&input));
}

#[test]
fn shuffle_byte_measurements_track_theory() {
    let records = 20_000;
    let input = teragen::generate(records, 1003);
    let d = (records * RECORD_LEN) as u64;
    let k = 8;
    let uncoded = run_terasort(input.clone(), &SortJob::local(k, 1)).unwrap();
    let measured = uncoded.outcome.stats.comm_load(d);
    let expected = theory::uncoded_comm_load(1, k);
    assert!(
        (measured - expected).abs() < 0.02,
        "uncoded load {measured} vs {expected}"
    );
    for r in [2usize, 4] {
        let coded = run_coded_terasort(input.clone(), &SortJob::local(k, r)).unwrap();
        let measured = coded.outcome.stats.comm_load(d);
        let expected = theory::coded_comm_load(r, k);
        // Wire headers and zero padding put the measurement a few percent
        // above the closed form at this input size.
        assert!(
            measured >= expected * 0.98 && measured < expected * 1.30,
            "coded load {measured} vs theory {expected} at r={r}"
        );
    }
}

#[test]
fn empty_input_sorts_to_empty() {
    let input = bytes::Bytes::new();
    let run = run_coded_terasort(input, &SortJob::local(4, 2)).unwrap();
    assert!(run.outcome.outputs.iter().all(|o| o.is_empty()));
    run.validate().unwrap();
}

#[test]
fn tiny_input_fewer_records_than_files() {
    // 5 records over C(5,2) = 10 files: most files empty.
    let input = teragen::generate(5, 1004);
    let run = run_coded_terasort(input.clone(), &SortJob::local(5, 2)).unwrap();
    run.validate().unwrap();
    let total: usize = run.outcome.outputs.iter().map(|o| o.len()).sum();
    assert_eq!(total, input.len());
}

#[test]
fn duplicate_keys_are_preserved() {
    // All-identical keys: sorting must keep every record (multiset
    // semantics), and validation's checksum catches any loss.
    let mut buf = Vec::new();
    for i in 0..200usize {
        let mut rec = vec![7u8; RECORD_LEN];
        rec[10] = (i % 251) as u8; // distinct values, equal keys
        buf.extend_from_slice(&rec);
    }
    let input = bytes::Bytes::from(buf);
    let run = run_coded_terasort(input.clone(), &SortJob::local(4, 2)).unwrap();
    run.validate().unwrap();
    let total: usize = run.outcome.outputs.iter().map(|o| o.len()).sum();
    assert_eq!(total, input.len());
}

#[test]
fn radix_and_comparison_kernels_agree_distributed() {
    let input = teragen::generate(4_000, 1005);
    let a = run_coded_terasort(
        input.clone(),
        &SortJob::local(4, 2).with_kernel(SortKernel::Comparison),
    )
    .unwrap();
    let b = run_coded_terasort(
        input,
        &SortJob::local(4, 2).with_kernel(SortKernel::LsdRadix),
    )
    .unwrap();
    assert_eq!(a.outcome.outputs, b.outcome.outputs);
}

#[test]
fn paper_scale_k16_r3_smoke() {
    // The Table II configuration at small input: C(16,3) = 560 files,
    // C(16,4) = 1820 groups.
    let input = teragen::generate(12_000, 1006);
    let run = run_coded_terasort(input.clone(), &SortJob::local(16, 3)).unwrap();
    run.validate().unwrap();
    assert_eq!(run.outcome.stats.num_groups, 1820);
    for n in &run.outcome.stats.per_node {
        assert_eq!(n.files_mapped, 105); // C(15,2)
    }
}
