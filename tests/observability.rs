//! The observability plane end to end: concurrent jobs must separate
//! cleanly in the shared trace/span logs (tenant isolation of the
//! *accounting*, not just the bytes), the daemon must answer STATS and
//! serve a Prometheus dump mid-flight, the TIMELINE frame must be
//! Chrome trace-event JSON whose per-stage extents agree with the span
//! log's own accounting, and `run_until` must drain gracefully.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use coded_terasort::mapreduce::stage::stages;
use coded_terasort::mapreduce::timeline::{chrome_trace, stage_totals_ns};
use coded_terasort::prelude::*;
use coded_terasort::terasort::ResultDigest;

/// Shuffle accounting of one coded sort run alone on a fresh runtime.
fn solo_shuffle_accounting(k: usize, r: usize, input: &Bytes) -> (u64, u64) {
    let runtime = JobRuntime::start(RuntimeConfig::new(EngineConfig::local(k, r))).unwrap();
    let input = input.clone();
    let out = runtime
        .submit(move |ctx| ctx.run_coded(&TeraSortWorkload::range(ctx.cfg.k), input))
        .unwrap()
        .wait()
        .unwrap();
    let acc = (
        out.trace.stage_bytes(stages::SHUFFLE),
        out.trace.stage_wire_sends(stages::SHUFFLE),
    );
    runtime.shutdown();
    acc
}

/// Three coded sorts in flight at once on one fabric: every outcome's
/// trace and span log must carry exactly its own job tag, and its
/// shuffle byte/wire-send accounting must be byte-for-byte what the same
/// job produces running alone — interleaving jobs may not bleed
/// transfers into each other's ledgers.
#[test]
fn concurrent_job_traces_and_spans_separate_cleanly() {
    let (k, r) = (4usize, 2usize);
    let inputs: Vec<Bytes> = (0..3)
        .map(|i| teragen::generate(800 + 200 * i, 11 * i as u64 + 1))
        .collect();
    let solo: Vec<(u64, u64)> = inputs
        .iter()
        .map(|input| solo_shuffle_accounting(k, r, input))
        .collect();

    let runtime = JobRuntime::start(
        RuntimeConfig::new(EngineConfig::local(k, r))
            .with_max_concurrent(3)
            .with_queue_capacity(8),
    )
    .unwrap();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| {
            let input = input.clone();
            runtime
                .submit(move |ctx| ctx.run_coded(&TeraSortWorkload::range(ctx.cfg.k), input))
                .unwrap()
        })
        .collect();
    let ids: Vec<u32> = handles.iter().map(|h| h.id()).collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();

    for ((outcome, id), (solo_bytes, solo_sends)) in outcomes.iter().zip(&ids).zip(&solo) {
        assert_eq!(outcome.trace.jobs(), vec![*id], "foreign job in trace");
        assert_eq!(outcome.spans.jobs(), vec![*id], "foreign job in spans");
        assert_eq!(
            outcome.trace.stage_bytes(stages::SHUFFLE),
            *solo_bytes,
            "job {id}: concurrent shuffle bytes diverged from solo run"
        );
        assert_eq!(
            outcome.trace.stage_wire_sends(stages::SHUFFLE),
            *solo_sends,
            "job {id}: concurrent wire sends diverged from solo run"
        );
        // Every coded stage closed at least one span for this job.
        for stage in [
            stages::CODEGEN,
            stages::MAP,
            stages::PACK_ENCODE,
            stages::SHUFFLE,
            stages::UNPACK_DECODE,
            stages::REDUCE,
        ] {
            assert!(
                !outcome.spans.stage_durations_ns(stage).is_empty(),
                "job {id}: no {stage} span"
            );
        }
    }
    // The fabric-wide log saw all three tenants.
    let all = runtime.fabric().spans_snapshot();
    for id in &ids {
        assert!(all.jobs().contains(id), "job {id} missing from shared log");
    }
    runtime.shutdown();
}

/// Pulls the `u64` after `"key":` out of a serialized trace event.
fn field(event: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = event.find(&pat).unwrap_or_else(|| panic!("no {key}")) + pat.len();
    event[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The exported Chrome trace must reproduce the span log's per-stage
/// accounting: for every stage, the wall extent computed from the JSON
/// events (latest `ts + dur` minus earliest `ts`) matches
/// `stage_totals_ns` to within the format's microsecond rounding.
#[test]
fn chrome_trace_totals_match_span_accounting() {
    let input = teragen::generate(2_000, 42);
    let outcome = run_coded(
        &TeraSortWorkload::range(4),
        input,
        &EngineConfig::local(4, 2),
    )
    .unwrap();
    let json = chrome_trace(&outcome, 0);
    assert!(json.starts_with("{\"traceEvents\":["), "not a trace doc");

    let events: Vec<&str> = json
        .split("{\"name\":")
        .skip(1)
        .map(|e| e.split('}').next().unwrap())
        .collect();
    assert!(!events.is_empty());

    for (stage, wall_ns) in stage_totals_ns(&outcome, 0) {
        let needle = format!("\"{stage}\"");
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        let mut count = 0usize;
        for e in events.iter().filter(|e| e.starts_with(&needle)) {
            let ts = field(e, "ts");
            lo = lo.min(ts);
            hi = hi.max(ts + field(e, "dur"));
            count += 1;
        }
        assert_eq!(count, 4, "{stage}: expected one event per rank");
        let json_wall_us = hi - lo;
        let expect_us = wall_ns / 1_000;
        // Each ts/dur rounds independently to µs (sub-µs durations round
        // *up* to 1), so allow one µs of slack per contributing bound.
        assert!(
            json_wall_us.abs_diff(expect_us) <= 4,
            "{stage}: timeline wall {json_wall_us} µs vs span accounting {expect_us} µs"
        );
    }
}

fn bound_service(k: usize, r: usize) -> SortService {
    let cfg = RuntimeConfig::new(EngineConfig::local(k, r))
        .with_max_concurrent(2)
        .with_queue_capacity(8);
    SortService::bind("127.0.0.1:0", cfg).unwrap()
}

/// Grabs the first sample line of `series` from a Prometheus dump.
fn sample(body: &str, series: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(series))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Live daemon introspection: after two jobs complete, the STATS frame
/// reports their lifecycle counts, admission gauges, and per-stage
/// latency quantiles, and the plain-TCP `/metrics` responder serves a
/// Prometheus text dump whose counters agree.
#[test]
fn stats_frame_and_metrics_endpoint_report_live_counters() {
    let mut svc = bound_service(3, 2);
    let addr = svc.local_addr().unwrap();
    let metrics_addr = svc.serve_metrics(("127.0.0.1", 0)).unwrap();
    let server = std::thread::spawn(move || svc.run().unwrap());

    let mut client = ServiceClient::connect(addr).unwrap();
    let inputs: Vec<Bytes> = (0..2).map(|i| teragen::generate(400, i as u64)).collect();
    for input in &inputs {
        let id = client.submit(&JobKind::Sort, 2, input).unwrap();
        client.digest(id).unwrap(); // blocks until the job is done
    }

    let stats = client.stats().unwrap();
    assert!(
        stats.contains("2 done"),
        "lifecycle counts missing:\n{stats}"
    );
    assert!(
        stats.contains("admission: queue"),
        "gauges missing:\n{stats}"
    );
    assert!(
        stats.contains("p50") && stats.contains("p99"),
        "quantile columns missing:\n{stats}"
    );
    for stage in [stages::MAP, stages::SHUFFLE, stages::REDUCE] {
        assert!(stats.contains(stage), "{stage} row missing:\n{stats}");
    }

    // Scrape the minimal HTTP responder with a raw socket.
    let mut sock = TcpStream::connect(metrics_addr).unwrap();
    sock.write_all(b"GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    sock.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "bad response:\n{resp}");
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
    assert_eq!(sample(body, "cts_jobs_submitted_total"), Some(2.0));
    assert_eq!(sample(body, "cts_jobs_completed_total"), Some(2.0));
    assert_eq!(sample(body, "cts_admission_queue_capacity"), Some(8.0));
    assert!(
        sample(body, "cts_stage_seconds{stage=\"Map\",quantile=\"0.5\"}").is_some(),
        "stage summary missing:\n{body}"
    );

    client.shutdown().unwrap();
    server.join().unwrap();
}

/// The graceful-drain path `cts serve` wires to SIGINT/SIGTERM: raising
/// the stop flag (no SHUTDOWN frame) makes `run_until` return cleanly
/// after in-flight work finishes, and the port stops answering.
#[test]
fn run_until_drains_and_exits_on_stop_flag() {
    let svc = bound_service(3, 2);
    let addr = svc.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || svc.run_until(&stop).unwrap())
    };

    let input = teragen::generate(500, 9);
    let mut client = ServiceClient::connect(addr).unwrap();
    let id = client.submit(&JobKind::Sort, 2, &input).unwrap();
    let digest = client.digest(id).unwrap();
    let local = run_terasort(input, &SortJob::local(3, 1)).unwrap();
    assert_eq!(digest, ResultDigest::of(&local.outcome.outputs));

    stop.store(true, Ordering::SeqCst);
    server.join().expect("run_until did not drain");
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The listener may linger in the accept backlog for an
            // instant; a served connection would answer a STATS frame,
            // a drained one hangs up.
            ServiceClient::connect(addr)
                .map(|mut c| c.stats().is_err())
                .unwrap_or(true)
        },
        "daemon still serving after drain"
    );
}
