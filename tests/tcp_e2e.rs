//! End-to-end runs over the real TCP fabric.

use coded_terasort::mapreduce::wordcount::WordCount;
use coded_terasort::prelude::*;

#[test]
fn coded_terasort_over_tcp_validates() {
    let input = teragen::generate(2_000, 31);
    let job = SortJob {
        k: 5,
        r: 2,
        kernel: SortKernel::Comparison,
        partitioner: PartitionerKind::Range,
        engine: EngineConfig::tcp(5, 2),
    };
    let run = run_coded_terasort(input.clone(), &job).unwrap();
    run.validate().unwrap();
    let local = run_coded_terasort(input, &SortJob::local(5, 2)).unwrap();
    assert_eq!(run.outcome.outputs, local.outcome.outputs);
}

#[test]
fn terasort_over_tcp_validates() {
    let input = teragen::generate(2_000, 32);
    let job = SortJob {
        k: 4,
        r: 1,
        kernel: SortKernel::Comparison,
        partitioner: PartitionerKind::Range,
        engine: EngineConfig::tcp(4, 1),
    };
    let run = run_terasort(input, &job).unwrap();
    run.validate().unwrap();
}

#[test]
fn wordcount_over_tcp_matches_local() {
    let input = bytes::Bytes::from(
        (0..500)
            .map(|i| format!("alpha beta w{} gamma\n", i % 37))
            .collect::<String>(),
    );
    let over_tcp = run_coded(&WordCount, input.clone(), &EngineConfig::tcp(4, 2)).unwrap();
    let local = run_coded(&WordCount, input, &EngineConfig::local(4, 2)).unwrap();
    assert_eq!(over_tcp.outputs, local.outputs);
}

#[test]
fn tcp_trace_matches_local_trace_bytes() {
    // The same algorithm over either fabric must shuffle identical bytes —
    // the trace is transport-independent.
    let input = teragen::generate(1_500, 33);
    let tcp = run_coded_terasort(
        input.clone(),
        &SortJob {
            k: 4,
            r: 2,
            kernel: SortKernel::Comparison,
            partitioner: PartitionerKind::Range,
            engine: EngineConfig::tcp(4, 2),
        },
    )
    .unwrap();
    let local = run_coded_terasort(input, &SortJob::local(4, 2)).unwrap();
    assert_eq!(
        tcp.outcome.trace.stage_bytes(cts_netsim::SHUFFLE_STAGE),
        local.outcome.trace.stage_bytes(cts_netsim::SHUFFLE_STAGE)
    );
    assert_eq!(
        tcp.outcome.stats.shuffle_bytes(),
        local.outcome.stats.shuffle_bytes()
    );
}
