//! Model-level shape assertions: the reproduced tables must show the
//! paper's qualitative structure (who wins, by roughly what factor, where
//! the trends point), independent of exact seconds.
//!
//! Experiment runs are memoized per `(K, r)` so each configuration's full
//! map-shuffle-reduce execution happens once no matter how many tests
//! consume it, and the K = 20 configurations — the most expensive by far
//! (`C(20,6) = 38 760` multicast groups at r = 5) — are `#[ignore]`d by
//! default to keep the tier-1 debug suite fast. CI runs
//! `--include-ignored` in release mode, where they cost a few seconds.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use coded_terasort::bench::Experiment;
use coded_terasort::netsim::StageBreakdown;

fn experiment(k: usize) -> Experiment {
    Experiment {
        k,
        records: 24_000, // 2.4 MB real, projected to 12 GB
        target_bytes: 12_000_000_000,
        seed: 2017,
    }
}

/// Memoized paper-scale breakdowns: `r = 0` encodes the uncoded run.
///
/// One `OnceLock` cell per `(k, r)` key: concurrent tests needing the same
/// config block on that cell (the experiment runs exactly once), while
/// distinct configs still compute in parallel — only the cell lookup holds
/// the map lock.
fn breakdown(k: usize, r: usize) -> StageBreakdown {
    type Cell = Arc<OnceLock<StageBreakdown>>;
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), Cell>>> = OnceLock::new();
    let cell = Arc::clone(
        CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap()
            .entry((k, r))
            .or_default(),
    );
    *cell.get_or_init(|| {
        let exp = experiment(k);
        if r == 0 {
            exp.run_uncoded().breakdown
        } else {
            exp.run_coded(r).breakdown
        }
    })
}

#[test]
fn table2_shape_k16() {
    let base = breakdown(16, 0);
    let r3 = breakdown(16, 3);
    let r5 = breakdown(16, 5);

    // Paper Table II: total ≈ 961 s; speedups 2.16× and 3.39×.
    let total = base.total_s();
    assert!((900.0..1030.0).contains(&total), "TeraSort total {total}");

    let s3 = base.total_s() / r3.total_s();
    let s5 = base.total_s() / r5.total_s();
    assert!((1.8..2.6).contains(&s3), "r=3 speedup {s3}");
    assert!((2.7..3.8).contains(&s5), "r=5 speedup {s5}");
    // Winner ordering at K = 16: r = 5 beats r = 3 beats uncoded.
    assert!(s5 > s3 && s3 > 1.0);

    // Shuffle gain below r but above r/2 (the multicast penalty).
    let g3 = base.shuffle_s / r3.shuffle_s;
    let g5 = base.shuffle_s / r5.shuffle_s;
    assert!(g3 < 3.0 && g3 > 1.7, "shuffle gain r=3: {g3}");
    assert!(g5 < 5.0 && g5 > 2.8, "shuffle gain r=5: {g5}");

    // Map roughly r× the baseline.
    let m3 = r3.map_s / base.map_s;
    assert!((2.4..4.0).contains(&m3), "map ratio r=3: {m3}");

    // Shuffle dominates the uncoded run (paper: 98.4%).
    assert!(base.shuffle_s / base.total_s() > 0.95);
}

#[test]
#[ignore = "K=20 runs are the slowest configs; CI covers them with --include-ignored"]
fn table3_shape_k20() {
    let base = breakdown(20, 0);
    let r3 = breakdown(20, 3);
    let r5 = breakdown(20, 5);

    let s3 = base.total_s() / r3.total_s();
    let s5 = base.total_s() / r5.total_s();
    // Paper Table III: 1.97× and 2.20×.
    assert!((1.7..2.4).contains(&s3), "r=3 speedup {s3}");
    assert!((1.8..2.6).contains(&s5), "r=5 speedup {s5}");

    // The CodeGen wall: C(20,6) = 38760 groups ≈ 128 s modeled — within
    // 15% of the paper's 140.91 s and far above every other non-shuffle
    // stage.
    let cg = r5.codegen_s;
    assert!((110.0..160.0).contains(&cg), "codegen {cg}");
    assert!(cg > r5.map_s + r5.pack_encode_s + r5.reduce_s);
}

#[test]
#[ignore = "needs the K=20 r=5 run; CI covers it with --include-ignored"]
fn speedup_decreases_with_k() {
    // Paper §V-C: "As K increases, the speedup decreases."
    let s16 = breakdown(16, 0).total_s() / breakdown(16, 5).total_s();
    let s20 = breakdown(20, 0).total_s() / breakdown(20, 5).total_s();
    assert!(
        s16 > s20,
        "speedup should fall from K=16 ({s16:.2}) to K=20 ({s20:.2})"
    );
}

#[test]
#[ignore = "needs a K=20 run; CI covers it with --include-ignored"]
fn codegen_time_proportional_to_group_count() {
    // Paper §V-C observation 1. Modeled CodeGen per group must be constant.
    let cg_a = breakdown(16, 3).codegen_s / 1820.0; // C(16,4)
    let cg_b = breakdown(16, 5).codegen_s / 8008.0; // C(16,6)
    let cg_c = breakdown(20, 3).codegen_s / 4845.0; // C(20,4)
    assert!((cg_a - cg_b).abs() / cg_a < 0.01);
    assert!((cg_a - cg_c).abs() / cg_a < 0.01);
}

#[test]
fn scaled_runs_are_scale_invariant() {
    // Two different scaled-run sizes must model nearly identical
    // paper-scale breakdowns — the linearity claim behind the methodology.
    let small = Experiment {
        records: 12_000,
        ..experiment(8)
    };
    let large = Experiment {
        records: 48_000,
        ..experiment(8)
    };
    let a = small.run_coded(3).breakdown;
    let b = large.run_coded(3).breakdown;
    let rel = |x: f64, y: f64| (x - y).abs() / y.max(1e-9);
    assert!(
        rel(a.total_s(), b.total_s()) < 0.05,
        "{} vs {}",
        a.total_s(),
        b.total_s()
    );
    assert!(rel(a.shuffle_s, b.shuffle_s) < 0.05);
    assert!(rel(a.map_s, b.map_s) < 0.05);
}
