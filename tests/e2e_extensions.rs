//! Integration coverage of the §VI extensions: SelfJoin, the pod engine,
//! and skewed-input sampling — across engines and fabrics.

use bytes::Bytes;
use coded_terasort::mapreduce::selfjoin::SelfJoin;
use coded_terasort::mapreduce::wordcount::WordCount;
use coded_terasort::prelude::*;
use cts_terasort::teragen::generate_skewed;

fn selfjoin_corpus() -> Bytes {
    let mut s = String::new();
    for i in 0..1200 {
        s.push_str(&format!("user{}\titem{}\n", i % 40, i % 9));
    }
    Bytes::from(s)
}

#[test]
fn selfjoin_all_engines_agree() {
    let input = selfjoin_corpus();
    let seq = run_sequential(&SelfJoin, &input, 4);
    let unc = run_uncoded(&SelfJoin, input.clone(), &EngineConfig::local(4, 1)).unwrap();
    let coded = run_coded(&SelfJoin, input.clone(), &EngineConfig::local(4, 2)).unwrap();
    let pods = run_coded_pods(&SelfJoin, input, &EngineConfig::local(4, 1), 2).unwrap();
    assert_eq!(seq, unc.outputs);
    assert_eq!(seq, coded.outputs);
    assert_eq!(seq, pods.outputs);
    // There is real join output.
    let total: usize = seq.iter().map(|o| o.len()).sum();
    assert!(total > 0);
}

#[test]
fn selfjoin_emits_all_pairs_for_a_key() {
    // user0 pairs all distinct items it ever saw: C(n, 2) lines.
    let input = selfjoin_corpus();
    let outputs = run_sequential(&SelfJoin, &input, 3);
    let text: String = outputs
        .iter()
        .map(|o| String::from_utf8_lossy(o).to_string())
        .collect();
    let user0_lines = text.lines().filter(|l| l.starts_with("user0: ")).count();
    // user0 occurs with i % 9 item ids → distinct items for user0 depend
    // on the residues of i ≡ 0 (mod 40): items {0%9,40%9,80%9,…}.
    let mut items: Vec<usize> = (0..1200).filter(|i| i % 40 == 0).map(|i| i % 9).collect();
    items.sort_unstable();
    items.dedup();
    let expected = items.len() * (items.len() - 1) / 2;
    assert_eq!(user0_lines, expected);
}

#[test]
fn pods_work_over_tcp() {
    let input = selfjoin_corpus();
    let tcp = run_coded_pods(&SelfJoin, input.clone(), &EngineConfig::tcp(6, 2), 3).unwrap();
    let local = run_coded_pods(&SelfJoin, input, &EngineConfig::local(6, 2), 3).unwrap();
    assert_eq!(tcp.outputs, local.outputs);
}

#[test]
fn pods_sort_terasort_data() {
    use cts_terasort::workload::TeraSortWorkload;
    let input = teragen::generate(4_000, 81);
    let workload = TeraSortWorkload::range(6);
    let pods = run_coded_pods(&workload, input.clone(), &EngineConfig::local(6, 2), 3).unwrap();
    let unc = run_uncoded(&workload, input.clone(), &EngineConfig::local(6, 1)).unwrap();
    assert_eq!(pods.outputs, unc.outputs);
    cts_terasort::validate(&input, &pods.outputs).unwrap();
    // Pod group count: 2 pods × C(3,3) = 2 vs flat C(6,3) = 20.
    assert_eq!(pods.stats.num_groups, 2);
}

#[test]
fn pod_load_sits_between_flat_coded_and_uncoded() {
    let input = teragen::generate(20_000, 82);
    let d = input.len() as u64;
    let workload = cts_terasort::workload::TeraSortWorkload::range(8);
    let unc = run_uncoded(&workload, input.clone(), &EngineConfig::local(8, 1)).unwrap();
    let flat = run_coded(&workload, input.clone(), &EngineConfig::local(8, 2)).unwrap();
    let pods = run_coded_pods(&workload, input, &EngineConfig::local(8, 2), 4).unwrap();
    let (lu, lf, lp) = (
        unc.stats.comm_load(d),
        flat.stats.comm_load(d),
        pods.stats.comm_load(d),
    );
    assert!(lf < lp && lp < lu, "expected {lf} < {lp} < {lu}");
}

#[test]
fn skewed_sort_end_to_end_with_sampling() {
    let input = generate_skewed(6_000, 83, 0.7, 16);
    let job = SortJob::local(6, 3).with_sampling(10);
    let run = run_coded_terasort(input.clone(), &job).unwrap();
    run.validate().unwrap();
    // Balanced partitions despite 70% of keys sharing a 16-bit prefix.
    let max = run.outcome.outputs.iter().map(|o| o.len()).max().unwrap();
    assert!(max < input.len() / 3, "max partition {max}");
}

#[test]
fn wordcount_through_pod_engine() {
    let input = Bytes::from(
        (0..2000)
            .map(|i| format!("w{} common tail{}\n", i % 311, i % 5))
            .collect::<String>(),
    );
    let seq = run_sequential(&WordCount, &input, 6);
    let pods = run_coded_pods(&WordCount, input, &EngineConfig::local(6, 2), 3).unwrap();
    assert_eq!(seq, pods.outputs);
}
