//! Beyond-sorting workloads (paper §VI): coded == uncoded == sequential.

use bytes::Bytes;
use coded_terasort::mapreduce::grep::Grep;
use coded_terasort::mapreduce::invindex::InvertedIndex;
use coded_terasort::mapreduce::wordcount::WordCount;
use coded_terasort::prelude::*;

fn text_corpus() -> Bytes {
    let mut s = String::new();
    for i in 0..4000 {
        s.push_str(&format!(
            "doc{} shuffles data across node {} with coded packet {}\n",
            i % 97,
            i % 13,
            i % 7
        ));
    }
    Bytes::from(s)
}

fn docs_corpus() -> Bytes {
    let mut s = String::new();
    for i in 0..2000 {
        s.push_str(&format!(
            "d{:04}\tterm{} term{} shared{} coded shuffle\n",
            i,
            i % 53,
            (i * 7) % 101,
            i % 3
        ));
    }
    Bytes::from(s)
}

#[test]
fn wordcount_all_engines_agree() {
    let input = text_corpus();
    let seq = run_sequential(&WordCount, &input, 4);
    let unc = run_uncoded(&WordCount, input.clone(), &EngineConfig::local(4, 1)).unwrap();
    assert_eq!(seq, unc.outputs);
    for r in [2usize, 3, 4] {
        let coded = run_coded(&WordCount, input.clone(), &EngineConfig::local(4, r)).unwrap();
        assert_eq!(seq, coded.outputs, "r={r}");
    }
}

#[test]
fn wordcount_totals_conserved() {
    let input = text_corpus();
    let coded = run_coded(&WordCount, input.clone(), &EngineConfig::local(5, 2)).unwrap();
    let total: u64 = coded
        .outputs
        .iter()
        .flat_map(|o| {
            String::from_utf8_lossy(o)
                .lines()
                .map(String::from)
                .collect::<Vec<_>>()
        })
        .map(|l| l.rsplit('\t').next().unwrap().parse::<u64>().unwrap())
        .sum();
    let words = input
        .split(|&b| b.is_ascii_whitespace())
        .filter(|w| !w.is_empty())
        .count() as u64;
    assert_eq!(total, words);
}

#[test]
fn grep_all_engines_agree() {
    let input = text_corpus();
    let grep = Grep::new(&b"node 7"[..]);
    let seq = run_sequential(&grep, &input, 3);
    let unc = run_uncoded(&grep, input.clone(), &EngineConfig::local(3, 1)).unwrap();
    let coded = run_coded(&grep, input.clone(), &EngineConfig::local(3, 2)).unwrap();
    assert_eq!(seq, unc.outputs);
    assert_eq!(seq, coded.outputs);
    // Every emitted line really matches.
    for out in &coded.outputs {
        for line in out.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            assert!(line.windows(6).any(|w| w == b"node 7"));
        }
    }
}

#[test]
fn inverted_index_all_engines_agree() {
    let input = docs_corpus();
    let seq = run_sequential(&InvertedIndex, &input, 4);
    let unc = run_uncoded(&InvertedIndex, input.clone(), &EngineConfig::local(4, 1)).unwrap();
    let coded = run_coded(&InvertedIndex, input.clone(), &EngineConfig::local(4, 3)).unwrap();
    assert_eq!(seq, unc.outputs);
    assert_eq!(seq, coded.outputs);
    // "shared0" must list many documents, comma separated and sorted.
    let joined: String = coded
        .outputs
        .iter()
        .map(|o| String::from_utf8_lossy(o).to_string())
        .collect();
    let line = joined
        .lines()
        .find(|l| l.starts_with("shared0: "))
        .expect("shared0 posting list");
    let docs: Vec<&str> = line["shared0: ".len()..].split(',').collect();
    assert!(docs.len() > 500);
    let mut sorted = docs.clone();
    sorted.sort_unstable();
    assert_eq!(docs, sorted);
}

#[test]
fn coded_shuffle_saves_bytes_on_every_workload() {
    let input = text_corpus();
    let configs = (EngineConfig::local(5, 1), EngineConfig::local(5, 2));
    // WordCount.
    let u = run_uncoded(&WordCount, input.clone(), &configs.0).unwrap();
    let c = run_coded(&WordCount, input.clone(), &configs.1).unwrap();
    assert!(c.stats.shuffle_bytes() < u.stats.shuffle_bytes());
    // Grep.
    let grep = Grep::new(&b"coded"[..]);
    let u = run_uncoded(&grep, input.clone(), &configs.0).unwrap();
    let c = run_coded(&grep, input.clone(), &configs.1).unwrap();
    assert!(c.stats.shuffle_bytes() < u.stats.shuffle_bytes());
    // Inverted index.
    let input = docs_corpus();
    let u = run_uncoded(&InvertedIndex, input.clone(), &configs.0).unwrap();
    let c = run_coded(&InvertedIndex, input, &configs.1).unwrap();
    assert!(c.stats.shuffle_bytes() < u.stats.shuffle_bytes());
}

#[test]
fn lopsided_text_still_correct() {
    // One enormous line plus many empty ones stresses the line splitter.
    let mut s = String::new();
    s.push_str(&"megaword ".repeat(5000));
    s.push('\n');
    for _ in 0..50 {
        s.push('\n');
    }
    s.push_str("tail line\n");
    let input = Bytes::from(s);
    let seq = run_sequential(&WordCount, &input, 3);
    let coded = run_coded(&WordCount, input, &EngineConfig::local(3, 2)).unwrap();
    assert_eq!(seq, coded.outputs);
    let joined: String = coded
        .outputs
        .iter()
        .map(|o| String::from_utf8_lossy(o).to_string())
        .collect();
    assert!(joined.contains("megaword\t5000"));
}
