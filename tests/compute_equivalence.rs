//! Compute-plane equivalence: the sort kernel and the intra-node thread
//! count are *performance* knobs, never *semantic* ones. Every combination
//! of engine × kernel × thread count must produce byte-identical sorted
//! output (the parallel plan is deterministic chunking + stable merge, and
//! all kernels are stable), matching the serial Comparison reference.

use coded_terasort::prelude::*;

fn outputs(job: &SortJob, input: &bytes::Bytes, coded: bool) -> Vec<Vec<u8>> {
    let run = if coded {
        run_coded_terasort(input.clone(), job).expect("coded run")
    } else {
        run_terasort(input.clone(), job).expect("uncoded run")
    };
    run.validate().expect("TeraValidate");
    run.outcome.outputs
}

#[test]
fn kernels_and_threads_are_byte_identical() {
    let input = teragen::generate(3_000, 2026);
    let reference = outputs(&SortJob::local(5, 2), &input, true);
    for kernel in SortKernel::ALL {
        for threads in [1usize, 4] {
            let coded = outputs(
                &SortJob::local(5, 2)
                    .with_kernel(kernel)
                    .with_threads(threads),
                &input,
                true,
            );
            assert_eq!(coded, reference, "coded {kernel} threads={threads}");
            let uncoded = outputs(
                &SortJob::local(5, 1)
                    .with_kernel(kernel)
                    .with_threads(threads),
                &input,
                false,
            );
            assert_eq!(uncoded, reference, "uncoded {kernel} threads={threads}");
        }
    }
}

#[test]
fn duplicate_keys_stay_identical_across_kernels_and_threads() {
    // Records with only 4 distinct keys and value-distinguishable bodies:
    // the case where only *stable* kernels agree. Build it from TeraGen
    // output by collapsing the key space.
    let mut data = teragen::generate(2_400, 7).to_vec();
    for rec in data.chunks_exact_mut(100) {
        let class = rec[10] % 4; // value byte → key class
        rec[..10].copy_from_slice(&[0, 0, 0, 0, 0, 0, 0, 0, 0, class]);
    }
    let input = bytes::Bytes::from(data);
    let reference = outputs(&SortJob::local(4, 2), &input, true);
    for kernel in SortKernel::ALL {
        for threads in [1usize, 4] {
            let got = outputs(
                &SortJob::local(4, 2)
                    .with_kernel(kernel)
                    .with_threads(threads),
                &input,
                true,
            );
            assert_eq!(got, reference, "{kernel} threads={threads}");
        }
    }
}

#[test]
fn threads_zero_uses_machine_parallelism_and_matches() {
    let input = teragen::generate(1_500, 99);
    let reference = outputs(&SortJob::local(4, 2), &input, true);
    let auto = outputs(
        &SortJob::local(4, 2)
            .with_kernel(SortKernel::KeyIndex)
            .with_threads(0),
        &input,
        true,
    );
    assert_eq!(auto, reference);
}

#[test]
fn pipelined_decode_with_threads_matches() {
    let input = teragen::generate(2_000, 41);
    let reference = outputs(&SortJob::local(5, 2), &input, true);
    let mut job = SortJob::local(5, 2)
        .with_kernel(SortKernel::KeyIndex)
        .with_threads(4);
    job.engine = job.engine.with_pipelined_decode();
    assert_eq!(outputs(&job, &input, true), reference);
}

#[test]
fn tcp_fabric_with_threads_matches() {
    let input = teragen::generate(900, 55);
    let reference = outputs(&SortJob::local(4, 2), &input, true);
    let mut job = SortJob::local(4, 2)
        .with_kernel(SortKernel::KeyIndex)
        .with_threads(2);
    job.engine = EngineConfig::tcp(4, 2).with_threads(2);
    assert_eq!(outputs(&job, &input, true), reference);
}
