//! Field equivalence: the coding field is a pure algebra/performance
//! knob, so GF(2) and GF(256) runs must produce **byte-identical** sorted
//! output for the same input — across shuffle fabrics, GF(256) kernels
//! (SIMD and `CTS_FORCE_SCALAR`-forced scalar), thread counts, and the
//! pod-partitioned engine. The wire payloads themselves *must differ*
//! (nontrivial coefficients); only the recovered data is invariant.
//!
//! The decode discipline is the same kind of knob: `--decode quorum`
//! (MDS, any `r−1` of `r`) must match `--decode all` byte-for-byte over
//! every field × fabric × thread-count combination, with the field's
//! degenerate cases (GF(2) has no nontrivial MDS code → quorum falls back
//! to polling the classic code) covered too.

use coded_terasort::mapreduce::run_coded_pods;
use coded_terasort::prelude::*;
use cts_net::udp::multicast_available;
use cts_terasort::workload::TeraSortWorkload;

fn sorted_outputs(job: &SortJob, input: &bytes::Bytes) -> Vec<Vec<u8>> {
    let run = run_coded_terasort(input.clone(), job).expect("coded run");
    run.validate().expect("TeraValidate");
    run.outcome.outputs
}

#[test]
fn gf2_and_gf256_sort_identically_across_fabrics() {
    let (k, r) = (6, 3);
    let input = teragen::generate(1_800, 99);
    let mut fabrics: Vec<ShuffleFabric> = ShuffleFabric::ALL.to_vec();
    if multicast_available() {
        fabrics.push(ShuffleFabric::UdpMulticast);
    }
    let reference = sorted_outputs(&SortJob::local(k, r), &input);
    for &fabric in &fabrics {
        let job = SortJob::local(k, r)
            .with_fabric(fabric)
            .with_field(FieldKind::Gf256);
        assert_eq!(
            sorted_outputs(&job, &input),
            reference,
            "gf256 over {fabric} vs gf2 reference"
        );
    }
}

#[test]
fn gf2_and_gf256_sort_identically_across_thread_counts() {
    let (k, r) = (5, 2);
    let input = teragen::generate(1_500, 41);
    let reference = sorted_outputs(&SortJob::local(k, r), &input);
    for threads in [1usize, 2, 4] {
        for field in FieldKind::ALL {
            let job = SortJob::local(k, r).with_threads(threads).with_field(field);
            assert_eq!(
                sorted_outputs(&job, &input),
                reference,
                "{field} with {threads} threads"
            );
        }
    }
}

#[test]
fn gf256_pods_engine_matches_gf2() {
    let (k, r, pods) = (6usize, 2usize, 3usize);
    let input = teragen::generate(1_200, 17);
    let workload = TeraSortWorkload::range(k);
    let mut outputs = Vec::new();
    for field in FieldKind::ALL {
        let cfg = EngineConfig::local(k, r).with_field(field);
        let outcome = run_coded_pods(&workload, input.clone(), &cfg, pods).expect("pods run");
        outputs.push(outcome.outputs);
    }
    assert_eq!(outputs[0], outputs[1], "pods gf2 vs gf256");
}

#[test]
fn gf256_pipelined_decode_matches_batch() {
    let (k, r) = (6, 2);
    let input = teragen::generate(1_600, 7);
    let batch = SortJob::local(k, r).with_field(FieldKind::Gf256);
    let mut pipelined = batch.clone();
    pipelined.engine = pipelined.engine.with_pipelined_decode();
    assert_eq!(
        sorted_outputs(&batch, &input),
        sorted_outputs(&pipelined, &input),
        "gf256 batch vs pipelined decode"
    );
}

#[test]
fn quorum_decode_matches_all_decode_across_fields_and_fabrics() {
    let (k, r) = (5, 3);
    let input = teragen::generate(1_800, 333);
    let mut fabrics: Vec<ShuffleFabric> = ShuffleFabric::ALL.to_vec();
    if multicast_available() {
        fabrics.push(ShuffleFabric::UdpMulticast);
    }
    let reference = sorted_outputs(&SortJob::local(k, r), &input);
    for &fabric in &fabrics {
        for field in FieldKind::ALL {
            let job = SortJob::local(k, r)
                .with_fabric(fabric)
                .with_field(field)
                .with_decode(DecodeMode::Quorum);
            assert_eq!(
                sorted_outputs(&job, &input),
                reference,
                "quorum {field} over {fabric} vs all-mode reference"
            );
        }
    }
}

#[test]
fn quorum_decode_matches_all_decode_across_thread_counts() {
    let (k, r) = (5, 2);
    let input = teragen::generate(1_500, 41);
    let reference = sorted_outputs(&SortJob::local(k, r), &input);
    for threads in [1usize, 2, 4] {
        for field in FieldKind::ALL {
            let job = SortJob::local(k, r)
                .with_threads(threads)
                .with_field(field)
                .with_decode(DecodeMode::Quorum);
            assert_eq!(
                sorted_outputs(&job, &input),
                reference,
                "quorum {field} with {threads} threads"
            );
        }
    }
}

#[test]
fn forced_scalar_kernel_matches_active_kernel_end_to_end() {
    // `Gf256Kernel::active()` latches once per process, so this test
    // exercises the scalar kernel directly through the per-call `_with`
    // entry points instead of mutating the environment: an encode/decode
    // round trip over the scalar kernel must recover exactly what the
    // dispatched kernel recovers. (The CI matrix runs the whole suite
    // under CTS_FORCE_SCALAR=1 to cover the env-override path.)
    use cts_core::gf256::{add_scaled_slice_with, mul_slice_with, Gf256Kernel};
    let src: Vec<u8> = (0..4097).map(|i| (i * 31 % 251) as u8).collect();
    let c = 0x53u8;
    let mut via_active = vec![0u8; src.len()];
    add_scaled_slice_with(Gf256Kernel::active(), &mut via_active, &src, c);
    mul_slice_with(
        Gf256Kernel::active(),
        &mut via_active,
        cts_core::gf256::inv(c),
    );
    let mut via_scalar = vec![0u8; src.len()];
    add_scaled_slice_with(Gf256Kernel::Scalar, &mut via_scalar, &src, c);
    mul_slice_with(
        Gf256Kernel::Scalar,
        &mut via_scalar,
        cts_core::gf256::inv(c),
    );
    assert_eq!(via_active, via_scalar);
    assert_eq!(via_active, src, "scale ∘ inverse-scale must round-trip");
}
