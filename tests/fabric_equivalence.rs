//! Fabric equivalence: the shuffle fabrics are different *transport
//! schedules* for the same logical exchange, so they must produce
//! byte-identical sorted output — while their traces record very different
//! egress send counts (native multicast sends exactly `1/r` of the frames
//! serial-unicast emulation does). The `udp_` tests extend the bracket to
//! the physical UDP/IP-multicast fabric and skip gracefully where the
//! kernel denies multicast membership.

use coded_terasort::prelude::*;
use cts_net::trace::EventKind;
use cts_net::udp::{multicast_available, skip_without_multicast};

/// Runs one coded sort per fabric and returns (outputs, wire_sends,
/// multicast_events) per fabric, in `ShuffleFabric::ALL` order.
fn run_all_fabrics(k: usize, r: usize, records: usize) -> Vec<(Vec<Vec<u8>>, u64, usize)> {
    let input = teragen::generate(records, 99);
    ShuffleFabric::ALL
        .iter()
        .map(|&fabric| {
            let run = run_coded_terasort(input.clone(), &SortJob::local(k, r).with_fabric(fabric))
                .expect("coded run");
            run.validate().expect("TeraValidate");
            let trace = &run.outcome.trace;
            let wire = trace.stage_wire_sends("Shuffle");
            let multicasts = trace
                .stage_events("Shuffle")
                .filter(|e| e.kind == EventKind::Multicast)
                .count();
            (run.outcome.outputs, wire, multicasts)
        })
        .collect()
}

#[test]
fn all_fabrics_sort_identically() {
    let results = run_all_fabrics(6, 2, 1_800);
    let (serial, fanout, multicast) = (&results[0], &results[1], &results[2]);
    assert_eq!(serial.0, fanout.0, "serial-unicast vs fanout outputs");
    assert_eq!(fanout.0, multicast.0, "fanout vs multicast outputs");
}

#[test]
fn trace_send_counts_scale_with_fabric() {
    let r = 3;
    let results = run_all_fabrics(6, r, 1_800);
    let (serial, fanout, multicast) = (&results[0], &results[1], &results[2]);

    // Same logical exchange: identical multicast-event counts everywhere.
    assert_eq!(serial.2, fanout.2);
    assert_eq!(fanout.2, multicast.2);
    assert!(multicast.2 > 0, "coded shuffle must multicast");

    // Serial and fanout put r copies of every packet on the wire; the
    // native fabric sends each packet once: exactly r× fewer frames.
    assert_eq!(serial.1, fanout.1);
    assert_eq!(serial.1, multicast.1 * r as u64);
    assert!(
        multicast.1 <= serial.1 / r as u64,
        "multicast sends {} > serial {} / r",
        multicast.1,
        serial.1
    );
    // And the send count equals the multicast-event count (one frame per
    // group turn).
    assert_eq!(multicast.1, multicast.2 as u64);
}

#[test]
fn udp_multicast_sorts_identically_with_physical_single_sends() {
    if skip_without_multicast() {
        return;
    }
    let r = 2;
    let input = teragen::generate(1_800, 99);
    let serial = run_coded_terasort(
        input.clone(),
        &SortJob::local(6, r).with_fabric(ShuffleFabric::SerialUnicast),
    )
    .expect("serial run");
    serial.validate().expect("TeraValidate serial");
    let udp = run_coded_terasort(
        input,
        &SortJob::local(6, r).with_fabric(ShuffleFabric::UdpMulticast),
    )
    .expect("udp run");
    udp.validate().expect("TeraValidate udp");

    // Byte-identical output to the serial-unicast baseline.
    assert_eq!(udp.outcome.outputs, serial.outcome.outputs);

    // Physically one egress crossing per group send: every multicast event
    // is traced with wire_copies == 1, so the stage's wire sends equal its
    // multicast-event count — r× fewer frames than serial-unicast.
    let trace = &udp.outcome.trace;
    let multicasts: Vec<_> = trace
        .stage_events("Shuffle")
        .filter(|e| e.kind == EventKind::Multicast)
        .collect();
    assert!(!multicasts.is_empty());
    assert!(multicasts.iter().all(|e| e.wire_copies == 1));
    assert_eq!(
        trace.stage_wire_sends("Shuffle"),
        multicasts.len() as u64,
        "one physical frame per multicast send"
    );
    assert_eq!(
        serial.outcome.trace.stage_wire_sends("Shuffle"),
        multicasts.len() as u64 * r as u64,
    );
}

#[test]
fn udp_trace_is_bracketed_by_the_netsim_oracle() {
    if skip_without_multicast() {
        return;
    }
    use cts_netsim::config::NetModelConfig;
    use cts_netsim::fluid::predict_fabric_shuffle_s;
    use cts_netsim::serial::serial_fabric_makespan;

    let input = teragen::generate(2_400, 17);
    let run = run_coded_terasort(
        input,
        &SortJob::local(6, 3).with_fabric(ShuffleFabric::UdpMulticast),
    )
    .unwrap();
    run.validate().unwrap();
    let trace = &run.outcome.trace;
    let net = NetModelConfig::ec2_100mbps();
    for fabric in ShuffleFabric::ALL_WITH_UDP {
        let serial = serial_fabric_makespan(trace, "Shuffle", fabric, &net, 1.0);
        let fluid = predict_fabric_shuffle_s(trace, "Shuffle", fabric, &net, 1.0);
        assert!(serial > 0.0, "{fabric}");
        // The fluid (concurrent) bound can never exceed the strictly
        // serial schedule of the same flows.
        assert!(
            fluid <= serial * 1.0001,
            "{fabric}: fluid {fluid} > serial {serial}"
        );
    }
    // The physical fabric models identically to the emulated native
    // multicast, and strictly below serial-unicast emulation.
    let udp_model =
        serial_fabric_makespan(trace, "Shuffle", ShuffleFabric::UdpMulticast, &net, 1.0);
    let native = serial_fabric_makespan(trace, "Shuffle", ShuffleFabric::Multicast, &net, 1.0);
    let serial_uni =
        serial_fabric_makespan(trace, "Shuffle", ShuffleFabric::SerialUnicast, &net, 1.0);
    assert!((udp_model - native).abs() < 1e-12);
    assert!(udp_model < serial_uni);
}

/// Regression for the wire-copy / receiver-mask accounting across the
/// three emulated fabrics (plus the physical one when available): the
/// *logical* exchange — multicast events with identical `(src, mask,
/// bytes)` multisets — must be fabric-invariant, while `stage_wire_sends`
/// scales exactly with each fabric's `wire_copies` factor.
#[test]
fn wire_copy_and_mask_accounting_is_consistent_across_fabrics() {
    let r = 3usize;
    let input = teragen::generate(1_500, 55);
    let mut fabrics: Vec<ShuffleFabric> = ShuffleFabric::ALL.to_vec();
    if multicast_available() {
        fabrics.push(ShuffleFabric::UdpMulticast);
    }
    let mut exchanges: Vec<Vec<(u16, u128, u64)>> = Vec::new();
    let mut wire_sends = Vec::new();
    let mut event_counts = Vec::new();
    for &fabric in &fabrics {
        let run =
            run_coded_terasort(input.clone(), &SortJob::local(6, r).with_fabric(fabric)).unwrap();
        let trace = &run.outcome.trace;
        // Event interleaving across sender threads is nondeterministic, so
        // compare the multiset (sorted) of logical transfers.
        let mut events: Vec<(u16, u128, u64)> = trace
            .stage_events("Shuffle")
            .filter(|e| e.kind == EventKind::Multicast)
            .map(|e| (e.src, e.dsts, e.bytes))
            .collect();
        events.sort_unstable();
        event_counts.push(events.len() as u64);
        exchanges.push(events);
        wire_sends.push(trace.stage_wire_sends("Shuffle"));
    }
    for (i, fabric) in fabrics.iter().enumerate().skip(1) {
        assert_eq!(
            exchanges[0], exchanges[i],
            "logical exchange differs under {fabric}"
        );
    }
    // serial-unicast and fanout charge fanout(=r) copies per event; the
    // native and physical multicast fabrics charge one.
    assert_eq!(wire_sends[0], event_counts[0] * r as u64);
    assert_eq!(wire_sends[1], wire_sends[0]);
    assert_eq!(wire_sends[2], event_counts[2]);
    if let Some(udp_sends) = wire_sends.get(3) {
        assert_eq!(*udp_sends, event_counts[3]);
    }
}

#[test]
fn fabrics_agree_over_real_tcp() {
    // Spot-check that the overlapped non-blocking TCP writes of the
    // fanout/multicast path deliver the same bytes as the in-memory run.
    let input = teragen::generate(900, 41);
    let local = run_coded_terasort(
        input.clone(),
        &SortJob::local(4, 2).with_fabric(ShuffleFabric::Multicast),
    )
    .unwrap();
    for fabric in ShuffleFabric::ALL {
        let mut job = SortJob::local(4, 2).with_fabric(fabric);
        job.engine = EngineConfig::tcp(4, 2).with_fabric(fabric);
        let tcp = run_coded_terasort(input.clone(), &job).unwrap();
        tcp.validate().unwrap();
        assert_eq!(
            tcp.outcome.outputs, local.outcome.outputs,
            "tcp {fabric} vs local"
        );
    }
}

#[test]
fn emulated_nic_orders_fabric_wall_clock() {
    // With an emulated NIC (rate + per-transfer latency), the *measured*
    // shuffle wall-clock must show the fabric hierarchy at small scale:
    // serial-unicast strictly slowest, native multicast at least as fast
    // as fanout. Kept tiny so the tier-1 suite stays fast; the
    // `ablation_fabric` bench runs the full-size version at K ∈ {16,20,64}.
    // Serial-unicast and fanout move the *same* bytes (r copies); they
    // differ by (r−1) NIC latencies per group send, so the latency term is
    // sized to dominate: per node, 4 group sends × r=3 × 4 ms ≈ 48 ms
    // serial vs 16 ms fanout, plus equal byte time — a ≥30% deterministic
    // gap. Multicast additionally cuts the byte term r×.
    let input = teragen::generate(9_000, 7);
    let mut nic = NicProfile::rate_limited(4_000_000.0) // 4 MB/s
        .with_latency_s(4e-3)
        .with_multicast_alpha(0.30);
    nic.burst_bytes = 4096.0; // keep the bucket binding at this small scale
    let mut walls = Vec::new();
    let mut outputs = Vec::new();
    for fabric in ShuffleFabric::ALL {
        let job = SortJob::local(5, 3).with_fabric(fabric).with_nic(nic);
        let run = run_coded_terasort(input.clone(), &job).unwrap();
        run.validate().unwrap();
        walls.push(run.outcome.wall.max.shuffle);
        outputs.push(run.outcome.outputs);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    let (serial, fanout, multicast) = (walls[0], walls[1], walls[2]);
    // Serial-unicast pays (r−1) extra NIC latencies and r× the multicast
    // bytes per group send — a deterministic ~2× gap at this scale, so a
    // 0.75 factor leaves ample headroom for scheduler noise. The tighter
    // multicast-vs-fanout ordering is asserted at robust scale by the
    // `ablation_fabric` bench, not here in the tier-1 suite.
    assert!(
        fanout.as_secs_f64() < 0.75 * serial.as_secs_f64(),
        "fanout {fanout:?} not clearly below serial-unicast {serial:?}"
    );
    assert!(
        multicast.as_secs_f64() < 0.75 * serial.as_secs_f64(),
        "multicast {multicast:?} not clearly below serial-unicast {serial:?}"
    );
    // Sanity (noise-tolerant): native multicast never does *worse* than
    // fanout by more than jitter.
    assert!(
        multicast.as_secs_f64() < 1.15 * fanout.as_secs_f64(),
        "multicast {multicast:?} much slower than fanout {fanout:?}"
    );
}
