//! Fabric equivalence: the three shuffle fabrics are different *transport
//! schedules* for the same logical exchange, so they must produce
//! byte-identical sorted output — while their traces record very different
//! egress send counts (native multicast sends exactly `1/r` of the frames
//! serial-unicast emulation does).

use coded_terasort::prelude::*;
use cts_net::trace::EventKind;

/// Runs one coded sort per fabric and returns (outputs, wire_sends,
/// multicast_events) per fabric, in `ShuffleFabric::ALL` order.
fn run_all_fabrics(k: usize, r: usize, records: usize) -> Vec<(Vec<Vec<u8>>, u64, usize)> {
    let input = teragen::generate(records, 99);
    ShuffleFabric::ALL
        .iter()
        .map(|&fabric| {
            let run = run_coded_terasort(input.clone(), &SortJob::local(k, r).with_fabric(fabric))
                .expect("coded run");
            run.validate().expect("TeraValidate");
            let trace = &run.outcome.trace;
            let wire = trace.stage_wire_sends("Shuffle");
            let multicasts = trace
                .stage_events("Shuffle")
                .filter(|e| e.kind == EventKind::Multicast)
                .count();
            (run.outcome.outputs, wire, multicasts)
        })
        .collect()
}

#[test]
fn all_fabrics_sort_identically() {
    let results = run_all_fabrics(6, 2, 1_800);
    let (serial, fanout, multicast) = (&results[0], &results[1], &results[2]);
    assert_eq!(serial.0, fanout.0, "serial-unicast vs fanout outputs");
    assert_eq!(fanout.0, multicast.0, "fanout vs multicast outputs");
}

#[test]
fn trace_send_counts_scale_with_fabric() {
    let r = 3;
    let results = run_all_fabrics(6, r, 1_800);
    let (serial, fanout, multicast) = (&results[0], &results[1], &results[2]);

    // Same logical exchange: identical multicast-event counts everywhere.
    assert_eq!(serial.2, fanout.2);
    assert_eq!(fanout.2, multicast.2);
    assert!(multicast.2 > 0, "coded shuffle must multicast");

    // Serial and fanout put r copies of every packet on the wire; the
    // native fabric sends each packet once: exactly r× fewer frames.
    assert_eq!(serial.1, fanout.1);
    assert_eq!(serial.1, multicast.1 * r as u64);
    assert!(
        multicast.1 <= serial.1 / r as u64,
        "multicast sends {} > serial {} / r",
        multicast.1,
        serial.1
    );
    // And the send count equals the multicast-event count (one frame per
    // group turn).
    assert_eq!(multicast.1, multicast.2 as u64);
}

#[test]
fn fabrics_agree_over_real_tcp() {
    // Spot-check that the overlapped non-blocking TCP writes of the
    // fanout/multicast path deliver the same bytes as the in-memory run.
    let input = teragen::generate(900, 41);
    let local = run_coded_terasort(
        input.clone(),
        &SortJob::local(4, 2).with_fabric(ShuffleFabric::Multicast),
    )
    .unwrap();
    for fabric in ShuffleFabric::ALL {
        let mut job = SortJob::local(4, 2).with_fabric(fabric);
        job.engine = EngineConfig::tcp(4, 2).with_fabric(fabric);
        let tcp = run_coded_terasort(input.clone(), &job).unwrap();
        tcp.validate().unwrap();
        assert_eq!(
            tcp.outcome.outputs, local.outcome.outputs,
            "tcp {fabric} vs local"
        );
    }
}

#[test]
fn emulated_nic_orders_fabric_wall_clock() {
    // With an emulated NIC (rate + per-transfer latency), the *measured*
    // shuffle wall-clock must show the fabric hierarchy at small scale:
    // serial-unicast strictly slowest, native multicast at least as fast
    // as fanout. Kept tiny so the tier-1 suite stays fast; the
    // `ablation_fabric` bench runs the full-size version at K ∈ {16,20,64}.
    // Serial-unicast and fanout move the *same* bytes (r copies); they
    // differ by (r−1) NIC latencies per group send, so the latency term is
    // sized to dominate: per node, 4 group sends × r=3 × 4 ms ≈ 48 ms
    // serial vs 16 ms fanout, plus equal byte time — a ≥30% deterministic
    // gap. Multicast additionally cuts the byte term r×.
    let input = teragen::generate(9_000, 7);
    let mut nic = NicProfile::rate_limited(4_000_000.0) // 4 MB/s
        .with_latency_s(4e-3)
        .with_multicast_alpha(0.30);
    nic.burst_bytes = 4096.0; // keep the bucket binding at this small scale
    let mut walls = Vec::new();
    let mut outputs = Vec::new();
    for fabric in ShuffleFabric::ALL {
        let job = SortJob::local(5, 3).with_fabric(fabric).with_nic(nic);
        let run = run_coded_terasort(input.clone(), &job).unwrap();
        run.validate().unwrap();
        walls.push(run.outcome.wall.max.shuffle);
        outputs.push(run.outcome.outputs);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    let (serial, fanout, multicast) = (walls[0], walls[1], walls[2]);
    // Serial-unicast pays (r−1) extra NIC latencies and r× the multicast
    // bytes per group send — a deterministic ~2× gap at this scale, so a
    // 0.75 factor leaves ample headroom for scheduler noise. The tighter
    // multicast-vs-fanout ordering is asserted at robust scale by the
    // `ablation_fabric` bench, not here in the tier-1 suite.
    assert!(
        fanout.as_secs_f64() < 0.75 * serial.as_secs_f64(),
        "fanout {fanout:?} not clearly below serial-unicast {serial:?}"
    );
    assert!(
        multicast.as_secs_f64() < 0.75 * serial.as_secs_f64(),
        "multicast {multicast:?} not clearly below serial-unicast {serial:?}"
    );
    // Sanity (noise-tolerant): native multicast never does *worse* than
    // fanout by more than jitter.
    assert!(
        multicast.as_secs_f64() < 1.15 * fanout.as_secs_f64(),
        "multicast {multicast:?} much slower than fanout {fanout:?}"
    );
}
