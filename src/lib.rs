//! # coded-terasort — a full reproduction of *Coded TeraSort* (Li,
//! Supittayapornpong, Maddah-Ali, Avestimehr, 2017)
//!
//! CodedTeraSort attacks the dominant cost of distributed sorting — the
//! data shuffle — by *coding*: every input file is redundantly mapped on
//! `r` carefully chosen nodes, which lets nodes exchange XOR-coded
//! multicast packets that serve `r` receivers at once, cutting the shuffle
//! load by exactly `r×` (paper eq. (2)). On EC2 the paper measured
//! 1.97×–3.39× end-to-end speedups over conventional TeraSort; this
//! workspace reproduces the system and those results in Rust.
//!
//! ## Crates
//!
//! | crate | role |
//! |---|---|
//! | [`coding`] | the coding layer: placement, groups, Algorithm 1 (encode), Algorithm 2 (decode), CMR theory |
//! | [`net`] | MPI-like substrate: mailboxes, in-memory + TCP fabrics, collectives, tracing, rate limiting |
//! | [`netsim`] | the EC2 stand-in: calibrated performance model, serial schedule, parallel-shuffle simulator |
//! | [`mapreduce`] | uncoded (§III) and coded (§IV) engines; WordCount/Grep/inverted-index workloads |
//! | [`terasort`] | TeraGen, partitioners, sort kernels, TeraSort/CodedTeraSort drivers, TeraValidate |
//! | [`bench`](mod@bench) | the experiment harness regenerating every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use coded_terasort::prelude::*;
//!
//! // 2 000 records, 4 workers, redundancy r = 2.
//! let input = teragen::generate(2_000, 42);
//! let coded = run_coded_terasort(input.clone(), &SortJob::local(4, 2)).unwrap();
//! let plain = run_terasort(input, &SortJob::local(4, 1)).unwrap();
//!
//! coded.validate().unwrap(); // TeraValidate: sorted, ordered, lossless
//! assert_eq!(coded.outcome.outputs, plain.outcome.outputs);
//!
//! // The coded shuffle moved ~r× fewer bytes.
//! let gain = plain.outcome.stats.shuffle_bytes() as f64
//!     / coded.outcome.stats.shuffle_bytes() as f64;
//! assert!(gain > 1.4);
//! ```
//!
//! See `examples/` for runnable walkthroughs (the paper's Fig. 1 example,
//! an EC2-scale emulation, coded WordCount, a real-TCP cluster, and the
//! `r*` tuning rule) and `crates/bench/benches/` for the per-table/figure
//! reproduction harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use cts_bench as bench;
pub use cts_core as coding;
pub use cts_mapreduce as mapreduce;
pub use cts_net as net;
pub use cts_netsim as netsim;
pub use cts_terasort as terasort;

/// The most common imports in one place.
pub mod prelude {
    pub use cts_core::theory;
    pub use cts_core::{
        BufPool, CodedPacket, DecodeMode, Decoder, EncodeScratch, Encoder, FieldKind, Gf256Kernel,
        MapOutputStore, MulticastGroups, NodeSet, PlacementPlan, WorkerPool,
    };
    pub use cts_mapreduce::{
        run_coded, run_coded_pods, run_sequential, run_uncoded, EngineConfig, InputFormat,
        JobRuntime, JobStatus, RuntimeConfig, Workload,
    };
    pub use cts_net::{
        run_spmd, BcastAlgorithm, ClusterConfig, Communicator, NicProfile, ShuffleFabric, Tag,
    };
    pub use cts_netsim::{render_table, PerfModel, PerfModelConfig, RunStats, StageBreakdown};
    pub use cts_terasort::teragen;
    pub use cts_terasort::{
        run_coded_terasort, run_terasort, JobKind, PartitionerKind, RemoteStatus, ServiceClient,
        SortJob, SortKernel, SortService, TeraSortWorkload,
    };
}
