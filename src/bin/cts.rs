//! `cts` — the command-line face of the reproduction.
//!
//! ```text
//! cts gen    --records 100000 --out data.bin [--seed 7] [--skew 0.6]
//! cts sort   --input data.bin --k 8 --r 3 [--pods 4] [--sampled 16]
//!            [--tcp] [--sort-kernel key-index] [--threads 4]
//!            [--fabric udp-multicast] [--field gf256] [--decode quorum]
//!            [--recovery speculative] [--heartbeat-ms 25]
//!            [--idle-timeout-ms 10000] [--paper-nic]
//! cts serve  --k 4 --r 2 --port 0 [--tcp] [--max-concurrent 4] [--queue 16]
//!            [--metrics-port 9100]
//! cts submit --addr 127.0.0.1:7117 --kind sort --records 10000 [--r 2]
//!            [--timeline trace.json]
//! cts stats  --addr 127.0.0.1:7117
//! cts model  --k 16 --r 3 [--records 120000] [--target-gb 12]
//! cts theory --k 16 [--tmap 1.86 --tshuffle 945.72 --treduce 10.47]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use bytes::Bytes;
use coded_terasort::bench::Experiment;
use coded_terasort::mapreduce::run_coded_pods;
use coded_terasort::prelude::*;
use cts_terasort::workload::TeraSortWorkload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "sort" => cmd_sort(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "stats" => cmd_stats(&opts),
        "model" => cmd_model(&opts),
        "theory" => cmd_theory(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cts — Coded TeraSort reproduction CLI

USAGE:
  cts gen    --records N --out FILE [--seed S] [--skew F]
               generate TeraGen records (100 B each; --skew hot-fraction)
  cts sort   --input FILE --k K [--r R] [--pods G] [--sampled STRIDE]
               [--tcp] [--radix] [--no-validate]
               [--sort-kernel comparison|lsd-radix|key-index] [--threads T]
               [--fabric serial-unicast|fanout|multicast|udp-multicast]
               [--field gf2|gf256] [--decode all|quorum] [--paper-nic]
               sort a file: r=1 → TeraSort, r>1 → CodedTeraSort,
               --pods G → pod-partitioned coded engine,
               --sort-kernel → Reduce sort algorithm (--radix is the
                 lsd-radix shorthand), --threads → intra-node workers for
                 Map/Encode/Decode/Reduce (0 = all cores),
               --field → finite field for coded packets (gf2 = the
                 paper's XOR code, default; gf256 = q-ary combinations on
                 SIMD kernels — same sorted output, different wire bytes),
               --fabric → how multicast groups hit the wire (udp-multicast =
               physical IP multicast; needs kernel multicast support),
               --decode → coded decode discipline (all = the paper's
                 barrier-on-all, default; quorum = release each group once
                 any r-1 of r coded packets arrive — GF(256) MDS code, the
                 shuffle outruns stragglers; same sorted output),
               --recovery off|speculative → rank-death handling (off =
                 fail fast with a typed error, default; speculative =
                 heartbeat failure detection + re-execution of the dead
                 rank's work on survivors; needs --field gf256
                 --decode quorum and r >= 2; same sorted output),
               --heartbeat-ms N → health beacon interval (death declared
                 after ~36 silent intervals; default 25),
               --idle-timeout-ms N → quorum shuffle zero-progress
                 deadline (default 10000),
               --paper-nic → emulate the paper's 100 Mbps NIC in real time
  cts serve  --k K [--r R] [--port P] [--tcp] [--max-concurrent N]
               [--queue N] [--threads T] [--metrics-port P]
               run the multi-tenant sort service: a resident job runtime
               (shared fabric + admission queue) that clients submit
               sort/wordcount/grep jobs into. --port 0 picks an ephemeral
               port and prints it. --tcp backs the fabric with real
               sockets; --max-concurrent bounds in-flight jobs (1 =
               exclusive mode, full tag space); --queue bounds admitted-
               but-not-running jobs (beyond it, submits are refused);
               --metrics-port binds a Prometheus text endpoint
               (`curl http://127.0.0.1:P/metrics`). SIGINT/SIGTERM drain
               gracefully: admission stops, in-flight jobs finish, exit 0
  cts submit --addr HOST:PORT --kind sort|wordcount|grep
               (--input FILE | --records N [--seed S]) [--pattern P]
               [--r R] [--out FILE] [--no-wait] [--shutdown]
               [--timeline FILE]
               submit a job to a running `cts serve`. Default waits and
               prints the result digest; --out also fetches the full
               output; --no-wait prints the job id and returns;
               --timeline writes the job's per-rank stage timeline as
               Chrome trace-event JSON (open in chrome://tracing);
               --shutdown (alone) stops the service
  cts stats  --addr HOST:PORT
               print a running service's live stats: job lifecycle
               counts, admission queue / slot occupancy, stage-latency
               summary (p50/p99/max), per-job stage walls and NIC stalls
  cts model  --k K --r R [--records N] [--target-gb G]
               modeled paper-scale stage breakdown (EC2 calibration)
  cts theory --k K [--tmap S --tshuffle S --treduce S]
               communication loads and the optimal r* (eqs. (2),(4),(5))";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{arg}`"));
        };
        // Boolean flags take no value.
        if matches!(
            name,
            "tcp" | "radix" | "no-validate" | "paper-nic" | "no-wait" | "shutdown"
        ) {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn req<T: std::str::FromStr>(opts: &Flags, name: &str) -> Result<T, String> {
    opts.get(name)
        .ok_or_else(|| format!("--{name} is required"))?
        .parse()
        .map_err(|_| format!("--{name}: cannot parse `{}`", opts[name]))
}

fn opt<T: std::str::FromStr>(opts: &Flags, name: &str, default: T) -> Result<T, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn cmd_gen(opts: &Flags) -> Result<(), String> {
    let records: usize = req(opts, "records")?;
    let out: String = req(opts, "out")?;
    let seed: u64 = opt(opts, "seed", 2017)?;
    let skew: f64 = opt(opts, "skew", 0.0)?;
    let data = if skew > 0.0 {
        cts_terasort::teragen::generate_skewed(records, seed, skew, 16)
    } else {
        teragen::generate(records, seed)
    };
    std::fs::write(&out, &data).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} records ({:.1} MB) to {out}",
        records,
        data.len() as f64 / 1e6
    );
    Ok(())
}

fn cmd_sort(opts: &Flags) -> Result<(), String> {
    let input_path: String = req(opts, "input")?;
    let k: usize = req(opts, "k")?;
    let r: usize = opt(opts, "r", 1)?;
    let pods: usize = opt(opts, "pods", 0)?;
    let sampled: usize = opt(opts, "sampled", 0)?;
    let tcp = opts.contains_key("tcp");
    let validate = !opts.contains_key("no-validate");
    let paper_nic = opts.contains_key("paper-nic");
    let threads: usize = opt(opts, "threads", 1)?;
    let kernel: SortKernel = match opts.get("sort-kernel") {
        Some(v) => v.parse()?,
        None if opts.contains_key("radix") => SortKernel::LsdRadix,
        None => SortKernel::Comparison,
    };
    let fabric: cts_net::ShuffleFabric = match opts.get("fabric") {
        None => cts_net::ShuffleFabric::default(),
        Some(v) => v.parse()?,
    };
    let field: cts_core::FieldKind = match opts.get("field") {
        None => cts_core::FieldKind::default(),
        Some(v) => v.parse()?,
    };
    let decode: cts_core::decode::DecodeMode = match opts.get("decode") {
        None => cts_core::decode::DecodeMode::default(),
        Some(v) => v.parse()?,
    };
    if decode == cts_core::decode::DecodeMode::Quorum && r <= 1 {
        return Err("--decode quorum needs --r 2 or more (no coded groups at r = 1)".to_string());
    }
    let recovery: coded_terasort::mapreduce::RecoveryMode = opt(
        opts,
        "recovery",
        coded_terasort::mapreduce::RecoveryMode::Off,
    )
    .map_err(|e| format!("{e} (expected `speculative` or `off`)"))?;
    let heartbeat_ms: u64 = opt(opts, "heartbeat-ms", 25)?;
    let idle_timeout_ms: u64 = opt(opts, "idle-timeout-ms", 10_000)?;
    if recovery == coded_terasort::mapreduce::RecoveryMode::Speculative
        && (field != cts_core::FieldKind::Gf256
            || decode != cts_core::decode::DecodeMode::Quorum
            || r < 2)
    {
        return Err(
            "--recovery speculative needs --field gf256, --decode quorum, and --r 2 or more \
             (the MDS quorum absorbs one dead sender per group)"
                .to_string(),
        );
    }
    if recovery != coded_terasort::mapreduce::RecoveryMode::Off && pods > 0 {
        return Err("--recovery is not supported with --pods".to_string());
    }

    let raw = std::fs::read(&input_path).map_err(|e| format!("reading {input_path}: {e}"))?;
    let input = Bytes::from(raw);
    println!(
        "sorting {:.1} MB with K = {k}, r = {r}{}{} over {}…",
        input.len() as f64 / 1e6,
        if pods > 0 {
            format!(", pods of {pods}")
        } else {
            String::new()
        },
        if sampled > 0 { ", sampled" } else { "" },
        if fabric == cts_net::ShuffleFabric::UdpMulticast {
            "UDP multicast (TCP control channel)"
        } else if tcp {
            "TCP"
        } else {
            "in-memory channels"
        },
    );

    let mut job = if tcp {
        SortJob {
            k,
            r,
            kernel: SortKernel::Comparison,
            partitioner: PartitionerKind::Range,
            engine: EngineConfig::tcp(k, r),
        }
    } else {
        SortJob::local(k, r)
    };
    job = job.with_kernel(kernel).with_threads(threads);
    if sampled > 0 {
        job = job.with_sampling(sampled);
    }
    job = job
        .with_fabric(fabric)
        .with_field(field)
        .with_decode(decode)
        .with_recovery(recovery)
        .with_heartbeat(std::time::Duration::from_millis(heartbeat_ms))
        .with_idle_timeout(std::time::Duration::from_millis(idle_timeout_ms));
    if recovery == coded_terasort::mapreduce::RecoveryMode::Speculative {
        println!(
            "recovery: speculative ({heartbeat_ms} ms heartbeats; a dead rank's partition is \
             re-executed on its successor)"
        );
    }
    if decode == cts_core::decode::DecodeMode::Quorum {
        println!(
            "decode: quorum (any {} of {r} coded packets release a group)",
            cts_core::solve::mds_parts(r + 1)
        );
    }
    if field == cts_core::FieldKind::Gf256 {
        println!(
            "coding field: GF(256), kernel {}",
            cts_core::Gf256Kernel::active()
        );
    }
    if paper_nic {
        job = job.with_nic(cts_net::NicProfile::paper_100mbps());
        println!("emulating the paper's NIC: 100 Mbps egress, 0.1 ms/transfer, α = 0.30");
    }

    let started = std::time::Instant::now();
    let (outputs, stats) = if pods > 0 {
        let workload = TeraSortWorkload::range(k);
        let outcome = run_coded_pods(&workload, input.clone(), &job.engine, pods)
            .map_err(|e| e.to_string())?;
        (outcome.outputs, outcome.stats)
    } else if r > 1 {
        let run = run_coded_terasort(input.clone(), &job).map_err(|e| e.to_string())?;
        (run.outcome.outputs, run.outcome.stats)
    } else {
        let run = run_terasort(input.clone(), &job).map_err(|e| e.to_string())?;
        (run.outcome.outputs, run.outcome.stats)
    };
    let elapsed = started.elapsed();

    if validate {
        cts_terasort::validate(&input, &outputs).map_err(|e| format!("TeraValidate: {e}"))?;
        println!("TeraValidate passed ✓");
    }
    println!("wall-clock: {elapsed:.2?}");
    println!(
        "shuffle: {} bytes across the wire (load {:.4}; TeraSort baseline {:.4})",
        stats.shuffle_bytes(),
        stats.comm_load(input.len() as u64),
        theory::uncoded_comm_load(1, k),
    );
    Ok(())
}

fn cmd_serve(opts: &Flags) -> Result<(), String> {
    let k: usize = req(opts, "k")?;
    let r: usize = opt(opts, "r", 1)?;
    let port: u16 = opt(opts, "port", 7117)?;
    let max_concurrent: usize = opt(opts, "max-concurrent", 4)?;
    let queue: usize = opt(opts, "queue", 16)?;
    let threads: usize = opt(opts, "threads", 0)?;
    let tcp = opts.contains_key("tcp");

    let template = if tcp {
        EngineConfig::tcp(k, r)
    } else {
        EngineConfig::local(k, r)
    };
    let cfg = RuntimeConfig::new(template)
        .with_max_concurrent(max_concurrent)
        .with_queue_capacity(queue)
        .with_pool_threads(threads);
    let mut service = SortService::bind(("127.0.0.1", port), cfg).map_err(|e| e.to_string())?;
    let addr = service.local_addr().map_err(|e| e.to_string())?;
    println!(
        "cts serve listening on {addr} (K = {k}, default r = {r}, {} fabric, \
         {max_concurrent} concurrent jobs, queue depth {queue})",
        if tcp { "TCP" } else { "in-memory" },
    );
    if let Some(mp) = opts.get("metrics-port") {
        let mport: u16 = mp
            .parse()
            .map_err(|_| format!("--metrics-port: cannot parse `{mp}`"))?;
        let maddr = service.serve_metrics(("127.0.0.1", mport))?;
        println!("metrics endpoint: curl http://{maddr}/metrics");
    }
    println!("submit with: cts submit --addr {addr} --kind sort --records 1000");
    signals::install();
    service.run_until(signals::stop_flag())
}

/// SIGINT/SIGTERM → a process-wide stop flag the serve loop drains on.
/// Registered through the raw C `signal` entry point: the handler only
/// stores into an atomic, which is async-signal-safe.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    pub fn stop_flag() -> &'static AtomicBool {
        &STOP
    }

    #[cfg(unix)]
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn cmd_stats(opts: &Flags) -> Result<(), String> {
    let addr: String = req(opts, "addr")?;
    let mut client = ServiceClient::connect(&*addr)?;
    print!("{}", client.stats()?);
    Ok(())
}

fn cmd_submit(opts: &Flags) -> Result<(), String> {
    let addr: String = req(opts, "addr")?;
    let mut client = ServiceClient::connect(&*addr)?;
    if opts.contains_key("shutdown") {
        client.shutdown()?;
        println!("service at {addr} shutting down");
        return Ok(());
    }

    let kind_name: String = req(opts, "kind")?;
    let kind = match kind_name.as_str() {
        "sort" => JobKind::Sort,
        "wordcount" => JobKind::WordCount,
        "grep" => {
            let pattern: String = req(opts, "pattern")?;
            JobKind::Grep(pattern.into_bytes())
        }
        other => return Err(format!("--kind: unknown job kind `{other}`")),
    };
    let r: usize = opt(opts, "r", 1)?;

    let input: Vec<u8> = match opts.get("input") {
        Some(path) => std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?,
        None if kind == JobKind::Sort => {
            let records: usize = req(opts, "records")
                .map_err(|_| "--input FILE or --records N is required".to_string())?;
            let seed: u64 = opt(opts, "seed", 2017)?;
            teragen::generate(records, seed).to_vec()
        }
        None => return Err("--input FILE is required for this kind".to_string()),
    };

    let id = client.submit(&kind, r, &input)?;
    println!(
        "job {id} submitted: {kind_name}, r = {r}, {:.1} KB input",
        input.len() as f64 / 1e3
    );
    if opts.contains_key("no-wait") {
        return Ok(());
    }

    let digest = client.digest(id)?;
    let total_bytes: u64 = digest.partitions.iter().map(|(len, _)| len).sum();
    println!(
        "job {id} done: {} partitions, {total_bytes} output bytes, digest {:016x}",
        digest.partitions.len(),
        digest.total
    );
    for (p, (len, fnv)) in digest.partitions.iter().enumerate() {
        println!("  partition {p}: {len:>10} bytes  fnv1a {fnv:016x}");
    }
    if let Some(out) = opts.get("out") {
        let outputs = client.fetch(id)?;
        let mut all = Vec::with_capacity(total_bytes as usize);
        for o in &outputs {
            all.extend_from_slice(o);
        }
        std::fs::write(out, &all).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {} bytes to {out}", all.len());
    }
    if let Some(path) = opts.get("timeline") {
        let json = client.timeline(id)?;
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote stage timeline ({} bytes) to {path} — load in chrome://tracing",
            json.len()
        );
    }
    Ok(())
}

fn cmd_model(opts: &Flags) -> Result<(), String> {
    let k: usize = req(opts, "k")?;
    let r: usize = req(opts, "r")?;
    let records: usize = opt(opts, "records", 120_000)?;
    let target_gb: f64 = opt(opts, "target-gb", 12.0)?;
    let exp = Experiment {
        k,
        records,
        target_bytes: (target_gb * 1e9) as u64,
        seed: 2017,
    };
    let base = exp.run_uncoded();
    let rows = if r > 1 {
        let coded = exp.run_coded(r);
        vec![base.row(None), coded.row(Some(&base.breakdown))]
    } else {
        vec![base.row(None)]
    };
    println!(
        "{}",
        render_table(
            &format!("modeled at {target_gb} GB, K = {k}, 100 Mbps (EC2 calibration)"),
            &rows
        )
    );
    Ok(())
}

fn cmd_theory(opts: &Flags) -> Result<(), String> {
    let k: usize = req(opts, "k")?;
    println!("communication loads at K = {k}:");
    println!("{:>3} {:>12} {:>12}", "r", "uncoded", "CMR");
    for r in 1..=k {
        println!(
            "{r:>3} {:>12.4} {:>12.4}",
            theory::uncoded_comm_load(r, k),
            theory::coded_comm_load(r, k)
        );
    }
    if let (Ok(tm), Ok(ts), Ok(tr)) = (
        req::<f64>(opts, "tmap"),
        req::<f64>(opts, "tshuffle"),
        req::<f64>(opts, "treduce"),
    ) {
        let r_star = theory::optimal_r(tm, ts, tr, k);
        println!(
            "\nr* = {r_star} (√(Ts/Tm) = {:.2}); predicted total at r*: {:.1} s vs baseline {:.1} s",
            theory::optimal_r_real(tm, ts),
            theory::predicted_total_time(r_star, tm, ts, tr),
            tm + ts + tr,
        );
    }
    Ok(())
}
