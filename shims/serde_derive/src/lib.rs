//! No-op `Serialize` / `Deserialize` derives for the offline `serde` shim.
//!
//! The workspace only uses the derives as annotations (no code calls
//! `serialize`/`deserialize` yet), so emitting an empty token stream keeps
//! every `#[derive(Serialize, Deserialize)]` compiling without pulling in
//! syn/quote, which the offline environment cannot fetch.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
