//! Minimal, API-compatible stand-in for `proptest`.
//!
//! The offline build environment cannot fetch the real crate, so this shim
//! implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * `any::<T>()` for the integer primitives and `bool`,
//! * integer range strategies (`0usize..10`, `1u64..=100`, …),
//! * tuple strategies, `&str` literal strategies, and
//!   [`collection::vec`].
//!
//! Generation is random but **deterministic**: every run draws from a
//! fixed-seed xoshiro-style stream (override with `PROPTEST_SEED`), so CI
//! failures reproduce locally. Failures are **shrunk** before reporting:
//! [`Strategy::shrink`] proposes strictly-simpler candidates (integers
//! step toward the range start, vectors drop elements toward their
//! minimum length and simplify elements, tuples shrink component-wise)
//! and the runner greedily adopts any candidate that still fails, within
//! a fixed evaluation budget, then reports the minimal failing inputs.

use std::fmt;

/// Deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test, mixing the test-level seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5EED_CAFE_F00D_D00D,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// The base seed for a named test, honoring `PROPTEST_SEED`.
pub fn base_seed(test_name: &str) -> u64 {
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2017);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    env ^ h
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; try another input.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
    /// Proposes strictly-simpler candidates for a failing `value`, most
    /// aggressive first. The runner adopts any candidate that still fails
    /// and asks again, so returning an empty list (the default) simply
    /// opts a strategy out of shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let diff = hi as i128 - lo as i128;
                if diff >= u64::MAX as i128 {
                    // Full-width inclusive range: any value is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(diff as u64 + 1) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Simpler integers than `v` for a range starting at `lo`: the start
/// itself, the midpoint, and the predecessor — enough for the greedy
/// runner to binary-search down to a minimal failing value.
fn shrink_toward(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    for c in [lo, lo + (v - lo) / 2, v - 1] {
        if c >= lo && c < v && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// `&str` strategies mirror proptest's regex semantics far enough for the
/// literal patterns the workspace uses: the generated string is the literal.
/// Patterns containing regex metacharacters are rejected loudly — silently
/// generating the literal would strip a property of all generality.
impl Strategy for str {
    type Value = String;
    fn generate(&self, _rng: &mut TestRng) -> String {
        assert!(
            !self.contains(['[', ']', '(', ')', '{', '}', '|', '*', '+', '?', '.', '^', '$', '\\']),
            "the proptest shim only supports literal string strategies, \
             but {self:?} looks like a regex; extend shims/proptest to \
             generate from patterns before using one"
        );
        self.to_string()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: shrink each slot with the others held.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "anything" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            // Shorter first (never below the strategy's minimum length):
            // the half-length prefix, then dropping one element at a time.
            if len > self.size.lo {
                let half = self.size.lo.max(len / 2);
                if half < len {
                    out.push(value[..half].to_vec());
                }
                for i in (0..len).rev() {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Then same-length with one element simplified.
            for i in 0..len {
                for cand in self.element.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// `proptest::collection::vec`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Drives one proptest-style test; used by the [`proptest!`] expansion.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = base_seed(test_name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while accepted < config.cases {
        let mut rng = TestRng::new(seed.wrapping_add(case_index.wrapping_mul(0x9E37)));
        case_index += 1;
        match one_case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "proptest '{test_name}': too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed (case {case_index}, base seed {seed}):\n{msg}"
                );
            }
        }
    }
}

/// Renders generated inputs for failure messages.
pub fn describe_inputs(inputs: &dyn fmt::Debug) -> String {
    format!("{inputs:?}")
}

/// Pins a checker closure's argument type to `&S::Value` so the
/// [`proptest!`] expansion can write it without naming the (macro-opaque)
/// tuple type. Identity otherwise.
pub fn check_fn<S, F>(_strat: &S, check: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    check
}

/// Greedily minimizes a failing input: repeatedly adopts the first
/// [`Strategy::shrink`] candidate that still fails, until no candidate
/// fails or the evaluation budget runs out. `prop_assume!` rejections and
/// passes both disqualify a candidate. Returns the minimal value and its
/// failure; used by the [`proptest!`] expansion.
pub fn shrink_to_minimal<S, F>(
    strat: &S,
    mut value: S::Value,
    mut failure: TestCaseError,
    check: &F,
) -> (S::Value, TestCaseError)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut budget = 512usize;
    'outer: while budget > 0 {
        for cand in strat.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(err @ TestCaseError::Fail(_)) = check(&cand) {
                value = cand;
                failure = err;
                continue 'outer;
            }
        }
        break;
    }
    (value, failure)
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |__rng| {
                    let __strat = ($(&$strat,)+);
                    let mut __val = $crate::Strategy::generate(&__strat, __rng);
                    // The immediately-called closure gives prop_assert!/
                    // prop_assume! an early-return target; it runs on
                    // clones so the shrinker can retry candidates.
                    let __check = $crate::check_fn(&__strat, |__v| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(__v);
                        #[allow(clippy::redundant_closure_call)]
                        let __result: ::std::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                Ok(())
                            })();
                        __result
                    });
                    let __outcome = match __check(&__val) {
                        Err(__failure @ $crate::TestCaseError::Fail(_)) => {
                            let (__min, __min_failure) =
                                $crate::shrink_to_minimal(&__strat, __val, __failure, &__check);
                            __val = __min;
                            Err(__min_failure)
                        }
                        __other => __other,
                    };
                    if let Err($crate::TestCaseError::Fail(msg)) = __outcome {
                        return Err($crate::TestCaseError::Fail(format!(
                            "{msg}\nminimal failing inputs: {}",
                            $crate::describe_inputs(&__val)
                        )));
                    }
                    __outcome
                });
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )* ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default())
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                __left
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "prop_assume!({}) at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u64..=6) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y == 5 || y == 6);
        }

        #[test]
        fn vec_respects_size(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..10, 0usize..10)) {
            let (a, b) = pair;
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn str_literal_is_literal(s in "abc def") {
            prop_assert_eq!(s, "abc def");
        }

        #[test]
        fn signed_ranges_cover_negatives(x in -5i32..5, y in -3i8..=3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn full_width_inclusive_range_is_safe(x in 0u64..=u64::MAX) {
            let _ = x; // any u64 is in range; just must not divide by zero
        }
    }

    #[test]
    fn int_shrink_steps_toward_the_range_start() {
        let s = 3u32..100;
        let c = crate::Strategy::shrink(&s, &57);
        assert!(c.contains(&3), "{c:?}");
        assert!(c.iter().all(|&v| (3..57).contains(&v)), "{c:?}");
        assert!(crate::Strategy::shrink(&s, &3).is_empty());
        let si = -5i32..=5;
        assert!(crate::Strategy::shrink(&si, &0).contains(&-5));
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let s = crate::collection::vec(0u8..10, 2..8);
        let c = crate::Strategy::shrink(&s, &vec![5, 5, 5, 5]);
        assert!(c.iter().all(|w| w.len() >= 2), "{c:?}");
        assert!(c.iter().any(|w| w.len() < 4), "{c:?}");
        // Same-length candidates simplify one element toward the start.
        assert!(c.iter().any(|w| w.len() == 4 && w.contains(&0)), "{c:?}");
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let s = (0u8..10, 0u8..10);
        let c = crate::Strategy::shrink(&s, &(4, 6));
        assert!(!c.is_empty());
        // Every candidate changes exactly one slot.
        assert!(c.iter().all(|&(a, b)| (a == 4) != (b == 6)), "{c:?}");
    }

    fn panic_message(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("property should have failed");
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".to_string())
    }

    #[test]
    fn failing_int_property_reports_the_minimal_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn must_be_small(x in 0u32..1000) {
                prop_assert!(x < 10);
            }
        }
        let msg = panic_message(std::panic::catch_unwind(must_be_small));
        assert!(msg.contains("minimal failing inputs"), "{msg}");
        // Greedy bisection lands exactly on the boundary value.
        assert!(msg.contains("(10,)"), "{msg}");
    }

    #[test]
    fn failing_vec_property_reports_the_minimal_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn short_vecs(v in collection::vec(0u32..100, 0..50)) {
                prop_assert!(v.len() < 5);
            }
        }
        let msg = panic_message(std::panic::catch_unwind(short_vecs));
        // Minimal = shortest failing length with every element simplified.
        assert!(msg.contains("([0, 0, 0, 0, 0],)"), "{msg}");
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = crate::TestRng::new(7);
        let mut r2 = crate::TestRng::new(7);
        let s = crate::collection::vec(crate::any::<u64>(), 4..9);
        assert_eq!(
            crate::Strategy::generate(&s, &mut r1),
            crate::Strategy::generate(&s, &mut r2)
        );
    }
}
