//! Minimal, API-compatible stand-in for `parking_lot`, layered over
//! `std::sync`. Implements the parking_lot calling conventions the
//! workspace uses: `lock()` returning the guard directly (no poison
//! `Result`), and `Condvar::wait(&mut guard)` taking the guard by
//! mutable reference.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Mutex with parking_lot's panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard by value.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// RwLock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
