//! Minimal, API-compatible stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `bytes` to this shim. It implements the subset of the real
//! crate's API that coded-terasort uses: cheaply cloneable, sliceable
//! `Bytes` backed by `Arc<[u8]>`, a growable `BytesMut`, and the `Buf` /
//! `BufMut` cursor traits for little-endian wire formats.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (the shim copies it once).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range starts after end");
        assert!(end <= len, "slice range out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` on; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Self {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

macro_rules! eq_impls {
    ($($other:ty => |$o:ident| $conv:expr;)*) => {$(
        impl PartialEq<$other> for Bytes {
            fn eq(&self, $o: &$other) -> bool {
                let other: &[u8] = $conv;
                self.as_slice() == other
            }
        }
        impl PartialEq<Bytes> for $other {
            fn eq(&self, other: &Bytes) -> bool {
                other == self
            }
        }
    )*};
}

eq_impls! {
    [u8] => |o| o;
    &[u8] => |o| o;
    Vec<u8> => |o| o.as_slice();
    str => |o| o.as_bytes();
    &str => |o| o.as_bytes();
    String => |o| o.as_bytes();
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

/// A growable byte buffer convertible into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Resizes, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.inner), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

/// Read cursor over a contiguous byte source (little-endian helpers).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor.
    fn advance(&mut self, cnt: usize);

    /// True when bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// Write cursor appending to a growable byte sink (little-endian helpers).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..), [3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytesmut_wire_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u64_le(0xDEAD_BEEF);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(cur.remaining(), 2);
    }

    #[test]
    fn eq_across_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, "abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
    }
}
