//! Minimal, API-compatible stand-in for `rand`.
//!
//! Provides the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `next_u32`,
//! `next_u64`, `fill_bytes`, and `gen_range`. The generator is
//! xoshiro256** seeded via splitmix64 — deterministic across platforms,
//! which the reproduction relies on for stable TeraGen inputs.

/// Core + convenience RNG methods (collapsed `RngCore`/`Rng` surface).
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Uniform draw from `[low, high)` (u64/usize-compatible ranges).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Modulo bias is irrelevant for the shim's test-input use.
        range.start + self.next_u64() % span
    }
}

/// Mirrors `rand::RngCore` for code importing it by that name.
pub use Rng as RngCore;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
