//! Minimal, API-compatible stand-in for `criterion`.
//!
//! The offline build cannot fetch the real crate, so this shim provides
//! the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop (median of timed batches) instead of
//! criterion's statistical machinery.
//!
//! When `CTS_BENCH_JSON_DIR` is set, every measurement is also collected
//! and — via [`write_results_json`], which `criterion_main!` calls after
//! the groups finish — dumped as `BENCH_<target>.json` in that directory
//! (the machine-readable sibling of the console report, serialized with
//! the `serde` shim's minimal JSON support).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::json::Value;

pub use std::hint::black_box;

/// One collected measurement, for the optional JSON report.
struct Measurement {
    id: String,
    ns_per_iter: f64,
    throughput: Option<Throughput>,
}

/// Measurements collected by every group in this process.
static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Writes all collected measurements as `BENCH_<target>.json` inside
/// `$CTS_BENCH_JSON_DIR` (no-op when the variable is unset). Returns the
/// path written. Called automatically by `criterion_main!`.
pub fn write_results_json(target: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("CTS_BENCH_JSON_DIR")?;
    let measurements = MEASUREMENTS.lock().expect("bench results lock");
    let entries: Vec<Value> = measurements
        .iter()
        .map(|m| {
            let (bytes, elements) = match m.throughput {
                Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => (Some(b), None),
                Some(Throughput::Elements(n)) => (None, Some(n)),
                None => (None, None),
            };
            Value::object([
                ("id", Value::Str(m.id.clone())),
                ("ns_per_iter", Value::Float(m.ns_per_iter)),
                (
                    "bytes_per_sec",
                    match bytes {
                        Some(b) => Value::Float(b as f64 / (m.ns_per_iter / 1e9)),
                        None => Value::Null,
                    },
                ),
                (
                    "throughput_bytes",
                    bytes.map(Value::UInt).unwrap_or(Value::Null),
                ),
                (
                    "throughput_elements",
                    elements.map(Value::UInt).unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();
    let doc = Value::object([
        ("target", Value::Str(target.to_string())),
        ("results", Value::Array(entries)),
    ]);
    let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
        return None;
    }
    println!("results json: {}", path.display());
    Some(path)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, reported in decimal multiples.
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    elapsed_per_iter_ns: f64,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing the per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one measurement batch is ~10ms.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000);

        let mut samples = Vec::new();
        let deadline = Instant::now() + self.measurement_time;
        // Always take at least one sample so a zero time budget cannot
        // leave the median lookup with an empty vec.
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline || samples.len() >= 64 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.elapsed_per_iter_ns = samples[samples.len() / 2];
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn human_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e9 {
        format!("{:.2} GiB/s", bytes_per_sec / (1u64 << 30) as f64)
    } else if bytes_per_sec >= 1e6 {
        format!("{:.2} MiB/s", bytes_per_sec / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB/s", bytes_per_sec / 1024.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for compatibility; the shim sizes samples by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed_per_iter_ns: 0.0,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id.into_id(), bencher.elapsed_per_iter_ns);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            elapsed_per_iter_ns: 0.0,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher, input);
        self.report(&id.into_id(), bencher.elapsed_per_iter_ns);
        self
    }

    /// Ends the group (no-op beyond reporting symmetry with criterion).
    pub fn finish(self) {}

    fn report(&self, id: &str, per_iter_ns: f64) {
        MEASUREMENTS
            .lock()
            .expect("bench results lock")
            .push(Measurement {
                id: format!("{}/{}", self.name, id),
                ns_per_iter: per_iter_ns,
                throughput: self.throughput,
            });
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => {
                format!("  ({})", human_rate(b as f64 / (per_iter_ns / 1e9)))
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / (per_iter_ns / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{:<40} time: [{}]{}",
            format!("{}/{}", self.name, id),
            human_ns(per_iter_ns),
            rate
        );
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(
                std::env::var("CTS_BENCH_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(300),
            ),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for compatibility; the shim sizes samples by time budget.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for compatibility with `criterion_main!`-style drivers.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_time: self.measurement_time,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Final reporting hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`. After the
/// groups run, collected measurements are written as
/// `BENCH_<target>.json` when `CTS_BENCH_JSON_DIR` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let _ = $crate::write_results_json(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_without_panicking() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn zero_measurement_budget_still_samples() {
        let mut c = Criterion::default().measurement_time(Duration::ZERO);
        c.benchmark_group("shim")
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn results_json_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cts-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("CTS_BENCH_JSON_DIR", &dir);
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("json");
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function("touch", |b| b.iter(|| black_box(3 * 7)));
        group.finish();
        let path = write_results_json("shim_selftest").expect("json written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""target":"shim_selftest""#), "{text}");
        assert!(text.contains(r#""id":"json/touch""#), "{text}");
        assert!(text.contains(r#""throughput_bytes":1048576"#), "{text}");
        std::env::remove_var("CTS_BENCH_JSON_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
