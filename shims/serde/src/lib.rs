//! Minimal stand-in for `serde` used by the offline build.
//!
//! Exposes the `Serialize` / `Deserialize` names as traits plus no-op
//! derive macros, and — unlike the original annotation-only shim — a real
//! (if minimal) **JSON serializer**: [`Serialize::to_json`] produces a
//! [`json::Value`] tree that renders to standards-compliant JSON text.
//! That is enough for the bench harness to dump calibration and results
//! files (`BENCH_*.json`) next to bench output.
//!
//! The derive macros remain no-ops (the shim has no `syn`); types that
//! want JSON output implement [`Serialize`] by hand, which for the handful
//! of result structs is a few lines each. Swap this shim for the real
//! crate by dropping the `[patch.crates-io]` entry once the build
//! environment has registry access.

pub use serde_derive::{Deserialize, Serialize};

/// A minimal JSON document model and renderer.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// An unsigned integer.
        UInt(u64),
        /// A signed integer.
        Int(i64),
        /// A finite float (non-finite renders as `null`).
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Convenience constructor for an object.
        pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// Renders the value as compact JSON text.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::UInt(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Float(f) if f.is_finite() => {
                    let _ = write!(out, "{f}");
                }
                Value::Float(_) => out.push_str("null"),
                Value::Str(s) => write_escaped(s, out),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Value::Object(fields) => {
                    out.push('{');
                    for (i, (key, value)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(key, out);
                        out.push(':');
                        value.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Mirrors `serde::Serialize`, backed by the minimal JSON data model: a
/// serializable type can describe itself as a [`json::Value`].
pub trait Serialize {
    /// The value as a JSON document tree.
    fn to_json(&self) -> json::Value;
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value { json::Value::UInt(*self as u64) }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value { json::Value::Int(*self as i64) }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_json(&self) -> json::Value {
        json::Value::Float(self.as_secs_f64())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

/// Mirrors `serde::Deserialize` (still a marker — the shim serializes
/// only).
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize`.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for `use serde::de::Deserialize`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::Serialize;

    #[test]
    fn scalars_render() {
        assert_eq!(42u32.to_json().render(), "42");
        assert_eq!((-7i64).to_json().render(), "-7");
        assert_eq!(1.5f64.to_json().render(), "1.5");
        assert_eq!(true.to_json().render(), "true");
        assert_eq!(f64::NAN.to_json().render(), "null");
        assert_eq!(Option::<u32>::None.to_json().render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!("a\"b\\c\nd".to_json().render(), r#""a\"b\\c\nd""#);
        assert_eq!("\u{1}".to_json().render(), r#""\u0001""#);
    }

    #[test]
    fn arrays_and_objects_render() {
        let v = Value::object([
            ("name", "bench".to_json()),
            ("values", vec![1u32, 2, 3].to_json()),
            ("nested", Value::object([("ok", true.to_json())])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"bench","values":[1,2,3],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn duration_renders_as_seconds() {
        let d = std::time::Duration::from_millis(1500);
        assert_eq!(d.to_json().render(), "1.5");
    }
}
