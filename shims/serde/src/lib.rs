//! Minimal stand-in for `serde` used by the offline build.
//!
//! Exposes the `Serialize` / `Deserialize` names both as (empty) traits and
//! as no-op derive macros, which is all the workspace currently relies on.
//! Swap this shim for the real crate by dropping the `[patch.crates-io]`
//! entry once the build environment has registry access.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize`.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for `use serde::de::Deserialize`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
