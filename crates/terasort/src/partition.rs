//! Key-domain partitioning (paper §III-A2).
//!
//! The key domain splits into `K` *ordered* partitions `P_1 < … < P_K`;
//! node `k` reduces partition `k`. [`RangePartitioner`] divides the 80-bit
//! key space into `K` exactly equal ranges — correct and balanced for
//! TeraGen's uniform keys. [`SampledPartitioner`] (the extension Hadoop's
//! TotalOrderPartitioner implements) picks boundaries from sampled
//! quantiles, balancing skewed inputs too.

use crate::record::{key_to_u128, KEY_LEN};

/// Maps keys to ordered partitions.
pub trait KeyPartitioner: Send + Sync {
    /// Number of partitions `K`.
    fn num_partitions(&self) -> usize;

    /// The partition of `key` (a [`KEY_LEN`]-byte slice).
    fn partition(&self, key: &[u8]) -> usize;
}

/// Equal-width ranges over the 80-bit key space:
/// `partition = ⌊key · K / 2^80⌋`.
#[derive(Clone, Copy, Debug)]
pub struct RangePartitioner {
    k: usize,
}

impl RangePartitioner {
    /// A partitioner for `k` partitions.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one partition");
        RangePartitioner { k }
    }
}

impl KeyPartitioner for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.k
    }

    #[inline]
    fn partition(&self, key: &[u8]) -> usize {
        // Exact: key < 2^80 and K ≤ 2^16, so key·K < 2^96 fits u128.
        ((key_to_u128(key) * self.k as u128) >> 80) as usize
    }
}

/// Quantile boundaries learned from a key sample — balances skewed key
/// distributions (Hadoop's TotalOrderPartitioner approach).
#[derive(Clone, Debug)]
pub struct SampledPartitioner {
    /// `k-1` ascending boundary keys; partition `p` holds keys in
    /// `[boundaries[p-1], boundaries[p])`.
    boundaries: Vec<[u8; KEY_LEN]>,
}

impl SampledPartitioner {
    /// Builds boundaries at the `i/k` quantiles of `samples`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `samples` is empty.
    pub fn from_samples(mut samples: Vec<[u8; KEY_LEN]>, k: usize) -> Self {
        assert!(k > 0, "need at least one partition");
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_unstable();
        let n = samples.len();
        let boundaries = (1..k).map(|i| samples[(n * i / k).min(n - 1)]).collect();
        SampledPartitioner { boundaries }
    }

    /// The boundary keys (ascending, length `k-1`).
    pub fn boundaries(&self) -> &[[u8; KEY_LEN]] {
        &self.boundaries
    }
}

impl KeyPartitioner for SampledPartitioner {
    fn num_partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    #[inline]
    fn partition(&self, key: &[u8]) -> usize {
        debug_assert_eq!(key.len(), KEY_LEN);
        // First partition whose boundary exceeds the key.
        self.boundaries.partition_point(|b| &b[..] <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{key_of, records};
    use crate::teragen::{generate, generate_skewed};

    fn key(bytes: &[u8]) -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        k[..bytes.len()].copy_from_slice(bytes);
        k
    }

    #[test]
    fn range_partitions_cover_in_order() {
        let p = RangePartitioner::new(4);
        assert_eq!(p.partition(&[0u8; 10]), 0);
        assert_eq!(p.partition(&[0xFFu8; 10]), 3);
        // Quarter boundaries: 0x40… → exactly 1, just below → 0.
        assert_eq!(p.partition(&key(&[0x40])), 1);
        let mut below = [0xFFu8; 10];
        below[0] = 0x3F;
        assert_eq!(p.partition(&below), 0);
    }

    #[test]
    fn range_is_monotone() {
        let p = RangePartitioner::new(7);
        let data = generate(2000, 3);
        let mut keyed: Vec<&[u8]> = records(&data).map(key_of).collect();
        keyed.sort_unstable();
        let parts: Vec<usize> = keyed.iter().map(|k| p.partition(k)).collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
        assert!(parts.iter().all(|&x| x < 7));
    }

    #[test]
    fn range_balances_uniform_keys() {
        let k = 8;
        let p = RangePartitioner::new(k);
        let data = generate(8000, 17);
        let mut counts = vec![0usize; k];
        for rec in records(&data) {
            counts[p.partition(key_of(rec))] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "imbalance {counts:?}");
    }

    #[test]
    fn range_fails_on_skew_where_sampled_succeeds() {
        let k = 8;
        let data = generate_skewed(8000, 23, 0.6, 16);
        let range = RangePartitioner::new(k);
        let mut range_counts = vec![0usize; k];
        for rec in records(&data) {
            range_counts[range.partition(key_of(rec))] += 1;
        }
        // The hot prefix lands >half the records in one range partition.
        assert!(*range_counts.iter().max().unwrap() > 8000 / 2);

        let samples: Vec<[u8; KEY_LEN]> = records(&data)
            .step_by(10)
            .map(|r| key_of(r).try_into().unwrap())
            .collect();
        let sampled = SampledPartitioner::from_samples(samples, k);
        let mut s_counts = vec![0usize; k];
        for rec in records(&data) {
            s_counts[sampled.partition(key_of(rec))] += 1;
        }
        let max = *s_counts.iter().max().unwrap();
        assert!(
            max < 8000 / 4,
            "sampled partitioner still skewed: {s_counts:?}"
        );
    }

    #[test]
    fn sampled_is_monotone_and_total() {
        let samples: Vec<[u8; KEY_LEN]> = (0..100u8).map(|i| key(&[i.wrapping_mul(37)])).collect();
        let p = SampledPartitioner::from_samples(samples, 5);
        assert_eq!(p.num_partitions(), 5);
        assert_eq!(p.boundaries().len(), 4);
        let data = generate(1000, 29);
        let mut keyed: Vec<&[u8]> = records(&data).map(key_of).collect();
        keyed.sort_unstable();
        let parts: Vec<usize> = keyed.iter().map(|k| p.partition(k)).collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
        assert!(parts.iter().all(|&x| x < 5));
    }

    #[test]
    fn sampled_boundaries_are_sorted() {
        let samples: Vec<[u8; KEY_LEN]> = (0..50u8).rev().map(|i| key(&[i])).collect();
        let p = SampledPartitioner::from_samples(samples, 4);
        let b = p.boundaries();
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_partition_takes_everything() {
        let range = RangePartitioner::new(1);
        assert_eq!(range.partition(&[0xABu8; 10]), 0);
        let sampled = SampledPartitioner::from_samples(vec![key(&[1])], 1);
        assert_eq!(sampled.partition(&[0xCDu8; 10]), 0);
    }
}
