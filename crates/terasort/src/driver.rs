//! High-level drivers: generate → sort → validate in one call.

use bytes::Bytes;
use cts_mapreduce::coded::run_coded;
use cts_mapreduce::stage::EngineConfig;
use cts_mapreduce::uncoded::{run_uncoded, JobOutcome};
use cts_mapreduce::Result;

use crate::partition::SampledPartitioner;
use crate::record::{key_of, records, KEY_LEN};
use crate::sort::SortKernel;
use crate::validate::{validate, ValidationError};
use crate::workload::TeraSortWorkload;

/// How the key domain is partitioned across reducers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Equal-width key ranges (the paper's setting; exact for TeraGen's
    /// uniform keys).
    #[default]
    Range,
    /// Quantile boundaries from a coordinator-side key sample taken every
    /// `sample_every` records — Hadoop's TotalOrderPartitioner approach,
    /// required for skewed inputs.
    Sampled {
        /// Sampling stride (1 = every record).
        sample_every: usize,
    },
}

/// Configuration of one TeraSort / CodedTeraSort run.
#[derive(Clone, Debug)]
pub struct SortJob {
    /// Worker count `K`.
    pub k: usize,
    /// Redundancy `r` (used by the coded driver; 1 means conventional).
    pub r: usize,
    /// Reduce-stage sort kernel.
    pub kernel: SortKernel,
    /// Key-domain partitioning strategy.
    pub partitioner: PartitionerKind,
    /// Engine/cluster configuration.
    pub engine: EngineConfig,
}

impl SortJob {
    /// A local in-memory job.
    pub fn local(k: usize, r: usize) -> Self {
        SortJob {
            k,
            r,
            kernel: SortKernel::default(),
            partitioner: PartitionerKind::default(),
            engine: EngineConfig::local(k, r),
        }
    }

    /// Overrides the sort kernel.
    pub fn with_kernel(mut self, kernel: SortKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the intra-node worker-thread count for the CPU-bound stages
    /// (Map hashing, encode, decode, Reduce sort); `0` = machine
    /// parallelism. Outputs are byte-identical for any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// Selects the coding field for the coded driver's packets: `gf2`
    /// (the paper's XOR code, the default) or `gf256` (q-ary combinations
    /// over runtime-dispatched SIMD kernels). Sorted output is
    /// byte-identical either way.
    pub fn with_field(mut self, field: cts_core::field::FieldKind) -> Self {
        self.engine = self.engine.with_field(field);
        self
    }

    /// Selects the coded driver's decode discipline: `all` (the paper's
    /// barrier-on-all default) or `quorum` (release each group once any
    /// `r-1` of its `r` coded packets arrive, via the GF(256) MDS code; the
    /// shuffle then proceeds without the slowest senders). Sorted output
    /// is byte-identical either way.
    pub fn with_decode(mut self, decode: cts_core::decode::DecodeMode) -> Self {
        self.engine = self.engine.with_decode(decode);
        self
    }

    /// Uses quantile sampling instead of uniform ranges.
    pub fn with_sampling(mut self, sample_every: usize) -> Self {
        assert!(sample_every >= 1, "sampling stride must be >= 1");
        self.partitioner = PartitionerKind::Sampled { sample_every };
        self
    }

    /// Selects the shuffle fabric for the coded driver:
    /// `serial-unicast` (the pre-async baseline), `fanout` (overlapped
    /// copies), `multicast` (emulated one-to-many, the default), or
    /// `udp-multicast` (physical IP multicast with NACK loss recovery;
    /// requires kernel multicast support).
    pub fn with_fabric(mut self, fabric: cts_net::fabric::ShuffleFabric) -> Self {
        self.engine = self.engine.with_fabric(fabric);
        self
    }

    /// Installs an emulated NIC (rate cap + per-transfer latency +
    /// multicast `α`) on every node, so fabric choices show up in measured
    /// shuffle wall-clock.
    pub fn with_nic(mut self, nic: cts_net::rate::NicProfile) -> Self {
        self.engine = self.engine.with_nic(nic);
        self
    }

    /// Selects rank-death handling for the coded driver: `off` (a death
    /// fails the job fast with a typed error, the default) or
    /// `speculative` (heartbeat detection plus re-execution of the dead
    /// rank's work on survivors; requires `gf256`, `quorum`, and
    /// `r >= 2`). The recovered sort output is byte-identical to a
    /// healthy run's.
    pub fn with_recovery(mut self, recovery: cts_mapreduce::stage::RecoveryMode) -> Self {
        self.engine = self.engine.with_recovery(recovery);
        self
    }

    /// Sets the health layer's heartbeat interval (recovery mode only);
    /// death is declared after ~36 silent intervals.
    pub fn with_heartbeat(mut self, heartbeat: std::time::Duration) -> Self {
        self.engine = self.engine.with_heartbeat(heartbeat);
        self
    }

    /// Sets the quorum shuffle's receive-idle deadline (zero-progress
    /// tolerance before the run is declared stalled).
    pub fn with_idle_timeout(mut self, idle_timeout: std::time::Duration) -> Self {
        self.engine = self.engine.with_idle_timeout(idle_timeout);
        self
    }

    fn workload(&self, input: &Bytes) -> TeraSortWorkload {
        let w = match self.partitioner {
            PartitionerKind::Range => TeraSortWorkload::range(self.k),
            PartitionerKind::Sampled { sample_every } => {
                // The paper's coordinator creates the key partitions
                // (§V-A); here it samples the input before the timed run.
                let samples: Vec<[u8; KEY_LEN]> = records(input)
                    .step_by(sample_every)
                    .map(|rec| key_of(rec).try_into().expect("key width"))
                    .collect();
                let samples = if samples.is_empty() {
                    vec![[0u8; KEY_LEN]]
                } else {
                    samples
                };
                TeraSortWorkload::sampled(SampledPartitioner::from_samples(samples, self.k))
            }
        };
        w.with_kernel(self.kernel)
    }
}

/// A finished sort with its input retained for validation.
#[derive(Debug)]
pub struct SortRun {
    /// Engine results: outputs, stats, trace, wall times.
    pub outcome: JobOutcome,
    /// The input that was sorted.
    pub input: Bytes,
}

impl SortRun {
    /// Runs TeraValidate over the outputs.
    pub fn validate(&self) -> std::result::Result<(), ValidationError> {
        validate(&self.input, &self.outcome.outputs)
    }
}

/// Runs conventional TeraSort (paper §III) on `input`.
pub fn run_terasort(input: Bytes, job: &SortJob) -> Result<SortRun> {
    let workload = job.workload(&input);
    let outcome = run_uncoded(&workload, input.clone(), &job.engine)?;
    Ok(SortRun { outcome, input })
}

/// Runs CodedTeraSort (paper §IV) on `input` at redundancy `job.r`.
pub fn run_coded_terasort(input: Bytes, job: &SortJob) -> Result<SortRun> {
    let workload = job.workload(&input);
    let outcome = run_coded(&workload, input.clone(), &job.engine)?;
    Ok(SortRun { outcome, input })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teragen::generate;

    #[test]
    fn terasort_validates() {
        let input = generate(600, 71);
        let run = run_terasort(input, &SortJob::local(4, 1)).unwrap();
        run.validate().unwrap();
    }

    #[test]
    fn coded_terasort_validates_and_matches() {
        let input = generate(600, 72);
        let coded = run_coded_terasort(input.clone(), &SortJob::local(4, 2)).unwrap();
        coded.validate().unwrap();
        let plain = run_terasort(input, &SortJob::local(4, 1)).unwrap();
        assert_eq!(coded.outcome.outputs, plain.outcome.outputs);
    }

    #[test]
    fn coded_shuffles_fewer_bytes() {
        let input = generate(3000, 73);
        let plain = run_terasort(input.clone(), &SortJob::local(6, 1)).unwrap();
        let coded = run_coded_terasort(input, &SortJob::local(6, 3)).unwrap();
        let gain =
            plain.outcome.stats.shuffle_bytes() as f64 / coded.outcome.stats.shuffle_bytes() as f64;
        // Theory: uncoded (5/6) vs coded (1/6) → 5×; headers shave a bit.
        assert!(gain > 3.0, "gain {gain}");
    }

    #[test]
    fn radix_kernel_validates_too() {
        let input = generate(500, 74);
        let run = run_coded_terasort(
            input,
            &SortJob::local(4, 2).with_kernel(SortKernel::LsdRadix),
        )
        .unwrap();
        run.validate().unwrap();
    }

    #[test]
    fn sampled_partitioner_balances_skewed_sort() {
        use crate::teragen::generate_skewed;
        let input = generate_skewed(4_000, 75, 0.6, 16);
        // Range partitioning overloads one reducer …
        let ranged = run_coded_terasort(input.clone(), &SortJob::local(4, 2)).unwrap();
        ranged.validate().unwrap();
        let ranged_max = ranged
            .outcome
            .outputs
            .iter()
            .map(|o| o.len())
            .max()
            .unwrap();
        // … sampling balances it, with identical global output.
        let sampled =
            run_coded_terasort(input.clone(), &SortJob::local(4, 2).with_sampling(16)).unwrap();
        sampled.validate().unwrap();
        let sampled_max = sampled
            .outcome
            .outputs
            .iter()
            .map(|o| o.len())
            .max()
            .unwrap();
        assert!(ranged_max > input.len() / 2);
        assert!(sampled_max < input.len() / 3, "max {sampled_max}");
        let a: Vec<u8> = ranged.outcome.outputs.into_iter().flatten().collect();
        let b: Vec<u8> = sampled.outcome.outputs.into_iter().flatten().collect();
        assert_eq!(a, b, "partitioning must not change the sorted list");
    }

    #[test]
    fn sampled_uncoded_and_coded_agree() {
        use crate::teragen::generate_skewed;
        let input = generate_skewed(2_000, 76, 0.5, 12);
        let job = SortJob::local(5, 2).with_sampling(8);
        let coded = run_coded_terasort(input.clone(), &job).unwrap();
        let plain = run_terasort(input, &SortJob::local(5, 1).with_sampling(8)).unwrap();
        assert_eq!(coded.outcome.outputs, plain.outcome.outputs);
    }

    #[test]
    fn sampling_on_empty_input_is_safe() {
        let run = run_terasort(Bytes::new(), &SortJob::local(3, 1).with_sampling(4)).unwrap();
        run.validate().unwrap();
    }
}
