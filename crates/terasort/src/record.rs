//! The TeraSort record format.
//!
//! Following the paper's §V-A data format (TeraGen output): each record is
//! exactly 100 bytes — a 10-byte key and a 90-byte value. Keys are
//! unsigned integers compared by standard integer ordering, which for
//! fixed-width big-endian byte strings is plain lexicographic comparison.

/// Key width in bytes.
pub const KEY_LEN: usize = 10;
/// Value width in bytes.
pub const VALUE_LEN: usize = 90;
/// Total record width.
pub const RECORD_LEN: usize = KEY_LEN + VALUE_LEN;

/// Borrowing view over the records in a packed buffer.
///
/// # Panics
/// Panics if `buf.len()` is not a multiple of [`RECORD_LEN`].
pub fn records(buf: &[u8]) -> impl ExactSizeIterator<Item = &[u8]> {
    assert!(
        buf.len().is_multiple_of(RECORD_LEN),
        "buffer of {} bytes is not whole records",
        buf.len()
    );
    buf.chunks_exact(RECORD_LEN)
}

/// The key bytes of a record slice.
///
/// # Panics
/// Panics if `record.len() != RECORD_LEN`.
#[inline]
pub fn key_of(record: &[u8]) -> &[u8] {
    assert_eq!(record.len(), RECORD_LEN, "not a record");
    &record[..KEY_LEN]
}

/// The value bytes of a record slice.
#[inline]
pub fn value_of(record: &[u8]) -> &[u8] {
    assert_eq!(record.len(), RECORD_LEN, "not a record");
    &record[KEY_LEN..]
}

/// Interprets a 10-byte key as an unsigned integer (big-endian), the
/// paper's "standard integer ordering".
#[inline]
pub fn key_to_u128(key: &[u8]) -> u128 {
    debug_assert_eq!(key.len(), KEY_LEN);
    let mut padded = [0u8; 16];
    padded[6..16].copy_from_slice(key);
    u128::from_be_bytes(padded)
}

/// Number of whole records in a packed buffer.
pub fn record_count(buf: &[u8]) -> usize {
    debug_assert!(buf.len().is_multiple_of(RECORD_LEN));
    buf.len() / RECORD_LEN
}

/// An order-independent checksum over the records of a buffer (wrapping
/// sum of per-record hashes). Input and sorted output must agree — the
/// TeraValidate invariant.
///
/// The per-record hash consumes eight bytes per step (a multiply–rotate
/// mix over little-endian words, ~8× fewer rounds than the previous
/// byte-at-a-time FNV-1a over 100-byte records); [`checksum_bytewise`] is
/// the byte-at-a-time reference computing the *same* value.
pub fn checksum(buf: &[u8]) -> u64 {
    let mut total: u64 = 0;
    for rec in records(buf) {
        total = total.wrapping_add(hash_words(rec));
    }
    total
}

/// Byte-at-a-time reference for [`checksum`]: identical values, built one
/// byte per step (the form a streaming validator would use).
pub fn checksum_bytewise(buf: &[u8]) -> u64 {
    let mut total: u64 = 0;
    for rec in records(buf) {
        total = total.wrapping_add(hash_bytewise(rec));
    }
    total
}

/// Hash seed (the FNV-1a offset basis, kept for familiarity).
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// Odd multiplier (the golden-ratio constant) driving the word mix.
const HASH_MULT: u64 = 0x9e37_79b9_7f4a_7c15;

/// One mixing round over an eight-byte little-endian word.
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(HASH_MULT).rotate_left(29)
}

/// Finalizer: avalanche the state and bind in the input length so the
/// zero-padded tail word cannot alias a shorter input.
#[inline]
fn finish(h: u64, len: usize) -> u64 {
    let mut h = h ^ (len as u64).wrapping_mul(HASH_MULT);
    h ^= h >> 32;
    h = h.wrapping_mul(HASH_MULT);
    h ^ (h >> 29)
}

/// Word-at-a-time hash of an arbitrary slice: full 8-byte little-endian
/// words, then the remaining tail zero-padded into one final word.
#[inline]
fn hash_words(bytes: &[u8]) -> u64 {
    let mut h = HASH_SEED;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = mix(h, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        h = mix(h, u64::from_le_bytes(word));
    }
    finish(h, bytes.len())
}

/// Byte-at-a-time equivalent of [`hash_words`]: accumulates each
/// little-endian word one byte per step.
#[inline]
fn hash_bytewise(bytes: &[u8]) -> u64 {
    let mut h = HASH_SEED;
    let mut word = 0u64;
    let mut shift = 0u32;
    for &b in bytes {
        word |= (b as u64) << shift;
        shift += 8;
        if shift == 64 {
            h = mix(h, word);
            word = 0;
            shift = 0;
        }
    }
    if shift > 0 {
        h = mix(h, word);
    }
    finish(h, bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key_byte: u8) -> Vec<u8> {
        let mut r = vec![0u8; RECORD_LEN];
        r[0] = key_byte;
        r[KEY_LEN] = 0xEE;
        r
    }

    #[test]
    fn accessors_split_key_and_value() {
        let r = rec(42);
        assert_eq!(key_of(&r)[0], 42);
        assert_eq!(key_of(&r).len(), KEY_LEN);
        assert_eq!(value_of(&r)[0], 0xEE);
        assert_eq!(value_of(&r).len(), VALUE_LEN);
    }

    #[test]
    fn records_iterates_chunks() {
        let mut buf = rec(1);
        buf.extend(rec(2));
        buf.extend(rec(3));
        let keys: Vec<u8> = records(&buf).map(|r| r[0]).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(record_count(&buf), 3);
    }

    #[test]
    #[should_panic(expected = "whole records")]
    fn records_rejects_partial() {
        let buf = vec![0u8; 150];
        let _ = records(&buf);
    }

    #[test]
    fn key_integer_order_is_lexicographic() {
        let lo = [0u8, 0, 0, 0, 0, 0, 0, 0, 1, 0];
        let hi = [0u8, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        assert!(key_to_u128(&lo) < key_to_u128(&hi));
        assert!(lo < hi); // byte order agrees
        let max = [0xFFu8; KEY_LEN];
        assert_eq!(key_to_u128(&max), (1u128 << 80) - 1);
    }

    #[test]
    fn checksum_is_order_independent() {
        let mut a = rec(1);
        a.extend(rec(2));
        let mut b = rec(2);
        b.extend(rec(1));
        assert_eq!(checksum(&a), checksum(&b));
        // …but content-dependent.
        let mut c = rec(1);
        c.extend(rec(3));
        assert_ne!(checksum(&a), checksum(&c));
    }

    #[test]
    fn checksum_of_empty_is_zero() {
        assert_eq!(checksum(&[]), 0);
    }

    #[test]
    fn word_hash_matches_bytewise_reference_on_unaligned_lengths() {
        // The word kernel and the byte-at-a-time reference must agree for
        // every tail length (0..8 leftover bytes) and across word counts.
        for len in 0..=130usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(
                hash_words(&data),
                hash_bytewise(&data),
                "length {len} disagrees"
            );
        }
    }

    #[test]
    fn checksum_matches_bytewise_reference_on_records() {
        let data: Vec<u8> = (0..7 * RECORD_LEN).map(|i| (i * 13 + 5) as u8).collect();
        assert_eq!(checksum(&data), checksum_bytewise(&data));
    }

    #[test]
    fn hash_distinguishes_zero_padding_from_short_input() {
        // "ab" and "ab\0" pad to the same tail word; the length binding in
        // the finalizer must keep them distinct.
        assert_ne!(hash_words(b"ab"), hash_words(b"ab\0"));
        assert_ne!(hash_words(&[]), hash_words(&[0]));
        assert_ne!(hash_words(&[0u8; 8]), hash_words(&[0u8; 16]));
    }
}
