//! The TeraSort record format.
//!
//! Following the paper's §V-A data format (TeraGen output): each record is
//! exactly 100 bytes — a 10-byte key and a 90-byte value. Keys are
//! unsigned integers compared by standard integer ordering, which for
//! fixed-width big-endian byte strings is plain lexicographic comparison.

/// Key width in bytes.
pub const KEY_LEN: usize = 10;
/// Value width in bytes.
pub const VALUE_LEN: usize = 90;
/// Total record width.
pub const RECORD_LEN: usize = KEY_LEN + VALUE_LEN;

/// Borrowing view over the records in a packed buffer.
///
/// # Panics
/// Panics if `buf.len()` is not a multiple of [`RECORD_LEN`].
pub fn records(buf: &[u8]) -> impl ExactSizeIterator<Item = &[u8]> {
    assert!(
        buf.len().is_multiple_of(RECORD_LEN),
        "buffer of {} bytes is not whole records",
        buf.len()
    );
    buf.chunks_exact(RECORD_LEN)
}

/// The key bytes of a record slice.
///
/// # Panics
/// Panics if `record.len() != RECORD_LEN`.
#[inline]
pub fn key_of(record: &[u8]) -> &[u8] {
    assert_eq!(record.len(), RECORD_LEN, "not a record");
    &record[..KEY_LEN]
}

/// The value bytes of a record slice.
#[inline]
pub fn value_of(record: &[u8]) -> &[u8] {
    assert_eq!(record.len(), RECORD_LEN, "not a record");
    &record[KEY_LEN..]
}

/// Interprets a 10-byte key as an unsigned integer (big-endian), the
/// paper's "standard integer ordering".
#[inline]
pub fn key_to_u128(key: &[u8]) -> u128 {
    debug_assert_eq!(key.len(), KEY_LEN);
    let mut padded = [0u8; 16];
    padded[6..16].copy_from_slice(key);
    u128::from_be_bytes(padded)
}

/// Number of whole records in a packed buffer.
pub fn record_count(buf: &[u8]) -> usize {
    debug_assert!(buf.len().is_multiple_of(RECORD_LEN));
    buf.len() / RECORD_LEN
}

/// An order-independent checksum over the records of a buffer (sum of
/// FNV-1a hashes of each whole record, wrapping). Input and sorted output
/// must agree — the TeraValidate invariant.
pub fn checksum(buf: &[u8]) -> u64 {
    let mut total: u64 = 0;
    for rec in records(buf) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in rec {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        total = total.wrapping_add(h);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key_byte: u8) -> Vec<u8> {
        let mut r = vec![0u8; RECORD_LEN];
        r[0] = key_byte;
        r[KEY_LEN] = 0xEE;
        r
    }

    #[test]
    fn accessors_split_key_and_value() {
        let r = rec(42);
        assert_eq!(key_of(&r)[0], 42);
        assert_eq!(key_of(&r).len(), KEY_LEN);
        assert_eq!(value_of(&r)[0], 0xEE);
        assert_eq!(value_of(&r).len(), VALUE_LEN);
    }

    #[test]
    fn records_iterates_chunks() {
        let mut buf = rec(1);
        buf.extend(rec(2));
        buf.extend(rec(3));
        let keys: Vec<u8> = records(&buf).map(|r| r[0]).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(record_count(&buf), 3);
    }

    #[test]
    #[should_panic(expected = "whole records")]
    fn records_rejects_partial() {
        let buf = vec![0u8; 150];
        let _ = records(&buf);
    }

    #[test]
    fn key_integer_order_is_lexicographic() {
        let lo = [0u8, 0, 0, 0, 0, 0, 0, 0, 1, 0];
        let hi = [0u8, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        assert!(key_to_u128(&lo) < key_to_u128(&hi));
        assert!(lo < hi); // byte order agrees
        let max = [0xFFu8; KEY_LEN];
        assert_eq!(key_to_u128(&max), (1u128 << 80) - 1);
    }

    #[test]
    fn checksum_is_order_independent() {
        let mut a = rec(1);
        a.extend(rec(2));
        let mut b = rec(2);
        b.extend(rec(1));
        assert_eq!(checksum(&a), checksum(&b));
        // …but content-dependent.
        let mut c = rec(1);
        c.extend(rec(3));
        assert_ne!(checksum(&a), checksum(&c));
    }

    #[test]
    fn checksum_of_empty_is_zero() {
        assert_eq!(checksum(&[]), 0);
    }
}
