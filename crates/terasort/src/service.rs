//! `cts serve` — the multi-tenant sort service.
//!
//! A thin wire layer over [`cts_mapreduce::JobRuntime`]: the daemon owns
//! one resident runtime (shared fabric, admission queue, thread budget)
//! and clients submit sort / wordcount / grep jobs into it over TCP,
//! poll status, and fetch results or digests.
//!
//! ## Wire protocol
//!
//! Every message (both directions) is one length-prefixed frame: a `u32`
//! little-endian payload length followed by the payload. Requests start
//! with an opcode byte:
//!
//! | op | request payload | OK response payload |
//! |----|-----------------|---------------------|
//! | `0x01` SUBMIT | `kind u8, r u8, pat_len u16 LE, pattern, input…` | `job_id u32 LE` |
//! | `0x02` STATUS | `job_id u32 LE` | `state u8` (+ error text when failed) |
//! | `0x03` DIGEST | `job_id u32 LE` (blocks until done) | `parts u32`, per part `len u64 + fnv1a u64`, `total fnv1a u64` |
//! | `0x04` FETCH  | `job_id u32 LE` (blocks until done) | `parts u32`, per part `len u64 + bytes` |
//! | `0x05` SHUTDOWN | — | — |
//! | `0x06` STATS | — | UTF-8 live-stats table (see [`ServiceClient::stats`]) |
//! | `0x07` TIMELINE | `job_id u32 LE` (blocks until done) | Chrome trace-event JSON |
//!
//! `kind` is 0 = sort (TeraGen records, range partitioner), 1 =
//! wordcount, 2 = grep (`pattern` required). `r ≤ 1` runs the uncoded
//! engine, `r > 1` the coded engine at that redundancy. Responses lead
//! with a status byte: `0x00` OK (payload follows), `0xFF` error (UTF-8
//! message follows). A connection may issue any number of requests;
//! closing it does not cancel submitted jobs.
//!
//! ## Introspection
//!
//! Besides the binary STATS frame, [`SortService::serve_metrics`] binds a
//! second listener that answers any connection with a Prometheus
//! text-format dump of the runtime's
//! [`MetricsHub`](cts_core::metrics::MetricsHub) (a minimal hard-coded
//! HTTP/1.1 200 — `curl http://addr/metrics` works, no HTTP stack
//! involved). And [`SortService::run_until`] gives the daemon a graceful
//! drain: when the caller's stop flag rises (e.g. from SIGINT/SIGTERM),
//! the service stops accepting connections and admitting jobs, finishes
//! everything in flight, and returns cleanly.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use cts_mapreduce::grep::Grep;
use cts_mapreduce::runtime::{JobRuntime, JobStatus, RuntimeConfig};
use cts_mapreduce::wordcount::WordCount;

use crate::workload::TeraSortWorkload;

/// Largest frame either side will accept (1 GiB).
const MAX_FRAME: u32 = 1 << 30;

const OP_SUBMIT: u8 = 0x01;
const OP_STATUS: u8 = 0x02;
const OP_DIGEST: u8 = 0x03;
const OP_FETCH: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_TIMELINE: u8 = 0x07;

const RESP_OK: u8 = 0x00;
const RESP_ERR: u8 = 0xFF;

/// What a submitted job runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// TeraSort over 100-byte TeraGen records (range partitioner).
    Sort,
    /// Word counting over newline-delimited text.
    WordCount,
    /// Line grep for the contained byte pattern.
    Grep(Vec<u8>),
}

impl JobKind {
    fn code(&self) -> u8 {
        match self {
            JobKind::Sort => 0,
            JobKind::WordCount => 1,
            JobKind::Grep(_) => 2,
        }
    }
}

/// FNV-1a 64 over `data` — the digest the service streams back in place
/// of full outputs.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A job's result digest: per-partition lengths and FNV-1a hashes plus
/// the hash of the concatenation — enough to prove byte-identity against
/// a local run without shipping the data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultDigest {
    /// `(output_len, fnv1a)` per partition, rank order.
    pub partitions: Vec<(u64, u64)>,
    /// FNV-1a over all partitions concatenated in rank order.
    pub total: u64,
}

impl ResultDigest {
    /// Digests locally produced outputs (for comparison with a service
    /// job's digest).
    pub fn of(outputs: &[Vec<u8>]) -> ResultDigest {
        let mut total: u64 = 0xcbf2_9ce4_8422_2325;
        let partitions = outputs
            .iter()
            .map(|o| {
                for &b in o.iter() {
                    total ^= u64::from(b);
                    total = total.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (o.len() as u64, fnv1a(o))
            })
            .collect();
        ResultDigest { partitions, total }
    }
}

/// The engine stages STATS summarizes, in pipeline order.
const STAGE_NAMES: [&str; 6] = [
    cts_mapreduce::stage::stages::CODEGEN,
    cts_mapreduce::stage::stages::MAP,
    cts_mapreduce::stage::stages::PACK_ENCODE,
    cts_mapreduce::stage::stages::SHUFFLE,
    cts_mapreduce::stage::stages::UNPACK_DECODE,
    cts_mapreduce::stage::stages::REDUCE,
];

/// Nearest-rank percentile of an ascending-sorted sample (`0` if empty).
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

// ---- framing ------------------------------------------------------------

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Fills `buf` completely, tolerating read timeouts. Returns `Ok(false)`
/// — without consuming anything — on clean EOF before the first byte, or
/// when `stop` rises while still at the boundary (no byte read yet). Once
/// any byte has arrived the frame is committed: timeouts keep retrying
/// so a drain never truncates a frame mid-flight.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
) -> std::io::Result<bool> {
    use std::io::ErrorKind;
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "EOF mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if filled == 0 {
                    if let Some(s) = stop {
                        if s.load(Ordering::SeqCst) {
                            return Ok(false);
                        }
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary, or when
/// `stop` rises at one (requires a read timeout on `stream` to be
/// observed — in-flight frames always complete first).
fn read_frame(
    stream: &mut TcpStream,
    stop: Option<&AtomicBool>,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !read_full(stream, &mut len_buf, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(stream, &mut payload, None)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "EOF mid-frame",
        ));
    }
    Ok(Some(payload))
}

fn take<const N: usize>(buf: &[u8], at: usize) -> Result<[u8; N], String> {
    buf.get(at..at + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(|| format!("truncated frame: wanted {N} bytes at offset {at}"))
}

// ---- server -------------------------------------------------------------

/// A finished job's cached artifacts: its partitions and the rendered
/// Chrome-trace timeline, shared across however many clients ask.
#[derive(Clone)]
struct JobRecord {
    outputs: Arc<Vec<Vec<u8>>>,
    timeline: Arc<String>,
}

type CachedRecord = Result<JobRecord, String>;

struct Inner {
    runtime: JobRuntime,
    // Outcomes move from the runtime into this cache on first wait, so
    // STATUS/DIGEST/FETCH/TIMELINE can be asked any number of times by
    // any client.
    results: parking_lot::Mutex<HashMap<u32, CachedRecord>>,
    stop: AtomicBool,
}

impl Inner {
    fn record_of(&self, id: u32) -> CachedRecord {
        if let Some(cached) = self.results.lock().get(&id) {
            return cached.clone();
        }
        let outcome = self
            .runtime
            .wait(id)
            .map(|o| JobRecord {
                timeline: Arc::new(cts_mapreduce::timeline::chrome_trace(&o, id)),
                outputs: Arc::new(o.outputs),
            })
            .map_err(|e| e.to_string());
        // Two clients can race into wait(); only one takes the outcome.
        // The holder of the real result (or real failure) wins the cache;
        // the loser's "already taken" error defers to whatever the winner
        // stored.
        let mut results = self.results.lock();
        if outcome.is_ok() {
            results.insert(id, outcome.clone());
            outcome
        } else {
            results.entry(id).or_insert(outcome).clone()
        }
    }

    fn outputs_of(&self, id: u32) -> Result<Arc<Vec<Vec<u8>>>, String> {
        self.record_of(id).map(|r| r.outputs)
    }

    /// The live-stats table STATS answers with: job lifecycle counts,
    /// admission/slot gauges, the cross-job stage-latency summary from
    /// the metric registry, and a per-job stage/NIC breakdown from the
    /// span ring.
    fn render_stats(&self) -> String {
        use std::fmt::Write as _;
        let hub = self.runtime.fabric().metrics();
        let statuses = self.runtime.job_statuses();
        let (mut queued, mut running, mut done, mut failed) = (0u32, 0u32, 0u32, 0u32);
        for (_, st) in &statuses {
            match st {
                JobStatus::Queued => queued += 1,
                JobStatus::Running => running += 1,
                JobStatus::Done => done += 1,
                JobStatus::Failed(_) => failed += 1,
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jobs: {} known — {queued} queued, {running} running, {done} done, {failed} failed",
            statuses.len()
        );
        let _ = writeln!(
            out,
            "admission: queue {}/{}  refused {}  slots in use {}",
            self.runtime.queue_depth(),
            hub.gauge("cts_admission_queue_capacity").get(),
            hub.counter("cts_jobs_refused_total").get(),
            hub.gauge("cts_slots_in_use").get(),
        );

        let _ = writeln!(out);
        let _ = writeln!(out, "stage latency across finished jobs (ms):");
        let _ = writeln!(
            out,
            "  {:<14} {:>6} {:>10} {:>10} {:>10}",
            "stage", "count", "p50", "p99", "max"
        );
        for stage in STAGE_NAMES {
            let h = hub.histogram_with("cts_stage_seconds", "stage", stage, 1e-9);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>6} {:>10.2} {:>10.2} {:>10.2}",
                stage,
                h.count(),
                h.p50().unwrap_or(0) as f64 / 1e6,
                h.p99().unwrap_or(0) as f64 / 1e6,
                h.max() as f64 / 1e6,
            );
        }

        let spans = self.runtime.fabric().spans_snapshot();
        let meters: HashMap<u32, _> = self.runtime.fabric().job_meters().into_iter().collect();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "per-job stage walls (ms; slowest rank) and NIC stalls:"
        );
        for (id, st) in &statuses {
            let state = match st {
                JobStatus::Queued => "queued",
                JobStatus::Running => "running",
                JobStatus::Done => "done",
                JobStatus::Failed(_) => "failed",
            };
            let _ = write!(out, "  job {id:<5} {state:<8}");
            let log = spans.for_job(*id);
            for stage in log.stages_in_order() {
                let mut durs = log.stage_durations_ns(stage);
                durs.sort_unstable();
                let _ = write!(
                    out,
                    " {stage}={:.2}/p99 {:.2}",
                    pct(&durs, 0.50) as f64 / 1e6,
                    pct(&durs, 0.99) as f64 / 1e6,
                );
            }
            if let Some(m) = meters.get(id) {
                let _ = write!(
                    out,
                    "  nic_waits={} stall_ms={:.2}",
                    m.waits.get(),
                    m.wait_ns.get() as f64 / 1e6
                );
            }
            let _ = writeln!(out);
        }
        out
    }

    fn submit(&self, kind: JobKind, r: usize, input: Bytes) -> Result<u32, String> {
        let handle = self
            .runtime
            .submit(move |ctx| {
                let mut cfg = ctx.cfg.clone();
                cfg.r = r;
                let coded = r > 1;
                match &kind {
                    JobKind::Sort => {
                        let w = TeraSortWorkload::range(cfg.k);
                        if coded {
                            ctx.run_coded_with(&w, input, &cfg)
                        } else {
                            ctx.run_uncoded_with(&w, input, &cfg)
                        }
                    }
                    JobKind::WordCount => {
                        if coded {
                            ctx.run_coded_with(&WordCount, input, &cfg)
                        } else {
                            ctx.run_uncoded_with(&WordCount, input, &cfg)
                        }
                    }
                    JobKind::Grep(pattern) => {
                        let w = Grep::new(pattern.clone());
                        if coded {
                            ctx.run_coded_with(&w, input, &cfg)
                        } else {
                            ctx.run_uncoded_with(&w, input, &cfg)
                        }
                    }
                }
            })
            .map_err(|e| e.to_string())?;
        Ok(handle.id())
    }

    fn handle_request(&self, req: &[u8]) -> Result<Vec<u8>, String> {
        let op = *req.first().ok_or("empty frame")?;
        match op {
            OP_SUBMIT => {
                let kind_code = *req.get(1).ok_or("truncated SUBMIT")?;
                let r = usize::from(*req.get(2).ok_or("truncated SUBMIT")?);
                let pat_len = usize::from(u16::from_le_bytes(take::<2>(req, 3)?));
                let pattern = req
                    .get(5..5 + pat_len)
                    .ok_or("truncated SUBMIT pattern")?
                    .to_vec();
                let input = Bytes::copy_from_slice(req.get(5 + pat_len..).unwrap_or(&[]));
                let kind = match kind_code {
                    0 => JobKind::Sort,
                    1 => JobKind::WordCount,
                    2 => JobKind::Grep(pattern),
                    other => return Err(format!("unknown job kind {other}")),
                };
                let id = self.submit(kind, r, input)?;
                Ok(id.to_le_bytes().to_vec())
            }
            OP_STATUS => {
                let id = u32::from_le_bytes(take::<4>(req, 1)?);
                let status = self
                    .runtime
                    .status(id)
                    .ok_or_else(|| format!("unknown job id {id}"))?;
                let mut out = Vec::new();
                match status {
                    JobStatus::Queued => out.push(0),
                    JobStatus::Running => out.push(1),
                    JobStatus::Done => out.push(2),
                    JobStatus::Failed(msg) => {
                        out.push(3);
                        out.extend_from_slice(msg.as_bytes());
                    }
                }
                Ok(out)
            }
            OP_DIGEST => {
                let id = u32::from_le_bytes(take::<4>(req, 1)?);
                let outputs = self.outputs_of(id)?;
                let digest = ResultDigest::of(&outputs);
                let mut out = Vec::with_capacity(4 + digest.partitions.len() * 16 + 8);
                out.extend_from_slice(&(digest.partitions.len() as u32).to_le_bytes());
                for (len, fnv) in &digest.partitions {
                    out.extend_from_slice(&len.to_le_bytes());
                    out.extend_from_slice(&fnv.to_le_bytes());
                }
                out.extend_from_slice(&digest.total.to_le_bytes());
                Ok(out)
            }
            OP_FETCH => {
                let id = u32::from_le_bytes(take::<4>(req, 1)?);
                let outputs = self.outputs_of(id)?;
                let total: usize = outputs.iter().map(|o| o.len() + 8).sum();
                let mut out = Vec::with_capacity(4 + total);
                out.extend_from_slice(&(outputs.len() as u32).to_le_bytes());
                for o in outputs.iter() {
                    out.extend_from_slice(&(o.len() as u64).to_le_bytes());
                    out.extend_from_slice(o);
                }
                Ok(out)
            }
            OP_STATS => Ok(self.render_stats().into_bytes()),
            OP_TIMELINE => {
                let id = u32::from_le_bytes(take::<4>(req, 1)?);
                let record = self.record_of(id)?;
                Ok(record.timeline.as_bytes().to_vec())
            }
            OP_SHUTDOWN => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(Vec::new())
            }
            other => Err(format!("unknown opcode {other:#04x}")),
        }
    }
}

/// The `cts serve` daemon: a TCP front-end over one resident
/// [`JobRuntime`].
pub struct SortService {
    listener: TcpListener,
    inner: Arc<Inner>,
    metrics_threads: Vec<std::thread::JoinHandle<()>>,
}

impl SortService {
    /// Starts the runtime and binds the service listener. Use port 0 for
    /// a kernel-assigned port (read it back via
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, cfg: RuntimeConfig) -> Result<SortService, String> {
        let runtime = JobRuntime::start(cfg).map_err(|e| e.to_string())?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind: {e}"))?;
        Ok(SortService {
            listener,
            inner: Arc::new(Inner {
                runtime,
                results: parking_lot::Mutex::new(HashMap::new()),
                stop: AtomicBool::new(false),
            }),
            metrics_threads: Vec::new(),
        })
    }

    /// Binds a Prometheus text-format endpoint on `addr` (port 0 works;
    /// the bound address is returned). Any connection — e.g.
    /// `curl http://addr/metrics` — receives one minimal HTTP/1.1 200
    /// with the runtime's full metric dump and is closed. The listener
    /// thread exits with the service.
    pub fn serve_metrics(
        &mut self,
        addr: impl ToSocketAddrs,
    ) -> Result<std::net::SocketAddr, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("metrics bind: {e}"))?;
        let bound = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let inner = Arc::clone(&self.inner);
        self.metrics_threads.push(std::thread::spawn(move || {
            while !inner.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        // Drain whatever request line arrived (best
                        // effort), then answer with the dump and close.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                        let mut scratch = [0u8; 1024];
                        let _ = stream.read(&mut scratch);
                        let body = inner.runtime.fabric().render_prometheus();
                        let resp = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                            body.len(),
                            body
                        );
                        let _ = stream.write_all(resp.as_bytes());
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        }));
        Ok(bound)
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends SHUTDOWN. Each connection gets its own
    /// handler thread; in-flight requests finish before return.
    pub fn run(self) -> Result<(), String> {
        self.run_until(&AtomicBool::new(false))
    }

    /// Serves until a client sends SHUTDOWN **or** `stop` rises (the
    /// graceful-drain path `cts serve` wires to SIGINT/SIGTERM): new
    /// connections stop being accepted, connected clients are cut loose
    /// at their next frame boundary, queued and running jobs finish
    /// inside the runtime, and the call returns `Ok`.
    pub fn run_until(mut self, stop: &AtomicBool) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| e.to_string())?;
        let mut handlers = Vec::new();
        while !self.inner.stop.load(Ordering::SeqCst) && !stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                    let inner = Arc::clone(&self.inner);
                    handlers.push(std::thread::spawn(move || serve_connection(stream, &inner)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        // Propagate the drain to connection handlers (their stop-aware
        // frame reads observe it at the next boundary) and the metrics
        // listener, then wait for everyone. The runtime itself drains on
        // drop: admission closes, dispatchers finish queued jobs, join.
        self.inner.stop.store(true, Ordering::SeqCst);
        for h in handlers {
            let _ = h.join();
        }
        for h in self.metrics_threads.drain(..) {
            let _ = h.join();
        }
        Ok(())
    }
}

fn serve_connection(mut stream: TcpStream, inner: &Inner) {
    // The read timeout makes the boundary-only stop check in `read_full`
    // fire; committed frames still complete.
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    loop {
        let req = match read_frame(&mut stream, Some(&inner.stop)) {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => return,
        };
        let mut resp = Vec::new();
        match inner.handle_request(&req) {
            Ok(payload) => {
                resp.push(RESP_OK);
                resp.extend_from_slice(&payload);
            }
            Err(msg) => {
                resp.push(RESP_ERR);
                resp.extend_from_slice(msg.as_bytes());
            }
        }
        if write_frame(&mut stream, &resp).is_err() {
            return;
        }
        if req.first() == Some(&OP_SHUTDOWN) {
            return;
        }
    }
}

// ---- client -------------------------------------------------------------

/// A client-side job state, mirroring [`JobStatus`] over the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteStatus {
    /// Admitted, waiting for a dispatcher.
    Queued,
    /// Running on the service's fabric.
    Running,
    /// Finished; digest/fetch will not block.
    Done,
    /// Failed with the contained service-side error message.
    Failed(String),
}

/// The `cts submit` side: one TCP connection to a [`SortService`].
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connects to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        Ok(ServiceClient { stream })
    }

    fn roundtrip(&mut self, req: &[u8]) -> Result<Vec<u8>, String> {
        write_frame(&mut self.stream, req).map_err(|e| format!("send: {e}"))?;
        let resp = read_frame(&mut self.stream, None)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("service closed the connection")?;
        match resp.split_first() {
            Some((&RESP_OK, payload)) => Ok(payload.to_vec()),
            Some((&RESP_ERR, msg)) => Err(String::from_utf8_lossy(msg).into_owned()),
            _ => Err("malformed response".into()),
        }
    }

    /// Submits a job; returns its service-wide id immediately.
    pub fn submit(&mut self, kind: &JobKind, r: usize, input: &[u8]) -> Result<u32, String> {
        let pattern: &[u8] = match kind {
            JobKind::Grep(p) => p,
            _ => &[],
        };
        let r = u8::try_from(r).map_err(|_| "r exceeds 255".to_string())?;
        let mut req = Vec::with_capacity(5 + pattern.len() + input.len());
        req.push(OP_SUBMIT);
        req.push(kind.code());
        req.push(r);
        req.extend_from_slice(
            &u16::try_from(pattern.len())
                .map_err(|_| "pattern too long".to_string())?
                .to_le_bytes(),
        );
        req.extend_from_slice(pattern);
        req.extend_from_slice(input);
        let resp = self.roundtrip(&req)?;
        Ok(u32::from_le_bytes(take::<4>(&resp, 0)?))
    }

    /// Polls a job's status.
    pub fn status(&mut self, id: u32) -> Result<RemoteStatus, String> {
        let mut req = vec![OP_STATUS];
        req.extend_from_slice(&id.to_le_bytes());
        let resp = self.roundtrip(&req)?;
        match resp.split_first() {
            Some((0, _)) => Ok(RemoteStatus::Queued),
            Some((1, _)) => Ok(RemoteStatus::Running),
            Some((2, _)) => Ok(RemoteStatus::Done),
            Some((3, msg)) => Ok(RemoteStatus::Failed(
                String::from_utf8_lossy(msg).into_owned(),
            )),
            _ => Err("malformed status".into()),
        }
    }

    /// Blocks until the job finishes and returns its result digest.
    pub fn digest(&mut self, id: u32) -> Result<ResultDigest, String> {
        let mut req = vec![OP_DIGEST];
        req.extend_from_slice(&id.to_le_bytes());
        let resp = self.roundtrip(&req)?;
        let parts = u32::from_le_bytes(take::<4>(&resp, 0)?) as usize;
        let mut partitions = Vec::with_capacity(parts);
        let mut at = 4;
        for _ in 0..parts {
            let len = u64::from_le_bytes(take::<8>(&resp, at)?);
            let fnv = u64::from_le_bytes(take::<8>(&resp, at + 8)?);
            partitions.push((len, fnv));
            at += 16;
        }
        let total = u64::from_le_bytes(take::<8>(&resp, at)?);
        Ok(ResultDigest { partitions, total })
    }

    /// Blocks until the job finishes and returns the full per-partition
    /// outputs.
    pub fn fetch(&mut self, id: u32) -> Result<Vec<Vec<u8>>, String> {
        let mut req = vec![OP_FETCH];
        req.extend_from_slice(&id.to_le_bytes());
        let resp = self.roundtrip(&req)?;
        let parts = u32::from_le_bytes(take::<4>(&resp, 0)?) as usize;
        let mut outputs = Vec::with_capacity(parts);
        let mut at = 4;
        for _ in 0..parts {
            let len = u64::from_le_bytes(take::<8>(&resp, at)?) as usize;
            at += 8;
            outputs.push(
                resp.get(at..at + len)
                    .ok_or("truncated fetch payload")?
                    .to_vec(),
            );
            at += len;
        }
        Ok(outputs)
    }

    /// Fetches the service's live-stats table: job lifecycle counts,
    /// admission/slot gauges, the cross-job stage-latency summary
    /// (p50/p99/max), and a per-job stage/NIC breakdown.
    pub fn stats(&mut self) -> Result<String, String> {
        let resp = self.roundtrip(&[OP_STATS])?;
        Ok(String::from_utf8_lossy(&resp).into_owned())
    }

    /// Blocks until the job finishes and returns its per-stage timeline
    /// as Chrome trace-event JSON (load it in `chrome://tracing` or
    /// Perfetto).
    pub fn timeline(&mut self, id: u32) -> Result<String, String> {
        let mut req = vec![OP_TIMELINE];
        req.extend_from_slice(&id.to_le_bytes());
        let resp = self.roundtrip(&req)?;
        Ok(String::from_utf8_lossy(&resp).into_owned())
    }

    /// Asks the service to stop accepting and shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.roundtrip(&[OP_SHUTDOWN]).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teragen::generate;
    use cts_mapreduce::stage::EngineConfig;
    use cts_mapreduce::verify::run_sequential;

    fn service(
        k: usize,
        r: usize,
        max_concurrent: usize,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let cfg = RuntimeConfig::new(EngineConfig::local(k, r)).with_max_concurrent(max_concurrent);
        let svc = SortService::bind("127.0.0.1:0", cfg).unwrap();
        let addr = svc.local_addr().unwrap();
        let server = std::thread::spawn(move || svc.run().unwrap());
        (addr, server)
    }

    #[test]
    fn submit_status_digest_fetch_roundtrip() {
        let (addr, server) = service(3, 2, 2);
        let input = generate(300, 99);
        let mut client = ServiceClient::connect(addr).unwrap();
        let id = client.submit(&JobKind::Sort, 2, &input).unwrap();
        let digest = client.digest(id).unwrap();
        assert_eq!(client.status(id).unwrap(), RemoteStatus::Done);
        let fetched = client.fetch(id).unwrap();
        // Byte-identical to a one-shot run of the same job.
        let local =
            crate::driver::run_terasort(input.clone(), &crate::driver::SortJob::local(3, 1))
                .unwrap();
        assert_eq!(fetched, local.outcome.outputs);
        assert_eq!(digest, ResultDigest::of(&local.outcome.outputs));
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn wordcount_and_grep_jobs_serve_too() {
        let (addr, server) = service(3, 2, 2);
        let text = b"the quick brown fox\nthe lazy dog\nthe end\n";
        let mut client = ServiceClient::connect(addr).unwrap();
        let wc = client.submit(&JobKind::WordCount, 2, text).unwrap();
        let gr = client
            .submit(&JobKind::Grep(b"the".to_vec()), 1, text)
            .unwrap();
        let wc_out = client.fetch(wc).unwrap();
        let gr_out = client.fetch(gr).unwrap();
        assert_eq!(
            wc_out,
            run_sequential(&WordCount, &Bytes::copy_from_slice(text), 3)
        );
        assert_eq!(
            gr_out,
            run_sequential(&Grep::new(&b"the"[..]), &Bytes::copy_from_slice(text), 3)
        );
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn unknown_job_id_yields_an_error_not_a_hang() {
        let (addr, server) = service(2, 1, 1);
        let mut client = ServiceClient::connect(addr).unwrap();
        assert!(client.status(777).is_err());
        assert!(client.digest(777).is_err());
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn concurrent_clients_share_one_runtime() {
        let (addr, server) = service(3, 2, 4);
        let inputs: Vec<Vec<u8>> = (0..8)
            .map(|i| generate(200 + i * 10, i as u64).to_vec())
            .collect();
        let digests: Vec<ResultDigest> = std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|input| {
                    s.spawn(move || {
                        let mut client = ServiceClient::connect(addr).unwrap();
                        let id = client.submit(&JobKind::Sort, 2, input).unwrap();
                        client.digest(id).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (input, digest) in inputs.iter().zip(&digests) {
            let local = crate::driver::run_terasort(
                Bytes::copy_from_slice(input),
                &crate::driver::SortJob::local(3, 1),
            )
            .unwrap();
            assert_eq!(*digest, ResultDigest::of(&local.outcome.outputs));
        }
        let mut client = ServiceClient::connect(addr).unwrap();
        client.shutdown().unwrap();
        server.join().unwrap();
    }
}
