//! Local sort kernels for the Reduce stage.
//!
//! The paper uses `std::sort` (§V-A); [`SortKernel::Comparison`] is the
//! direct equivalent. The other kernels are optimization ablations built on
//! the observation (shared with offset-value coding, arXiv:2209.08420) that
//! sort time is dominated by key comparisons and *record movement* — so the
//! fastest plan touches the 100-byte records as little as possible:
//!
//! * [`SortKernel::LsdRadix`] — least-significant-digit radix sort over the
//!   10-byte key in five 16-bit passes, moving whole records every pass
//!   (5 × 100 B per record of traffic);
//! * [`SortKernel::KeyIndex`] — the same five radix passes, but over packed
//!   `(key, index)` entries (`u128`: 80 key bits above 32 index bits), so
//!   each pass moves 16-byte entries and the records are gathered **once**
//!   at the end (5 × 16 B + 1 × 100 B per record).
//!
//! All kernels are **stable** (equal keys keep input order), which makes
//! every kernel — and every [`WorkerPool`] thread count, via chunked
//! sort-then-merge — produce byte-identical output.
//!
//! Per-pass count/offset tables and entry arrays live in a reusable
//! [`SortScratch`] (built on [`cts_core::pool::Scratch`]), so a warm sort
//! performs exactly one allocation: the returned output buffer.

use cts_core::exec::WorkerPool;
use cts_core::pool::Scratch;

use crate::record::{key_of, key_to_u128, record_count, records, RECORD_LEN};

/// Which sorting algorithm the Reduce stage runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SortKernel {
    /// Stable `std`-style comparison sort by key (the paper's `std::sort`).
    #[default]
    Comparison,
    /// LSD radix sort moving whole records: five stable counting-sort
    /// passes over 16-bit key digits, least significant first.
    LsdRadix,
    /// Key-index LSD radix sort: radix passes over packed `(u128 key,
    /// u32 index)` entries, then a single gather of the records.
    KeyIndex,
}

impl SortKernel {
    /// All kernels, for ablations and equivalence tests.
    pub const ALL: [SortKernel; 3] = [
        SortKernel::Comparison,
        SortKernel::LsdRadix,
        SortKernel::KeyIndex,
    ];
}

impl std::fmt::Display for SortKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SortKernel::Comparison => "comparison",
            SortKernel::LsdRadix => "lsd-radix",
            SortKernel::KeyIndex => "key-index",
        })
    }
}

impl std::str::FromStr for SortKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "comparison" | "std" => Ok(SortKernel::Comparison),
            "lsd-radix" | "radix" => Ok(SortKernel::LsdRadix),
            "key-index" | "keyindex" => Ok(SortKernel::KeyIndex),
            other => Err(format!(
                "unknown sort kernel `{other}` (expected comparison | lsd-radix | key-index)"
            )),
        }
    }
}

/// Digit width of the radix passes (16 bits → five passes over 80-bit
/// keys).
const RADIX_BITS: usize = 16;
/// Radix table size.
const RADIX: usize = 1 << RADIX_BITS;
/// Number of radix passes over a 10-byte key.
const RADIX_PASSES: usize = 5;

/// Reusable buffers for the sort kernels (grow-only; see
/// [`cts_core::pool::Scratch`]).
///
/// The count/offset tables are the former per-pass
/// `vec![0u32; 1 << 16]` allocations, hoisted out of the pass loop: one
/// warm scratch serves any number of sorts with a single table (re)zeroing
/// per pass instead of two 256 KiB allocations.
#[derive(Debug, Default)]
pub struct SortScratch {
    counts: Scratch<u32>,
    offsets: Scratch<u32>,
    entries: Scratch<u128>,
    entries_tmp: Scratch<u128>,
    records_tmp: Scratch<u8>,
}

impl SortScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Sorts a packed record buffer by key, returning the sorted buffer.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of the record size.
pub fn sort_records(data: &[u8], kernel: SortKernel) -> Vec<u8> {
    sort_records_with(data, kernel, &mut SortScratch::new())
}

/// Like [`sort_records`], but reusing `scratch` across calls — a warm
/// scratch makes every kernel's only allocation the returned buffer.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of the record size, or if the
/// buffer holds ≥ 2³² records (the key-index packing limit).
pub fn sort_records_with(data: &[u8], kernel: SortKernel, scratch: &mut SortScratch) -> Vec<u8> {
    match kernel {
        SortKernel::Comparison => comparison_sort(data),
        SortKernel::LsdRadix => lsd_radix_sort(data, scratch),
        SortKernel::KeyIndex => key_index_sort(data, scratch),
    }
}

/// Sorts a packed record buffer by key with up to `pool.threads()` workers:
/// the buffer splits into contiguous chunks, each chunk is sorted
/// independently (one warm [`SortScratch`] per worker), and the sorted runs
/// are merged stably (ties broken by chunk order = input order).
///
/// Because every kernel is stable, the output is byte-identical for *any*
/// thread count and equal to the serial [`sort_records`].
///
/// # Panics
/// As [`sort_records_with`].
pub fn sort_records_parallel(data: &[u8], kernel: SortKernel, pool: &WorkerPool) -> Vec<u8> {
    let ranges = pool.chunk_ranges(record_count(data), PAR_MIN_RECORDS_PER_CHUNK);
    if ranges.len() <= 1 {
        return sort_records(data, kernel);
    }
    let runs: Vec<Vec<u8>> = pool.map_with(ranges.len(), SortScratch::new, |scratch, c| {
        let r = &ranges[c];
        sort_records_with(
            &data[r.start * RECORD_LEN..r.end * RECORD_LEN],
            kernel,
            scratch,
        )
    });
    merge_sorted_runs(&runs, data.len())
}

/// Minimum records per parallel chunk (~400 KiB of records): below this,
/// chunking/merge overhead beats the parallelism. Shared by the parallel
/// sort and `TeraSortWorkload`'s parallel Map hash so both stages chunk
/// identically.
pub(crate) const PAR_MIN_RECORDS_PER_CHUNK: usize = 1 << 12;

/// Stable T-way merge of sorted record runs (tie → lowest run index).
fn merge_sorted_runs(runs: &[Vec<u8>], total_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(total_len);
    let mut pos = vec![0usize; runs.len()];
    // Cached head keys; `None` = run exhausted.
    let mut heads: Vec<Option<u128>> = runs
        .iter()
        .map(|r| (!r.is_empty()).then(|| key_to_u128(key_of(&r[..RECORD_LEN]))))
        .collect();
    loop {
        let mut best: Option<(usize, u128)> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some(k) = head {
                // Strictly-less keeps ties on the lowest run index: stable.
                if best.is_none_or(|(_, bk)| *k < bk) {
                    best = Some((i, *k));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let at = pos[i];
        out.extend_from_slice(&runs[i][at..at + RECORD_LEN]);
        pos[i] = at + RECORD_LEN;
        heads[i] = (pos[i] < runs[i].len())
            .then(|| key_to_u128(key_of(&runs[i][pos[i]..pos[i] + RECORD_LEN])));
    }
    debug_assert_eq!(out.len(), total_len);
    out
}

fn comparison_sort(data: &[u8]) -> Vec<u8> {
    let mut views: Vec<(&[u8], usize)> = records(data).enumerate().map(|(i, r)| (r, i)).collect();
    // Unstable sort — the paper's `std::sort` — with the input index as a
    // tie breaker, which gives the stable semantics every kernel must share
    // (equal keys keep input order) at unstable-sort speed and without the
    // stable sort's n/2 temp allocation.
    views.sort_unstable_by_key(|&(r, i)| (key_of(r), i));
    let mut out = Vec::with_capacity(data.len());
    for (r, _) in views {
        out.extend_from_slice(r);
    }
    out
}

/// The 16-bit digit of `pass` (least significant first) from a record's
/// key bytes: pass 0 reads key bytes (8,9), pass 4 reads (0,1).
#[inline]
fn record_digit(rec: &[u8], pass: usize) -> usize {
    let hi = 8 - 2 * pass;
    u16::from_be_bytes([rec[hi], rec[hi + 1]]) as usize
}

fn lsd_radix_sort(data: &[u8], scratch: &mut SortScratch) -> Vec<u8> {
    let n = record_count(data);
    if n <= 1 {
        return data.to_vec();
    }
    // Two-buffer ping-pong over whole records; the second buffer comes from
    // (and returns to) the scratch.
    let mut src = data.to_vec();
    let mut dst = scratch.records_tmp.take();
    dst.clear();
    dst.resize(data.len(), 0);
    for pass in 0..RADIX_PASSES {
        let counts = scratch.counts.zeroed(RADIX);
        for rec in src.chunks_exact(RECORD_LEN) {
            counts[record_digit(rec, pass)] += 1;
        }
        // All records share this digit → the pass is the identity.
        if counts[record_digit(&src[..RECORD_LEN], pass)] as usize == n {
            continue;
        }
        let offsets = scratch.offsets.zeroed(RADIX);
        let mut acc = 0u32;
        for (o, c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        for rec in src.chunks_exact(RECORD_LEN) {
            let d = record_digit(rec, pass);
            let at = offsets[d] as usize * RECORD_LEN;
            dst[at..at + RECORD_LEN].copy_from_slice(rec);
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    scratch.records_tmp.restore(dst);
    src
}

fn key_index_sort(data: &[u8], scratch: &mut SortScratch) -> Vec<u8> {
    let n = record_count(data);
    if n <= 1 {
        return data.to_vec();
    }
    assert!(
        n <= u32::MAX as usize,
        "key-index packing supports < 2^32 records"
    );
    // Pack (key, index): 80 key bits in 112..32, index in the low 32. The
    // radix passes only touch the key bits; stability of counting sort
    // keeps equal-key entries in input (index) order.
    let entries = scratch.entries.cleared();
    entries.reserve(n);
    for (i, rec) in records(data).enumerate() {
        entries.push((key_to_u128(key_of(rec)) << 32) | i as u128);
    }
    let mut src = scratch.entries.take();
    let mut dst = scratch.entries_tmp.take();
    dst.clear();
    dst.resize(n, 0);
    for pass in 0..RADIX_PASSES {
        let shift = 32 + RADIX_BITS * pass;
        let counts = scratch.counts.zeroed(RADIX);
        for &e in src.iter() {
            counts[(e >> shift) as usize & (RADIX - 1)] += 1;
        }
        if counts[(src[0] >> shift) as usize & (RADIX - 1)] as usize == n {
            continue;
        }
        let offsets = scratch.offsets.zeroed(RADIX);
        let mut acc = 0u32;
        for (o, c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        for &e in src.iter() {
            let d = (e >> shift) as usize & (RADIX - 1);
            dst[offsets[d] as usize] = e;
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    // Gather the records once, in final order.
    let mut out = Vec::with_capacity(data.len());
    for &e in src.iter() {
        let at = (e as u32) as usize * RECORD_LEN;
        out.extend_from_slice(&data[at..at + RECORD_LEN]);
    }
    scratch.entries.restore(src);
    scratch.entries_tmp.restore(dst);
    out
}

/// True if the buffer's records are in non-decreasing key order.
pub fn is_sorted(data: &[u8]) -> bool {
    let mut prev: Option<&[u8]> = None;
    for rec in records(data) {
        let k = key_of(rec);
        if let Some(p) = prev {
            if p > k {
                return false;
            }
        }
        prev = Some(k);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::checksum;
    use crate::teragen::generate;

    #[test]
    fn all_kernels_sort() {
        let data = generate(500, 99);
        for kernel in SortKernel::ALL {
            let sorted = sort_records(&data, kernel);
            assert!(is_sorted(&sorted), "{kernel:?}");
            assert_eq!(sorted.len(), data.len());
            assert_eq!(checksum(&sorted), checksum(&data), "{kernel:?}");
        }
    }

    #[test]
    fn kernels_agree_exactly() {
        let data = generate(1000, 123);
        let reference = sort_records(&data, SortKernel::Comparison);
        for kernel in [SortKernel::LsdRadix, SortKernel::KeyIndex] {
            assert_eq!(reference, sort_records(&data, kernel), "{kernel:?}");
        }
    }

    /// Input with heavy key duplication, distinguishable values.
    fn duplicate_key_data(n: usize, distinct_keys: usize) -> Vec<u8> {
        let mut data = vec![0u8; n * RECORD_LEN];
        for i in 0..n {
            let rec = &mut data[i * RECORD_LEN..(i + 1) * RECORD_LEN];
            rec[9] = (i % distinct_keys) as u8; // key
            rec[10..14].copy_from_slice(&(i as u32).to_le_bytes()); // value
        }
        data
    }

    #[test]
    fn kernels_agree_on_duplicate_keys() {
        // All kernels are stable, so even massive key duplication yields
        // byte-identical outputs.
        let data = duplicate_key_data(997, 5);
        let reference = sort_records(&data, SortKernel::Comparison);
        assert!(is_sorted(&reference));
        for kernel in [SortKernel::LsdRadix, SortKernel::KeyIndex] {
            assert_eq!(reference, sort_records(&data, kernel), "{kernel:?}");
        }
    }

    #[test]
    fn kernels_are_stable_for_equal_keys() {
        // Two records with identical keys, distinguishable values.
        let mut data = vec![0u8; 2 * RECORD_LEN];
        data[10] = b'a'; // first record's value
        data[RECORD_LEN + 10] = b'b';
        for kernel in SortKernel::ALL {
            let sorted = sort_records(&data, kernel);
            assert_eq!(sorted[10], b'a', "{kernel:?}");
            assert_eq!(sorted[RECORD_LEN + 10], b'b', "{kernel:?}");
        }
    }

    #[test]
    fn empty_and_single() {
        for kernel in SortKernel::ALL {
            assert!(sort_records(&[], kernel).is_empty());
            let one = generate(1, 5);
            assert_eq!(sort_records(&one, kernel), one.to_vec());
        }
    }

    #[test]
    fn already_sorted_is_fixed_point() {
        let data = generate(200, 44);
        let once = sort_records(&data, SortKernel::Comparison);
        for kernel in [SortKernel::LsdRadix, SortKernel::KeyIndex] {
            assert_eq!(once, sort_records(&once, kernel), "{kernel:?}");
        }
    }

    #[test]
    fn warm_scratch_matches_cold() {
        let mut scratch = SortScratch::new();
        for seed in [7u64, 8, 9] {
            let data = generate(700, seed);
            for kernel in SortKernel::ALL {
                assert_eq!(
                    sort_records_with(&data, kernel, &mut scratch),
                    sort_records(&data, kernel),
                    "{kernel:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_for_all_kernels_and_threads() {
        // Enough records that the parallel path actually chunks (the
        // min-chunk guard is 4 096 records).
        let data = generate(10_000, 321).to_vec();
        let dup = duplicate_key_data(9_000, 3);
        for input in [&data, &dup] {
            let reference = sort_records(input, SortKernel::Comparison);
            for kernel in SortKernel::ALL {
                for threads in [1usize, 2, 4] {
                    let pool = WorkerPool::new(threads);
                    assert_eq!(
                        sort_records_parallel(input, kernel, &pool),
                        reference,
                        "{kernel:?} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn sort_kernel_parses_and_displays() {
        for kernel in SortKernel::ALL {
            assert_eq!(kernel.to_string().parse::<SortKernel>(), Ok(kernel));
        }
        assert_eq!("radix".parse::<SortKernel>(), Ok(SortKernel::LsdRadix));
        assert!("bogosort".parse::<SortKernel>().is_err());
    }

    #[test]
    fn is_sorted_detects_disorder() {
        let data = generate(50, 7);
        let sorted = sort_records(&data, SortKernel::Comparison);
        assert!(is_sorted(&sorted));
        // Swap two records to break order (keys random → near-surely
        // different).
        let mut broken = sorted.clone();
        let (a, b) = (0, RECORD_LEN * 25);
        for i in 0..RECORD_LEN {
            broken.swap(a + i, b + i);
        }
        assert!(!is_sorted(&broken));
    }
}
