//! Local sort kernels for the Reduce stage.
//!
//! The paper uses `std::sort` (§V-A). [`SortKernel::Comparison`] is the
//! direct equivalent (`sort_unstable` on record views); [`SortKernel::Lsd
//! Radix`] is an optimization ablation: least-significant-digit radix sort
//! over the 10-byte key in five 16-bit passes — O(n) in the record count.

use crate::record::{key_of, records, RECORD_LEN};

/// Which sorting algorithm the Reduce stage runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SortKernel {
    /// `sort_unstable` by key (the paper's `std::sort`).
    #[default]
    Comparison,
    /// LSD radix sort: five stable counting-sort passes over 16-bit key
    /// digits, least significant first.
    LsdRadix,
}

/// Sorts a packed record buffer by key, returning the sorted buffer.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of the record size.
pub fn sort_records(data: &[u8], kernel: SortKernel) -> Vec<u8> {
    match kernel {
        SortKernel::Comparison => comparison_sort(data),
        SortKernel::LsdRadix => lsd_radix_sort(data),
    }
}

fn comparison_sort(data: &[u8]) -> Vec<u8> {
    let mut views: Vec<&[u8]> = records(data).collect();
    views.sort_unstable_by_key(|r| key_of(r));
    let mut out = Vec::with_capacity(data.len());
    for r in views {
        out.extend_from_slice(r);
    }
    out
}

fn lsd_radix_sort(data: &[u8]) -> Vec<u8> {
    let n = records(data).len();
    if n <= 1 {
        return data.to_vec();
    }
    // Order tracked as indices; gather once at the end per pass into a
    // scratch buffer of full records (two-buffer ping-pong).
    let mut src = data.to_vec();
    let mut dst = vec![0u8; data.len()];
    // Five 16-bit digits, least significant first: key bytes (8,9), (6,7),
    // (4,5), (2,3), (0,1).
    for pass in 0..5usize {
        let hi = 8 - 2 * pass; // index of the digit's high byte
        let mut counts = vec![0u32; 1 << 16];
        for rec in src.chunks_exact(RECORD_LEN) {
            let d = u16::from_be_bytes([rec[hi], rec[hi + 1]]) as usize;
            counts[d] += 1;
        }
        let mut offsets = vec![0u32; 1 << 16];
        let mut acc = 0u32;
        for (o, c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        for rec in src.chunks_exact(RECORD_LEN) {
            let d = u16::from_be_bytes([rec[hi], rec[hi + 1]]) as usize;
            let at = offsets[d] as usize * RECORD_LEN;
            dst[at..at + RECORD_LEN].copy_from_slice(rec);
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// True if the buffer's records are in non-decreasing key order.
pub fn is_sorted(data: &[u8]) -> bool {
    let mut prev: Option<&[u8]> = None;
    for rec in records(data) {
        let k = key_of(rec);
        if let Some(p) = prev {
            if p > k {
                return false;
            }
        }
        prev = Some(k);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::checksum;
    use crate::teragen::generate;

    #[test]
    fn both_kernels_sort() {
        let data = generate(500, 99);
        for kernel in [SortKernel::Comparison, SortKernel::LsdRadix] {
            let sorted = sort_records(&data, kernel);
            assert!(is_sorted(&sorted), "{kernel:?}");
            assert_eq!(sorted.len(), data.len());
            assert_eq!(checksum(&sorted), checksum(&data), "{kernel:?}");
        }
    }

    #[test]
    fn kernels_agree_exactly() {
        // Radix is stable; comparison is unstable but keys here are unique
        // with overwhelming probability, so outputs match byte-for-byte.
        let data = generate(1000, 123);
        assert_eq!(
            sort_records(&data, SortKernel::Comparison),
            sort_records(&data, SortKernel::LsdRadix)
        );
    }

    #[test]
    fn radix_is_stable_for_equal_keys() {
        // Two records with identical keys, distinguishable values.
        let mut data = vec![0u8; 2 * RECORD_LEN];
        data[10] = b'a'; // first record's value
        data[RECORD_LEN + 10] = b'b';
        let sorted = sort_records(&data, SortKernel::LsdRadix);
        assert_eq!(sorted[10], b'a');
        assert_eq!(sorted[RECORD_LEN + 10], b'b');
    }

    #[test]
    fn empty_and_single() {
        for kernel in [SortKernel::Comparison, SortKernel::LsdRadix] {
            assert!(sort_records(&[], kernel).is_empty());
            let one = generate(1, 5);
            assert_eq!(sort_records(&one, kernel), one.to_vec());
        }
    }

    #[test]
    fn already_sorted_is_fixed_point() {
        let data = generate(200, 44);
        let once = sort_records(&data, SortKernel::Comparison);
        let twice = sort_records(&once, SortKernel::LsdRadix);
        assert_eq!(once, twice);
    }

    #[test]
    fn is_sorted_detects_disorder() {
        let data = generate(50, 7);
        let sorted = sort_records(&data, SortKernel::Comparison);
        assert!(is_sorted(&sorted));
        // Swap two records to break order (keys random → near-surely
        // different).
        let mut broken = sorted.clone();
        let (a, b) = (0, RECORD_LEN * 25);
        for i in 0..RECORD_LEN {
            broken.swap(a + i, b + i);
        }
        assert!(!is_sorted(&broken));
    }
}
