//! # cts-terasort — TeraSort and CodedTeraSort
//!
//! The sorting application of the paper, built on the generic engines of
//! `cts-mapreduce`:
//!
//! * [`record`] — the 100-byte TeraGen record (10-byte key + 90-byte
//!   value, integer key ordering) and the TeraValidate checksum;
//! * [`teragen`] — deterministic input generation, uniform and skewed;
//! * [`partition`] — ordered key-domain partitioning (§III-A2): exact
//!   range splitting plus a sampling-based partitioner for skew;
//! * [`sort`] — Reduce kernels: `std::sort` equivalent and an LSD radix
//!   sort ablation;
//! * [`workload`] — TeraSort as a `cts-mapreduce` workload;
//! * [`driver`] — one-call runs of TeraSort (§III) and CodedTeraSort
//!   (§IV);
//! * [`service`] — the `cts serve` daemon: a multi-tenant sort service
//!   over a resident `cts_mapreduce::JobRuntime`, plus the wire client;
//! * [`validate`](mod@validate) — TeraValidate (order, boundaries, conservation).
//!
//! ```
//! use cts_terasort::driver::{run_coded_terasort, run_terasort, SortJob};
//! use cts_terasort::teragen;
//!
//! let input = teragen::generate(1_000, 42);
//! let plain = run_terasort(input.clone(), &SortJob::local(4, 1)).unwrap();
//! let coded = run_coded_terasort(input, &SortJob::local(4, 2)).unwrap();
//! plain.validate().unwrap();
//! coded.validate().unwrap();
//! assert_eq!(plain.outcome.outputs, coded.outcome.outputs);
//! // Coding cut the shuffled bytes roughly in half (r = 2).
//! assert!(coded.outcome.stats.shuffle_bytes() < plain.outcome.stats.shuffle_bytes());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod partition;
pub mod record;
pub mod service;
pub mod sort;
pub mod teragen;
pub mod validate;
pub mod workload;

pub use driver::{run_coded_terasort, run_terasort, PartitionerKind, SortJob, SortRun};
pub use partition::{KeyPartitioner, RangePartitioner, SampledPartitioner};
pub use record::{KEY_LEN, RECORD_LEN, VALUE_LEN};
pub use service::{JobKind, RemoteStatus, ResultDigest, ServiceClient, SortService};
pub use sort::SortKernel;
pub use validate::{validate, ValidationError};
pub use workload::TeraSortWorkload;
