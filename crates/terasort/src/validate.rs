//! TeraValidate: end-to-end output verification.
//!
//! Hadoop's TeraValidate checks that the sorted output is a permutation of
//! the input in global key order. [`validate`] enforces the same three
//! invariants over per-partition outputs:
//!
//! 1. every partition is internally sorted;
//! 2. partitions are ordered: each partition's first key is `>=` the
//!    previous partition's last key;
//! 3. the record count and the order-independent checksum match the input.

use crate::record::{checksum, key_of, record_count, records};
use crate::sort::is_sorted;

/// A TeraValidate failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Some partition is not internally sorted.
    PartitionUnsorted {
        /// Which partition.
        partition: usize,
    },
    /// Partition boundaries are out of global order.
    BoundaryDisorder {
        /// The partition whose first key is smaller than its predecessor's
        /// last key.
        partition: usize,
    },
    /// Output record count differs from the input's.
    CountMismatch {
        /// Input record count.
        expected: usize,
        /// Output record count.
        actual: usize,
    },
    /// Output checksum differs — records were lost, duplicated, or
    /// corrupted.
    ChecksumMismatch,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::PartitionUnsorted { partition } => {
                write!(f, "partition {partition} is not sorted")
            }
            ValidationError::BoundaryDisorder { partition } => {
                write!(
                    f,
                    "partition {partition} starts before its predecessor ends"
                )
            }
            ValidationError::CountMismatch { expected, actual } => {
                write!(f, "expected {expected} records, found {actual}")
            }
            ValidationError::ChecksumMismatch => write!(f, "record checksum mismatch"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates per-partition sorted outputs against the original input.
pub fn validate(input: &[u8], outputs: &[Vec<u8>]) -> Result<(), ValidationError> {
    // 1. Internal order.
    for (p, out) in outputs.iter().enumerate() {
        if !is_sorted(out) {
            return Err(ValidationError::PartitionUnsorted { partition: p });
        }
    }
    // 2. Boundary order.
    let mut prev_last: Option<Vec<u8>> = None;
    for (p, out) in outputs.iter().enumerate() {
        let mut iter = records(out);
        if let Some(first) = iter.next() {
            if let Some(ref last) = prev_last {
                if key_of(first) < &last[..] {
                    return Err(ValidationError::BoundaryDisorder { partition: p });
                }
            }
            let last = records(out).last().unwrap();
            prev_last = Some(key_of(last).to_vec());
        }
    }
    // 3. Conservation.
    let out_count: usize = outputs.iter().map(|o| record_count(o)).sum();
    let in_count = record_count(input);
    if out_count != in_count {
        return Err(ValidationError::CountMismatch {
            expected: in_count,
            actual: out_count,
        });
    }
    let out_sum = outputs
        .iter()
        .fold(0u64, |acc, o| acc.wrapping_add(checksum(o)));
    if out_sum != checksum(input) {
        return Err(ValidationError::ChecksumMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RECORD_LEN;
    use crate::teragen::generate;
    use crate::workload::TeraSortWorkload;
    use cts_mapreduce::run_sequential;

    #[test]
    fn accepts_correct_output() {
        let data = generate(400, 61);
        let outputs = run_sequential(&TeraSortWorkload::range(4), &data, 4);
        validate(&data, &outputs).unwrap();
    }

    #[test]
    fn rejects_unsorted_partition() {
        let data = generate(100, 62);
        let mut outputs = run_sequential(&TeraSortWorkload::range(2), &data, 2);
        // Reverse one partition's records.
        let p0 = &mut outputs[0];
        let reversed: Vec<u8> = p0
            .chunks_exact(RECORD_LEN)
            .rev()
            .flat_map(|r| r.iter().copied())
            .collect();
        *p0 = reversed;
        assert!(matches!(
            validate(&data, &outputs),
            Err(ValidationError::PartitionUnsorted { partition: 0 })
        ));
    }

    #[test]
    fn rejects_swapped_partitions() {
        let data = generate(200, 63);
        let mut outputs = run_sequential(&TeraSortWorkload::range(2), &data, 2);
        outputs.swap(0, 1);
        assert!(matches!(
            validate(&data, &outputs),
            Err(ValidationError::BoundaryDisorder { .. })
        ));
    }

    #[test]
    fn rejects_lost_records() {
        let data = generate(100, 64);
        let mut outputs = run_sequential(&TeraSortWorkload::range(2), &data, 2);
        let keep = outputs[1].len() - RECORD_LEN;
        outputs[1].truncate(keep);
        assert!(matches!(
            validate(&data, &outputs),
            Err(ValidationError::CountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_corrupted_value() {
        let data = generate(100, 65);
        let mut outputs = run_sequential(&TeraSortWorkload::range(2), &data, 2);
        // Flip a value byte — order still fine, checksum not.
        let len = outputs[0].len();
        outputs[0][len - 1] ^= 0xFF;
        assert_eq!(
            validate(&data, &outputs),
            Err(ValidationError::ChecksumMismatch)
        );
    }

    #[test]
    fn empty_everything_validates() {
        validate(&[], &[Vec::new(), Vec::new()]).unwrap();
    }

    #[test]
    fn display_messages() {
        assert!(ValidationError::PartitionUnsorted { partition: 3 }
            .to_string()
            .contains("partition 3"));
        assert!(ValidationError::CountMismatch {
            expected: 10,
            actual: 9
        }
        .to_string()
        .contains("10"));
    }
}
