//! TeraGen: deterministic input generation.
//!
//! Replaces the Hadoop TeraGen the paper uses (§V-A): 100-byte records
//! with a uniformly random 10-byte key and a 90-byte value carrying the
//! record's sequence number (so every record is distinct and losses are
//! detectable). A skewed generator exercises the sampling partitioner: with
//! uniform range partitioning, skewed keys overload a few reducers.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{KEY_LEN, RECORD_LEN};

/// Generates `count` records with uniformly random keys.
pub fn generate(count: usize, seed: u64) -> Bytes {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; count * RECORD_LEN];
    for (i, rec) in buf.chunks_exact_mut(RECORD_LEN).enumerate() {
        rng.fill_bytes(&mut rec[..KEY_LEN]);
        fill_value(&mut rec[KEY_LEN..], i);
    }
    Bytes::from(buf)
}

/// Generates `count` records whose keys are skewed: a `hot_fraction` of
/// records share the top `hot_prefix_bits` of their key with a single hot
/// prefix, concentrating them in a narrow key range. The rest are uniform.
///
/// # Panics
/// Panics unless `0.0 <= hot_fraction <= 1.0` and `hot_prefix_bits <= 32`.
pub fn generate_skewed(count: usize, seed: u64, hot_fraction: f64, hot_prefix_bits: u32) -> Bytes {
    assert!((0.0..=1.0).contains(&hot_fraction), "bad hot fraction");
    assert!(hot_prefix_bits <= 32, "prefix bits must be <= 32");
    let mut rng = StdRng::seed_from_u64(seed);
    let hot_prefix: u32 = rng.next_u32();
    let mut buf = vec![0u8; count * RECORD_LEN];
    for (i, rec) in buf.chunks_exact_mut(RECORD_LEN).enumerate() {
        rng.fill_bytes(&mut rec[..KEY_LEN]);
        let is_hot = (rng.next_u64() as f64 / u64::MAX as f64) < hot_fraction;
        if is_hot && hot_prefix_bits > 0 {
            // Overwrite the top bits with the hot prefix.
            let mut head = u32::from_be_bytes(rec[..4].try_into().unwrap());
            let mask = if hot_prefix_bits == 32 {
                u32::MAX
            } else {
                !((1u32 << (32 - hot_prefix_bits)) - 1)
            };
            head = (hot_prefix & mask) | (head & !mask);
            rec[..4].copy_from_slice(&head.to_be_bytes());
        }
        fill_value(&mut rec[KEY_LEN..], i);
    }
    Bytes::from(buf)
}

/// The value payload: a readable tag plus the record index, padded with a
/// rotating filler (mirrors TeraGen's rowid + filler layout).
fn fill_value(value: &mut [u8], index: usize) {
    let tag = format!("CTS-{index:016x}-");
    let tag = tag.as_bytes();
    let n = tag.len().min(value.len());
    value[..n].copy_from_slice(&tag[..n]);
    for (j, b) in value.iter_mut().enumerate().skip(n) {
        *b = b'A' + ((index + j) % 26) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{key_of, key_to_u128, records};
    use std::collections::HashSet;

    #[test]
    fn generates_exact_sizes() {
        let data = generate(123, 7);
        assert_eq!(data.len(), 123 * RECORD_LEN);
        assert_eq!(records(&data).count(), 123);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(50, 1), generate(50, 1));
        assert_ne!(generate(50, 1), generate(50, 2));
    }

    #[test]
    fn values_make_records_unique() {
        let data = generate(500, 3);
        let set: HashSet<&[u8]> = records(&data).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn uniform_keys_spread_over_the_domain() {
        let data = generate(4000, 11);
        // Bucket keys by their top byte; a uniform draw puts ~15.6 per
        // bucket. No bucket should be empty or wildly overloaded.
        let mut buckets = [0u32; 256];
        for rec in records(&data) {
            buckets[rec[0] as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 60, "top-byte bucket of {max} is implausibly hot");
    }

    #[test]
    fn skewed_keys_concentrate() {
        let data = generate_skewed(4000, 5, 0.5, 16);
        let mut prefix_counts = std::collections::HashMap::new();
        for rec in records(&data) {
            let p = u16::from_be_bytes(rec[..2].try_into().unwrap());
            *prefix_counts.entry(p).or_insert(0u32) += 1;
        }
        let hottest = *prefix_counts.values().max().unwrap();
        // ~half of all records share one 16-bit prefix.
        assert!(hottest > 1500, "hottest prefix only {hottest}");
    }

    #[test]
    fn skew_zero_is_uniform() {
        let a = generate_skewed(100, 9, 0.0, 16);
        // No concentration: behaves like uniform (can't be identical to
        // `generate` because the RNG stream differs, but keys still spread).
        let mut top = [0u32; 4];
        for rec in records(&a) {
            top[(rec[0] >> 6) as usize] += 1;
        }
        assert!(top.iter().all(|&c| c > 5), "{top:?}");
    }

    #[test]
    fn keys_cover_u128_range_semantics() {
        let data = generate(10, 42);
        for rec in records(&data) {
            let k = key_to_u128(key_of(rec));
            assert!(k < (1u128 << 80));
        }
    }
}
