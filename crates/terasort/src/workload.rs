//! The TeraSort workload plugged into the generic engines.

use cts_core::exec::WorkerPool;
use cts_mapreduce::workload::{InputFormat, Workload};

use crate::partition::{KeyPartitioner, RangePartitioner, SampledPartitioner};
use crate::record::{key_of, record_count, records, RECORD_LEN};
use crate::sort::{sort_records_parallel, SortKernel};

/// TeraSort as a [`Workload`]: Map hashes records into ordered key-range
/// partitions (paper §III-A3); Reduce sorts the partition locally
/// (§III-A5). Intermediates are packed record buffers, so concatenation
/// order is irrelevant to the sorted result.
pub struct TeraSortWorkload {
    partitioner: Partitioner,
    kernel: SortKernel,
}

enum Partitioner {
    Range(RangePartitioner),
    Sampled(SampledPartitioner),
}

impl Partitioner {
    fn partition(&self, key: &[u8]) -> usize {
        match self {
            Partitioner::Range(p) => p.partition(key),
            Partitioner::Sampled(p) => p.partition(key),
        }
    }
}

impl TeraSortWorkload {
    /// Uniform range partitioning over `k` partitions with the paper's
    /// `std::sort` kernel.
    pub fn range(k: usize) -> Self {
        TeraSortWorkload {
            partitioner: Partitioner::Range(RangePartitioner::new(k)),
            kernel: SortKernel::Comparison,
        }
    }

    /// Sampling-based partitioning (for skewed inputs).
    pub fn sampled(partitioner: SampledPartitioner) -> Self {
        TeraSortWorkload {
            partitioner: Partitioner::Sampled(partitioner),
            kernel: SortKernel::Comparison,
        }
    }

    /// Selects the Reduce sort kernel.
    pub fn with_kernel(mut self, kernel: SortKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl Workload for TeraSortWorkload {
    fn name(&self) -> &str {
        "terasort"
    }

    fn format(&self) -> InputFormat {
        InputFormat::FixedWidth(RECORD_LEN)
    }

    fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); num_partitions];
        for rec in records(file) {
            let p = self.partitioner.partition(key_of(rec));
            debug_assert!(p < num_partitions, "partitioner out of range");
            out[p].extend_from_slice(rec);
        }
        out
    }

    fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
        sort_records_parallel(data, self.kernel, &WorkerPool::serial())
    }

    fn map_file_par(&self, file: &[u8], num_partitions: usize, pool: &WorkerPool) -> Vec<Vec<u8>> {
        let ranges = pool.chunk_ranges(record_count(file), crate::sort::PAR_MIN_RECORDS_PER_CHUNK);
        if ranges.len() <= 1 {
            return self.map_file(file, num_partitions);
        }
        // Hash contiguous record chunks independently, then concatenate
        // each partition's pieces in chunk order — identical bytes to the
        // serial scan for any thread count.
        let parts: Vec<Vec<Vec<u8>>> = pool.map(ranges.len(), |c| {
            let r = &ranges[c];
            self.map_file(
                &file[r.start * RECORD_LEN..r.end * RECORD_LEN],
                num_partitions,
            )
        });
        let mut out: Vec<Vec<u8>> = (0..num_partitions)
            .map(|p| {
                let total: usize = parts.iter().map(|chunk| chunk[p].len()).sum();
                Vec::with_capacity(total)
            })
            .collect();
        for chunk in &parts {
            for (p, piece) in chunk.iter().enumerate() {
                out[p].extend_from_slice(piece);
            }
        }
        out
    }

    fn reduce_par(&self, _partition: usize, data: &[u8], pool: &WorkerPool) -> Vec<u8> {
        sort_records_parallel(data, self.kernel, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::KEY_LEN;
    use crate::sort::is_sorted;
    use crate::teragen::{generate, generate_skewed};
    use cts_mapreduce::run_sequential;

    #[test]
    fn map_partitions_by_key_range() {
        let w = TeraSortWorkload::range(4);
        let data = generate(400, 8);
        let parts = w.map_file(&data, 4);
        // Each partition's keys stay inside its range.
        for (p, buf) in parts.iter().enumerate() {
            for rec in records(buf) {
                assert_eq!(RangePartitioner::new(4).partition(key_of(rec)), p);
            }
        }
        let total: usize = parts.iter().map(|b| b.len()).sum();
        assert_eq!(total, data.len());
    }

    #[test]
    fn sequential_end_to_end_sorts() {
        let w = TeraSortWorkload::range(3);
        let data = generate(300, 21);
        let outputs = run_sequential(&w, &data, 3);
        for out in &outputs {
            assert!(is_sorted(out));
        }
        // Concatenated partitions form the globally sorted list (ordered
        // partitions property).
        let all: Vec<u8> = outputs.into_iter().flatten().collect();
        assert!(is_sorted(&all));
    }

    #[test]
    fn radix_kernel_matches_comparison() {
        let data = generate(500, 33);
        let a = run_sequential(&TeraSortWorkload::range(4), &data, 4);
        let b = run_sequential(
            &TeraSortWorkload::range(4).with_kernel(SortKernel::LsdRadix),
            &data,
            4,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_and_reduce_match_serial() {
        let data = generate(9_000, 77);
        let w = TeraSortWorkload::range(5);
        let serial_map = w.map_file(&data, 5);
        let serial_reduce: Vec<Vec<u8>> = (0..5).map(|p| w.reduce(p, &serial_map[p])).collect();
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            assert_eq!(w.map_file_par(&data, 5, &pool), serial_map, "{threads}");
            for p in 0..5 {
                assert_eq!(
                    w.reduce_par(p, &serial_map[p], &pool),
                    serial_reduce[p],
                    "partition {p} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn sampled_partitioner_balances_skew_end_to_end() {
        let k = 4;
        let data = generate_skewed(4000, 55, 0.6, 16);
        let samples: Vec<[u8; KEY_LEN]> = records(&data)
            .step_by(16)
            .map(|r| key_of(r).try_into().unwrap())
            .collect();
        let w = TeraSortWorkload::sampled(SampledPartitioner::from_samples(samples, k));
        let outputs = run_sequential(&w, &data, k);
        let max = outputs.iter().map(|o| o.len()).max().unwrap();
        let total: usize = outputs.iter().map(|o| o.len()).sum();
        assert_eq!(total, data.len());
        assert!(max < total / 2, "partitions still skewed");
        let all: Vec<u8> = outputs.into_iter().flatten().collect();
        assert!(is_sorted(&all));
    }
}
