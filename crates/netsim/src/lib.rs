//! # cts-netsim — the EC2 stand-in: calibrated performance modeling
//!
//! The paper's evaluation ran on Amazon EC2: K m3.large workers behind
//! 100 Mbps `tc`-shaped NICs, shuffling 12 GB. This crate replaces that
//! testbed with a deterministic model, fed by *real measured work*:
//! the engines in `cts-mapreduce` execute the actual algorithms on (scaled)
//! real data, record every transfer in a `cts-net` [`Trace`], and report
//! per-node work counts in [`stats::RunStats`]; this crate replays those
//! measurements under one global calibration
//! ([`config::PerfModelConfig::ec2_paper`], fitted once against Table I and
//! validated against all of Tables II–III) to produce the paper's stage
//! breakdowns.
//!
//! * [`config`] — the calibrated parameters and their provenance;
//! * [`stats`] — per-node work counts with linear size scaling;
//! * [`serial`] — the paper's serial unicast/multicast schedule (Fig. 9)
//!   plus the `MPI_Bcast` tree-cost ablation;
//! * [`fluid`] — a max-min-fair discrete-event simulator for the §VI
//!   *asynchronous execution* future-work extension;
//! * [`straggler`] — makespan brackets for one slow/dead sender under
//!   barrier-on-all vs MDS quorum decode;
//! * [`recovery`] — makespan brackets for a rank death: detection
//!   latency plus speculative re-execution vs the fail-fast path;
//! * [`model`] — run statistics + trace → [`breakdown::StageBreakdown`];
//! * [`breakdown`] — stage breakdowns and paper-style table rendering;
//! * [`timeline`] — ASCII Fig. 9 schedules.
//!
//! [`Trace`]: cts_net::trace::Trace

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod config;
pub mod fluid;
pub mod model;
pub mod recovery;
pub mod serial;
pub mod stats;
pub mod straggler;
pub mod timeline;

pub use breakdown::{render_table, StageBreakdown, TableRow};
pub use config::{ComputeModelConfig, NetModelConfig, PerfModelConfig};
pub use fluid::{fabric_queues, predict_fabric_shuffle_s, simulate_parallel, FluidOutcome};
pub use model::{PerfModel, SHUFFLE_STAGE};
pub use recovery::RecoveryModel;
pub use serial::{
    serial_fabric_makespan, serial_makespan, serial_schedule, transfers_by_sender, Schedule,
};
pub use stats::{NodeStats, RunStats};
pub use straggler::{Bracket, Slowdown, StragglerModel};
