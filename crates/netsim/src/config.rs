//! Model parameters and the EC2 calibration.
//!
//! The paper's testbed — K m3.large workers, 100 Mbps `tc`-shaped NICs,
//! Open MPI, 12 GB of TeraGen data — is not available, so stage times are
//! produced by replaying *measured byte counts* through a linear performance
//! model. The model has one global calibration, fitted once against Table I
//! and checked against every row of Tables II–III (see EXPERIMENTS.md):
//!
//! | parameter | value | fitted from |
//! |---|---|---|
//! | link rate | 100 Mbps | §V-B setup |
//! | TCP efficiency | 0.95 | Table I shuffle: 11.25 GB / 945.72 s |
//! | multicast penalty α | 0.30 | §V-C "increases logarithmically with r"; Table II shuffle gains 2.3 < 3, 4.2 < 5 |
//! | per-transfer latency | 0.1 ms | Table II/III packet-count sensitivity |
//! | per-group CodeGen cost | 3.3 ms | Tables II–III CodeGen ÷ C(K, r+1) ∈ [2.9, 4.0] ms |
//! | Map hash rate | 403 MB/s | Table I: 750 MB / 1.86 s |
//! | per-file Map overhead | 0.5 ms | Map ratios 3.2 (r=3), 5.8 (r=5) |
//! | Pack/Encode rate | 320 MB/s | Table I Pack 2.35 s; Encode rows fit 313–347 MB/s |
//! | Unpack rate | 825 MB/s | Table I Unpack 0.85 s |
//! | Decode rate | 700 MB/s on r×received payload | Decode rows fit 608–818 MB/s |
//! | Reduce sort rate | 72 MB/s | Table I Reduce 10.47 s |
//! | memory-pressure penalty | 9 %/unit of (r−1) on Reduce | §V-C Reduce observation |

use serde::{Deserialize, Serialize};

/// Network-side model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetModelConfig {
    /// Link rate in **bits** per second (the paper's `tc` cap: 100 Mbps).
    pub bandwidth_bits_per_sec: f64,
    /// Fraction of the link rate usable by TCP payload (headers, ACK
    /// pacing, slow-start remnants).
    pub tcp_efficiency: f64,
    /// Fixed cost per transfer (connection/MPI envelope overhead), seconds.
    pub per_transfer_latency_s: f64,
    /// Multicast penalty coefficient `α`: multicasting to `m` receivers
    /// takes `1 + α·log2(m)` times the unicast time for the same bytes —
    /// the paper's observation that `MPI_Bcast` "increases logarithmically
    /// with r" (§V-C, citing its reference \[11\]).
    pub multicast_alpha: f64,
    /// Per-multicast-group setup cost, seconds (`MPI_Comm_split` + tree
    /// construction); drives the CodeGen stage: `C(K, r+1)` groups.
    pub group_setup_s: f64,
}

impl NetModelConfig {
    /// The EC2 calibration (see module docs).
    pub fn ec2_100mbps() -> Self {
        NetModelConfig {
            bandwidth_bits_per_sec: 100e6,
            tcp_efficiency: 0.95,
            per_transfer_latency_s: 1e-4,
            multicast_alpha: 0.30,
            group_setup_s: 3.3e-3,
        }
    }

    /// Effective payload bytes per second.
    pub fn effective_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bits_per_sec / 8.0 * self.tcp_efficiency
    }

    /// The multicast slowdown factor for `fanout` receivers.
    pub fn multicast_penalty(&self, fanout: u32) -> f64 {
        if fanout <= 1 {
            1.0
        } else {
            1.0 + self.multicast_alpha * (fanout as f64).log2()
        }
    }

    /// Time to push `bytes` to `fanout` receivers, excluding latency.
    pub fn transfer_seconds(&self, bytes: f64, fanout: u32) -> f64 {
        bytes * self.multicast_penalty(fanout) / self.effective_bytes_per_sec()
    }
}

/// Compute-side model parameters (per-node rates on m3.large).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComputeModelConfig {
    /// Map hashing throughput, bytes/second.
    pub hash_bytes_per_sec: f64,
    /// Fixed overhead per input file handled in the Map stage, seconds.
    pub per_file_overhead_s: f64,
    /// Serialization (Pack / the serialization part of Encode) throughput.
    pub pack_bytes_per_sec: f64,
    /// Deserialization (Unpack) throughput.
    pub unpack_bytes_per_sec: f64,
    /// Decode throughput applied to the decode *work* bytes (`r ×` the
    /// received payload: each packet is XORed against `r−1` known segments
    /// and merged).
    pub decode_bytes_per_sec: f64,
    /// Local sort throughput (std::sort over 100-byte records incl. the
    /// final write-out).
    pub sort_bytes_per_sec: f64,
    /// Memory-pressure penalty per unit of extra redundancy: Reduce and
    /// Decode are slowed by `1 + penalty·(r−1)` (the paper's §V-C
    /// observation that coded runs persist more intermediates in memory).
    pub memory_pressure_per_r: f64,
}

impl ComputeModelConfig {
    /// The EC2 m3.large calibration (see module docs).
    pub fn ec2_m3_large() -> Self {
        ComputeModelConfig {
            hash_bytes_per_sec: 403e6,
            per_file_overhead_s: 5e-4,
            pack_bytes_per_sec: 320e6,
            unpack_bytes_per_sec: 825e6,
            decode_bytes_per_sec: 700e6,
            sort_bytes_per_sec: 72e6,
            memory_pressure_per_r: 0.09,
        }
    }

    /// The memory-pressure slowdown factor at redundancy `r`.
    pub fn memory_factor(&self, r: usize) -> f64 {
        1.0 + self.memory_pressure_per_r * (r.saturating_sub(1)) as f64
    }
}

/// Complete model: network + compute.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfModelConfig {
    /// Network parameters.
    pub net: NetModelConfig,
    /// Compute parameters.
    pub compute: ComputeModelConfig,
}

impl PerfModelConfig {
    /// The full paper calibration: EC2 m3.large nodes on a 100 Mbps fabric.
    pub fn ec2_paper() -> Self {
        PerfModelConfig {
            net: NetModelConfig::ec2_100mbps(),
            compute: ComputeModelConfig::ec2_m3_large(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidth_matches_table1() {
        let net = NetModelConfig::ec2_100mbps();
        // 11.25 GB at effective rate ≈ 947 s — the paper measured 945.72 s.
        let t = 11.25e9 / net.effective_bytes_per_sec();
        assert!((t - 947.4).abs() < 1.0, "t = {t}");
    }

    #[test]
    fn multicast_penalty_is_logarithmic() {
        let net = NetModelConfig::ec2_100mbps();
        assert_eq!(net.multicast_penalty(1), 1.0);
        let p3 = net.multicast_penalty(3);
        let p5 = net.multicast_penalty(5);
        assert!(p3 > 1.0 && p5 > p3);
        assert!((p3 - (1.0 + 0.30 * 3f64.log2())).abs() < 1e-12);
    }

    #[test]
    fn transfer_seconds_scales_linearly() {
        let net = NetModelConfig::ec2_100mbps();
        let one = net.transfer_seconds(1e6, 1);
        assert!((net.transfer_seconds(2e6, 1) - 2.0 * one).abs() < 1e-9);
        assert!(net.transfer_seconds(1e6, 4) > one);
    }

    #[test]
    fn memory_factor_grows_with_r() {
        let c = ComputeModelConfig::ec2_m3_large();
        assert_eq!(c.memory_factor(1), 1.0);
        assert!((c.memory_factor(3) - 1.18).abs() < 1e-12);
        assert!(c.memory_factor(5) > c.memory_factor(3));
    }

    #[test]
    fn config_serializes() {
        let cfg = PerfModelConfig::ec2_paper();
        // serde round-trip through the derive (used by the bench harness to
        // dump the calibration next to results).
        let as_debug = format!("{cfg:?}");
        assert!(as_debug.contains("bandwidth_bits_per_sec"));
    }
}
