//! ASCII rendering of shuffle schedules — the Fig. 9 reproduction.
//!
//! The paper's Fig. 9 contrasts the serial-unicast schedule of TeraSort
//! with the serial-multicast schedule of CodedTeraSort as timelines of
//! arrows between nodes. [`render_listing`] prints the same information as
//! an event list; [`render_gantt`] draws per-node sender lanes.

use crate::serial::Schedule;

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

fn fmt_dsts(mask: u128) -> String {
    let members: Vec<String> = (0..128)
        .filter(|i| mask >> i & 1 == 1)
        .map(|i| i.to_string())
        .collect();
    if members.len() == 1 {
        format!("node {}", members[0])
    } else {
        format!("{{{}}}", members.join(","))
    }
}

/// Event-list rendering: one line per transfer, truncated to `max_rows`
/// (with an ellipsis line when truncated).
pub fn render_listing(schedule: &Schedule, max_rows: usize) -> String {
    let mut out = String::new();
    for (i, t) in schedule.transfers.iter().enumerate() {
        if i >= max_rows {
            out.push_str(&format!(
                "  … {} more transfers …\n",
                schedule.transfers.len() - max_rows
            ));
            break;
        }
        out.push_str(&format!(
            "  [{:>9.3}s – {:>9.3}s] node {} → {:<12} {:>10}\n",
            t.start_s,
            t.end_s,
            t.src,
            fmt_dsts(t.dsts),
            fmt_bytes(t.bytes),
        ));
    }
    out.push_str(&format!(
        "  makespan: {:.3}s over {} transfers, {}\n",
        schedule.makespan_s(),
        schedule.transfers.len(),
        fmt_bytes(schedule.total_bytes()),
    ));
    out
}

/// Gantt rendering: one lane per sender, `width` character columns across
/// the makespan; `█` marks intervals where that node is transmitting.
///
/// For the paper's serial schedules the lanes tile perfectly — node 0's
/// block ends where node 1's begins (Fig. 9) — while the parallel ablation
/// shows overlapping lanes.
pub fn render_gantt(schedule: &Schedule, width: usize) -> String {
    let makespan = schedule.makespan_s();
    if makespan <= 0.0 || schedule.transfers.is_empty() {
        return String::from("  (empty schedule)\n");
    }
    let max_node = schedule.transfers.iter().map(|t| t.src).max().unwrap() as usize;
    let mut lanes = vec![vec![' '; width]; max_node + 1];
    for t in &schedule.transfers {
        let a = ((t.start_s / makespan) * width as f64).floor() as usize;
        let b = ((t.end_s / makespan) * width as f64).ceil() as usize;
        for cell in lanes[t.src as usize]
            .iter_mut()
            .take(b.min(width))
            .skip(a.min(width.saturating_sub(1)))
        {
            *cell = '█';
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "  time →  0s {:>width$.3}s\n",
        makespan,
        width = width.saturating_sub(3)
    ));
    for (node, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "  node {node:>2} |{}|\n",
            lane.iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::ScheduledTransfer;

    fn serial_4node() -> Schedule {
        // Four nodes transmit back-to-back for 1 s each.
        Schedule {
            transfers: (0..4)
                .map(|i| ScheduledTransfer {
                    start_s: i as f64,
                    end_s: i as f64 + 1.0,
                    src: i as u16,
                    dsts: 0b1111 & !(1 << i),
                    bytes: 1e6,
                })
                .collect(),
        }
    }

    #[test]
    fn listing_shows_transfers_and_makespan() {
        let s = serial_4node();
        let text = render_listing(&s, 10);
        assert!(text.contains("node 0"));
        assert!(text.contains("makespan: 4.000s"));
        assert!(text.contains("4 transfers"));
    }

    #[test]
    fn listing_truncates() {
        let s = serial_4node();
        let text = render_listing(&s, 2);
        assert!(text.contains("2 more transfers"));
    }

    #[test]
    fn listing_renders_ranks_above_64() {
        // K > 64 worlds use the high half of the u128 receiver mask.
        let s = Schedule {
            transfers: vec![
                ScheduledTransfer {
                    start_s: 0.0,
                    end_s: 1.0,
                    src: 3,
                    dsts: 1u128 << 100,
                    bytes: 1e6,
                },
                ScheduledTransfer {
                    start_s: 1.0,
                    end_s: 2.0,
                    src: 70,
                    dsts: (1u128 << 65) | (1u128 << 127),
                    bytes: 1e6,
                },
            ],
        };
        let text = render_listing(&s, 10);
        assert!(text.contains("node 100"), "{text}");
        assert!(text.contains("{65,127}"), "{text}");
    }

    #[test]
    fn gantt_lanes_tile_for_serial() {
        let s = serial_4node();
        let g = render_gantt(&s, 40);
        // Every lane has some blocks; lane 0 starts at the left, lane 3
        // ends at the right.
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 lanes
        assert!(lines[1].contains('█'));
        let lane0 = lines[1].split('|').nth(1).unwrap();
        let lane3 = lines[4].split('|').nth(1).unwrap();
        assert_eq!(lane0.chars().next().unwrap(), '█');
        assert_eq!(lane3.chars().last().unwrap(), '█');
    }

    #[test]
    fn empty_schedule_renders_gracefully() {
        let s = Schedule::default();
        assert!(render_gantt(&s, 20).contains("empty"));
        assert!(render_listing(&s, 5).contains("0 transfers"));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(500.0), "500 B");
        assert_eq!(fmt_bytes(1500.0), "1.50 KB");
        assert_eq!(fmt_bytes(46_875_000.0), "46.88 MB");
        assert_eq!(fmt_bytes(3.25e9), "3.25 GB");
    }

    #[test]
    fn dsts_formatting() {
        assert_eq!(fmt_dsts(0b100), "node 2");
        assert_eq!(fmt_dsts(0b1110), "{1,2,3}");
    }
}
