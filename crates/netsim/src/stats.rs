//! Per-run workload statistics.
//!
//! The engines in `cts-mapreduce` run the real algorithms on (scaled) real
//! data and report exact work counts per node. Together with the transfer
//! trace from `cts-net`, these statistics are everything the performance
//! model needs; multiplying byte quantities by [`RunStats::scale`] projects
//! a scaled run onto the paper's full 12 GB — valid because every pipeline
//! stage is linear in bytes while counts (files, groups, transfers) are
//! pure topology.

use serde::{Deserialize, Serialize};

/// Work performed by one node during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Bytes hashed in the Map stage (`r×` the node's input share when
    /// coded).
    pub map_input_bytes: u64,
    /// Input files processed in the Map stage.
    pub files_mapped: u64,
    /// Bytes serialized in Pack (uncoded: outgoing intermediates) or
    /// Encode (coded: all kept intermediates, which are split/XORed).
    pub pack_bytes: u64,
    /// Application bytes this node sent during Shuffle (multicast packets
    /// counted once).
    pub sent_bytes: u64,
    /// Application bytes this node received during Shuffle (each multicast
    /// heard counts its full length).
    pub recv_bytes: u64,
    /// Bytes deserialized in Unpack (uncoded runs).
    pub unpack_bytes: u64,
    /// Decode work in bytes: `r ×` received coded bytes (XOR cancellations
    /// plus merge).
    pub decode_work_bytes: u64,
    /// Bytes sorted in the Reduce stage (the node's key partition).
    pub reduce_input_bytes: u64,
}

/// Statistics for a whole run, plus the scale factor to the target size.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of worker nodes `K`.
    pub k: usize,
    /// Redundancy `r` (1 for conventional TeraSort).
    pub r: usize,
    /// Number of multicast groups initialized in CodeGen
    /// (`C(K, r+1)` for coded runs, 0 for uncoded).
    pub num_groups: u64,
    /// Per-node work counts, rank order.
    pub per_node: Vec<NodeStats>,
    /// Multiplier projecting this run's byte counts onto the target input
    /// size (e.g. 100 when 120 MB of real data stands in for 12 GB).
    pub scale: f64,
}

impl RunStats {
    /// Creates empty stats for `k` nodes at redundancy `r`.
    pub fn new(k: usize, r: usize) -> Self {
        RunStats {
            k,
            r,
            num_groups: 0,
            per_node: vec![NodeStats::default(); k],
            scale: 1.0,
        }
    }

    /// Sum of a per-node quantity.
    pub fn total<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.per_node.iter().map(f).sum()
    }

    /// Maximum of a per-node quantity.
    pub fn max<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.per_node.iter().map(f).max().unwrap_or(0)
    }

    /// Total application bytes shuffled (multicasts counted once),
    /// unscaled.
    pub fn shuffle_bytes(&self) -> u64 {
        self.total(|n| n.sent_bytes)
    }

    /// The empirical communication load: shuffled bytes over total mapped
    /// *input* bytes at `r = 1` equivalents (i.e. over `D`, the input
    /// size). Matches the paper's normalization by `Q·N` because every
    /// input byte produces one intermediate byte in TeraSort-style maps.
    pub fn comm_load(&self, input_bytes: u64) -> f64 {
        if input_bytes == 0 {
            0.0
        } else {
            self.shuffle_bytes() as f64 / input_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        let mut s = RunStats::new(3, 2);
        for (i, n) in s.per_node.iter_mut().enumerate() {
            n.map_input_bytes = 100 * (i as u64 + 1);
            n.sent_bytes = 10 * (i as u64 + 1);
            n.recv_bytes = 20;
        }
        s
    }

    #[test]
    fn totals_and_maxima() {
        let s = sample();
        assert_eq!(s.total(|n| n.map_input_bytes), 600);
        assert_eq!(s.max(|n| n.map_input_bytes), 300);
        assert_eq!(s.shuffle_bytes(), 60);
    }

    #[test]
    fn comm_load_normalizes_by_input() {
        let s = sample();
        assert!((s.comm_load(600) - 0.1).abs() < 1e-12);
        assert_eq!(s.comm_load(0), 0.0);
    }

    #[test]
    fn new_is_zeroed() {
        let s = RunStats::new(4, 3);
        assert_eq!(s.per_node.len(), 4);
        assert_eq!(s.shuffle_bytes(), 0);
        assert_eq!(s.scale, 1.0);
    }
}
