//! Parallel-shuffle discrete-event simulator (the paper's §VI
//! *Asynchronous Execution* future direction).
//!
//! The paper shuffles serially — one sender at a time — and asks what
//! parallel communication would change. This module answers with a fluid
//! flow model: every node pushes its transfer queue concurrently (one
//! outstanding transfer per node, in order), each node's NIC has finite
//! egress and ingress capacity, and concurrent flows share links
//! **max-min fairly** (progressive filling). A discrete-event loop advances
//! between flow completions.
//!
//! A notable consequence the ablation bench surfaces: under full
//! parallelism the *receiver* side becomes the bottleneck of the coded
//! scheme (every multicast packet is heard by `r` nodes), so the coded
//! advantage shrinks from `r×` to roughly `(1−1/K)/(1−r/K)⁻¹` — evidence
//! for why the serial schedule is where coding shines, and why the paper
//! flags the asynchronous setting as open.

use cts_net::trace::TraceEvent;
use serde::{Deserialize, Serialize};

use crate::config::NetModelConfig;

/// One flow scheduled by the fluid simulator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FluidFlow {
    /// Sender rank.
    pub src: u16,
    /// Receiver bitmask.
    pub dsts: u64,
    /// Payload bytes (after scaling; before multicast inflation).
    pub bytes: f64,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual completion time.
    pub end_s: f64,
}

/// Result of a fluid simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FluidOutcome {
    /// All flows with their simulated start/end times.
    pub flows: Vec<FluidFlow>,
    /// Stage completion time.
    pub makespan_s: f64,
}

struct ActiveFlow {
    queue_idx: usize, // index into the per-sender queue (for bookkeeping)
    src: usize,
    dsts: Vec<usize>,
    remaining: f64, // bytes left (inflated by multicast penalty)
    latency_left: f64,
    start_s: f64,
    original_bytes: f64,
    dst_mask: u64,
}

/// Simulates the parallel shuffle of `by_sender` transfer queues (as
/// produced by [`transfers_by_sender`](crate::serial::transfers_by_sender)).
///
/// Each sender executes its queue in order with one outstanding transfer;
/// all senders run concurrently. A transfer first pays the per-transfer
/// latency (consuming no bandwidth), then streams `bytes × multicast
/// penalty` through the sender's egress and every receiver's ingress, at
/// the max-min fair rate.
pub fn simulate_parallel(by_sender: &[Vec<TraceEvent>], net: &NetModelConfig) -> FluidOutcome {
    let nodes = by_sender.len().max(
        by_sender
            .iter()
            .flatten()
            .flat_map(|e| mask_to_vec(e.dsts))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0),
    );
    let cap = net.effective_bytes_per_sec();
    let mut next_idx = vec![0usize; by_sender.len()];
    let mut active: Vec<ActiveFlow> = Vec::new();
    let mut finished: Vec<FluidFlow> = Vec::new();
    let mut clock = 0.0f64;

    let start_next =
        |sender: usize, next_idx: &mut Vec<usize>, active: &mut Vec<ActiveFlow>, clock: f64| {
            if let Some(ev) = by_sender[sender].get(next_idx[sender]) {
                let dsts = mask_to_vec(ev.dsts);
                let inflation = net.multicast_penalty(dsts.len() as u32);
                active.push(ActiveFlow {
                    queue_idx: next_idx[sender],
                    src: sender,
                    remaining: ev.bytes as f64 * inflation,
                    latency_left: net.per_transfer_latency_s,
                    start_s: clock,
                    original_bytes: ev.bytes as f64,
                    dst_mask: ev.dsts,
                    dsts,
                });
                next_idx[sender] += 1;
            }
        };

    for sender in 0..by_sender.len() {
        start_next(sender, &mut next_idx, &mut active, clock);
    }

    while !active.is_empty() {
        // Flows past their latency phase compete for bandwidth.
        let streaming: Vec<usize> = (0..active.len())
            .filter(|&i| active[i].latency_left <= 0.0)
            .collect();
        let rates = maxmin_rates(&active, &streaming, nodes, cap);

        // Time to the next event: a latency expiry or a flow completion.
        let mut dt = f64::INFINITY;
        for (i, f) in active.iter().enumerate() {
            if f.latency_left > 0.0 {
                dt = dt.min(f.latency_left);
            } else if rates[i] > 0.0 {
                dt = dt.min(f.remaining / rates[i]);
            }
        }
        debug_assert!(dt.is_finite(), "fluid simulation stalled");
        clock += dt;

        // Advance and collect completions.
        let mut completed: Vec<usize> = Vec::new();
        for (i, f) in active.iter_mut().enumerate() {
            if f.latency_left > 0.0 {
                f.latency_left -= dt;
            } else {
                f.remaining -= rates[i] * dt;
                if f.remaining <= 1e-9 {
                    completed.push(i);
                }
            }
        }
        // Remove completed (descending index), record, and refill senders.
        completed.sort_unstable_by(|a, b| b.cmp(a));
        for i in completed {
            let f = active.swap_remove(i);
            finished.push(FluidFlow {
                src: f.src as u16,
                dsts: f.dst_mask,
                bytes: f.original_bytes,
                start_s: f.start_s,
                end_s: clock,
            });
            let _ = f.queue_idx;
            start_next(f.src, &mut next_idx, &mut active, clock);
        }
    }

    finished.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
    FluidOutcome {
        makespan_s: clock,
        flows: finished,
    }
}

fn mask_to_vec(mask: u64) -> Vec<usize> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        out.push(m.trailing_zeros() as usize);
        m &= m - 1;
    }
    out
}

/// Max-min fair rates via progressive filling over per-node egress and
/// ingress links of capacity `cap`. Only `streaming` flows (past latency)
/// get bandwidth; others get 0.
fn maxmin_rates(active: &[ActiveFlow], streaming: &[usize], nodes: usize, cap: f64) -> Vec<f64> {
    // Link ids: 0..nodes = egress, nodes..2*nodes = ingress.
    let num_links = 2 * nodes;
    let mut link_cap = vec![cap; num_links];
    let mut rates = vec![0.0f64; active.len()];
    let mut frozen: Vec<bool> = (0..active.len()).map(|i| !streaming.contains(&i)).collect();

    let links_of = |f: &ActiveFlow| -> Vec<usize> {
        let mut l = vec![f.src];
        l.extend(f.dsts.iter().map(|&d| nodes + d));
        l
    };

    loop {
        // Flows still rising per link.
        let mut counts = vec![0usize; num_links];
        let mut any = false;
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any = true;
            for l in links_of(f) {
                counts[l] += 1;
            }
        }
        if !any {
            break;
        }
        // The binding link determines the uniform increment.
        let mut delta = f64::INFINITY;
        for l in 0..num_links {
            if counts[l] > 0 {
                delta = delta.min(link_cap[l] / counts[l] as f64);
            }
        }
        if !delta.is_finite() || delta <= 0.0 {
            break;
        }
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rates[i] += delta;
            for l in links_of(f) {
                link_cap[l] -= delta;
            }
        }
        // Freeze flows on saturated links.
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if links_of(f).iter().any(|&l| link_cap[l] <= 1e-9) {
                frozen[i] = true;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_net::trace::{EventKind, TraceEvent};

    fn net_10mbs() -> NetModelConfig {
        NetModelConfig {
            bandwidth_bits_per_sec: 80e6, // 10 MB/s at eff 1
            tcp_efficiency: 1.0,
            per_transfer_latency_s: 0.0,
            multicast_alpha: 0.0,
            group_setup_s: 0.0,
        }
    }

    fn ev(src: usize, dsts: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            stage: 0,
            src: src as u16,
            dsts,
            bytes,
            overhead: 0,
            kind: EventKind::AppUnicast,
        }
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let out = simulate_parallel(&[vec![ev(0, 0b10, 10_000_000)]], &net_10mbs());
        assert!((out.makespan_s - 1.0).abs() < 1e-6, "{}", out.makespan_s);
        assert_eq!(out.flows.len(), 1);
    }

    #[test]
    fn disjoint_flows_run_concurrently() {
        // 0→1 and 2→3 share no links: both finish at t = 1.
        let out = simulate_parallel(
            &[
                vec![ev(0, 0b0010, 10_000_000)],
                vec![],
                vec![ev(2, 0b1000, 10_000_000)],
            ],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 1.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn ingress_contention_halves_rates() {
        // 0→2 and 1→2 share node 2's ingress: each gets 5 MB/s → 2 s.
        let out = simulate_parallel(
            &[
                vec![ev(0, 0b100, 10_000_000)],
                vec![ev(1, 0b100, 10_000_000)],
            ],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn sender_queue_is_sequential() {
        // One sender, two back-to-back unicasts to different receivers.
        let out = simulate_parallel(
            &[vec![ev(0, 0b010, 10_000_000), ev(0, 0b100, 10_000_000)]],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
        assert!(out.flows[0].end_s <= out.flows[1].start_s + 1e-9);
    }

    #[test]
    fn parallel_all_to_all_beats_serial() {
        // 4 nodes, all-to-all 10 MB each with the classic staggered order
        // (step i: s → (s+i) mod K, all links disjoint per step):
        // serial = 12 s; parallel = 3 s.
        let by_sender: Vec<Vec<TraceEvent>> = (0..4usize)
            .map(|s| {
                (1..4usize)
                    .map(|i| ev(s, 1 << ((s + i) % 4), 10_000_000))
                    .collect()
            })
            .collect();
        let out = simulate_parallel(&by_sender, &net_10mbs());
        assert!((out.makespan_s - 3.0).abs() < 0.01, "{}", out.makespan_s);
    }

    #[test]
    fn naive_ordering_creates_ingress_hotspots() {
        // If every sender targets node 0 first, node 0's ingress serializes
        // the first phase: the makespan doubles vs. the staggered order.
        let by_sender: Vec<Vec<TraceEvent>> = (0..4usize)
            .map(|s| {
                (0..4usize)
                    .filter(|&d| d != s)
                    .map(|d| ev(s, 1 << d, 10_000_000))
                    .collect()
            })
            .collect();
        let out = simulate_parallel(&by_sender, &net_10mbs());
        assert!(out.makespan_s > 4.5, "{}", out.makespan_s);
    }

    #[test]
    fn multicast_loads_every_receiver_ingress() {
        // Two senders multicast 10 MB to the same two receivers.
        // Each receiver ingress carries 20 MB at 10 MB/s → 2 s.
        let out = simulate_parallel(
            &[
                vec![ev(0, 0b1100, 10_000_000)],
                vec![ev(1, 0b1100, 10_000_000)],
            ],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn latency_delays_streaming() {
        let net = NetModelConfig {
            per_transfer_latency_s: 0.5,
            ..net_10mbs()
        };
        let out = simulate_parallel(&[vec![ev(0, 0b10, 10_000_000)]], &net);
        assert!((out.makespan_s - 1.5).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn multicast_penalty_inflates_bytes() {
        let net = NetModelConfig {
            multicast_alpha: 1.0,
            ..net_10mbs()
        };
        // Fanout 2 → inflation 1 + log2(2) = 2 → 2 s for 10 MB.
        let out = simulate_parallel(&[vec![ev(0, 0b110, 10_000_000)]], &net);
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn empty_input_is_zero() {
        let out = simulate_parallel(&[vec![], vec![]], &net_10mbs());
        assert_eq!(out.makespan_s, 0.0);
        assert!(out.flows.is_empty());
    }
}
