//! Parallel-shuffle discrete-event simulator (the paper's §VI
//! *Asynchronous Execution* future direction).
//!
//! The paper shuffles serially — one sender at a time — and asks what
//! parallel communication would change. This module answers with a fluid
//! flow model: every node pushes its transfer queue concurrently (one
//! outstanding transfer per node, in order), each node's NIC has finite
//! egress and ingress capacity, and concurrent flows share links
//! **max-min fairly** (progressive filling). A discrete-event loop advances
//! between flow completions.
//!
//! A notable consequence the ablation bench surfaces: under full
//! parallelism the *receiver* side becomes the bottleneck of the coded
//! scheme (every multicast packet is heard by `r` nodes), so the coded
//! advantage shrinks from `r×` to roughly `(1−1/K)/(1−r/K)⁻¹` — evidence
//! for why the serial schedule is where coding shines, and why the paper
//! flags the asynchronous setting as open.
//!
//! Since the async-fabric refactor this module is also the *validation
//! oracle* for measured runs: [`fabric_queues`] decomposes a trace into
//! per-fabric flow schedules and [`predict_fabric_shuffle_s`] replays them
//! here, giving the concurrent lower bound that brackets a NIC-emulated
//! run's measured shuffle wall-clock from below (the serial closed form in
//! [`serial`](crate::serial) brackets it from above).
//!
//! ```
//! use cts_net::fabric::ShuffleFabric;
//! use cts_net::trace::{EventKind, TraceCollector};
//! use cts_netsim::config::NetModelConfig;
//! use cts_netsim::fluid::predict_fabric_shuffle_s;
//!
//! let c = TraceCollector::new(true);
//! let stage = c.intern("Shuffle");
//! c.record_transfer(stage, 0, 0b0110, 1_000_000, 0, 1, EventKind::Multicast);
//! c.record_transfer(stage, 3, 0b11000, 1_000_000, 0, 1, EventKind::Multicast);
//! let trace = c.snapshot();
//!
//! let net = NetModelConfig::ec2_100mbps();
//! let fanout = predict_fabric_shuffle_s(&trace, "Shuffle", ShuffleFabric::Fanout, &net, 1.0);
//! let mcast = predict_fabric_shuffle_s(&trace, "Shuffle", ShuffleFabric::Multicast, &net, 1.0);
//! // Disjoint receiver sets: the native multicast finishes first.
//! assert!(mcast < fanout);
//! ```

use cts_net::fabric::ShuffleFabric;
use cts_net::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::config::NetModelConfig;
use crate::serial::transfers_by_sender;

/// One flow scheduled by the fluid simulator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FluidFlow {
    /// Sender rank.
    pub src: u16,
    /// Receiver bitmask.
    pub dsts: u128,
    /// Payload bytes (after scaling; before multicast inflation).
    pub bytes: f64,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual completion time.
    pub end_s: f64,
}

/// Result of a fluid simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FluidOutcome {
    /// All flows with their simulated start/end times.
    pub flows: Vec<FluidFlow>,
    /// Stage completion time.
    pub makespan_s: f64,
}

struct ActiveFlow {
    /// Which queue this flow came from (refilled on completion). Queues
    /// usually map 1:1 to senders, but fabric decompositions
    /// ([`fabric_queues`]) may run several queues for one sender.
    queue: usize,
    queue_idx: usize, // index into the queue (for bookkeeping)
    /// The sending *rank* — the egress link this flow occupies.
    src: usize,
    dsts: Vec<usize>,
    remaining: f64, // bytes left (inflated by multicast penalty)
    latency_left: f64,
    start_s: f64,
    original_bytes: f64,
    dst_mask: u128,
}

/// Simulates the parallel shuffle of `by_sender` transfer queues (as
/// produced by [`transfers_by_sender`] or, per fabric, by
/// [`fabric_queues`]).
///
/// Each queue executes in order with one outstanding transfer; all queues
/// run concurrently. A transfer first pays the per-transfer latency
/// (consuming no bandwidth), then streams `bytes × multicast penalty`
/// through the *recorded sender's* egress and every receiver's ingress, at
/// the max-min fair rate. Several queues may carry the same sender rank
/// (the fanout decomposition), in which case their flows share that
/// sender's egress link.
pub fn simulate_parallel(by_sender: &[Vec<TraceEvent>], net: &NetModelConfig) -> FluidOutcome {
    let nodes = by_sender.len().max(
        by_sender
            .iter()
            .flatten()
            .flat_map(|e| mask_to_vec(e.dsts).into_iter().chain([e.src as usize]))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0),
    );
    let cap = net.effective_bytes_per_sec();
    let mut next_idx = vec![0usize; by_sender.len()];
    let mut active: Vec<ActiveFlow> = Vec::new();
    let mut finished: Vec<FluidFlow> = Vec::new();
    let mut clock = 0.0f64;

    let start_next =
        |queue: usize, next_idx: &mut Vec<usize>, active: &mut Vec<ActiveFlow>, clock: f64| {
            if let Some(ev) = by_sender[queue].get(next_idx[queue]) {
                let dsts = mask_to_vec(ev.dsts);
                let inflation = net.multicast_penalty(dsts.len() as u32);
                active.push(ActiveFlow {
                    queue,
                    queue_idx: next_idx[queue],
                    src: ev.src as usize,
                    remaining: ev.bytes as f64 * inflation,
                    latency_left: net.per_transfer_latency_s,
                    start_s: clock,
                    original_bytes: ev.bytes as f64,
                    dst_mask: ev.dsts,
                    dsts,
                });
                next_idx[queue] += 1;
            }
        };

    for sender in 0..by_sender.len() {
        start_next(sender, &mut next_idx, &mut active, clock);
    }

    while !active.is_empty() {
        // Flows past their latency phase compete for bandwidth.
        let streaming: Vec<usize> = (0..active.len())
            .filter(|&i| active[i].latency_left <= 0.0)
            .collect();
        let rates = maxmin_rates(&active, &streaming, nodes, cap);

        // Time to the next event: a latency expiry or a flow completion.
        let mut dt = f64::INFINITY;
        for (i, f) in active.iter().enumerate() {
            if f.latency_left > 0.0 {
                dt = dt.min(f.latency_left);
            } else if rates[i] > 0.0 {
                dt = dt.min(f.remaining / rates[i]);
            }
        }
        debug_assert!(dt.is_finite(), "fluid simulation stalled");
        clock += dt;

        // Advance and collect completions.
        let mut completed: Vec<usize> = Vec::new();
        for (i, f) in active.iter_mut().enumerate() {
            if f.latency_left > 0.0 {
                f.latency_left -= dt;
            } else {
                f.remaining -= rates[i] * dt;
                if f.remaining <= 1e-9 {
                    completed.push(i);
                }
            }
        }
        // Remove completed (descending index), record, and refill senders.
        completed.sort_unstable_by(|a, b| b.cmp(a));
        for i in completed {
            let f = active.swap_remove(i);
            finished.push(FluidFlow {
                src: f.src as u16,
                dsts: f.dst_mask,
                bytes: f.original_bytes,
                start_s: f.start_s,
                end_s: clock,
            });
            let _ = f.queue_idx;
            start_next(f.queue, &mut next_idx, &mut active, clock);
        }
    }

    finished.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
    FluidOutcome {
        makespan_s: clock,
        flows: finished,
    }
}

/// Decomposes a stage's traced transfers into per-queue flow lists that
/// express how the given [`ShuffleFabric`] actually puts copies on the
/// wire, for replay through [`simulate_parallel`]:
///
/// * `SerialUnicast` — each multicast becomes `m` single-destination flows
///   *in the same sender queue* (copies serialize behind each other);
/// * `Fanout` — each multicast becomes `m` single-destination flows spread
///   over `m` parallel queues per sender (copies stream concurrently but
///   share the sender's egress link, which the simulator enforces because
///   all copies keep the same `src`);
/// * `Multicast` — events pass through unchanged: one flow that loads the
///   egress once (times the α-penalty) and every receiver's ingress.
pub fn fabric_queues(
    trace: &Trace,
    stage: &str,
    fabric: ShuffleFabric,
    scale: f64,
) -> Vec<Vec<TraceEvent>> {
    let base = transfers_by_sender(trace, stage, scale);
    match fabric {
        // Physical UDP multicast flows exactly like the emulated native
        // multicast: one egress crossing per group send.
        ShuffleFabric::Multicast | ShuffleFabric::UdpMulticast => base,
        ShuffleFabric::SerialUnicast => base
            .into_iter()
            .map(|queue| {
                queue
                    .iter()
                    .flat_map(|e| {
                        mask_to_vec(e.dsts).into_iter().map(move |d| {
                            let mut copy = *e;
                            copy.dsts = 1u128 << d;
                            copy
                        })
                    })
                    .collect()
            })
            .collect(),
        ShuffleFabric::Fanout => {
            let senders = base.len();
            let width = base
                .iter()
                .flatten()
                .map(|e| e.fanout() as usize)
                .max()
                .unwrap_or(1)
                .max(1);
            let mut queues: Vec<Vec<TraceEvent>> = vec![Vec::new(); senders * width];
            for (s, queue) in base.iter().enumerate() {
                for e in queue {
                    for (j, d) in mask_to_vec(e.dsts).into_iter().enumerate() {
                        let mut copy = *e;
                        copy.dsts = 1u128 << d;
                        queues[s * width + j].push(copy);
                    }
                }
            }
            queues
        }
    }
}

/// The fluid half of the fabric validation oracle: the modeled shuffle
/// makespan when flows overlap as much as the fabric permits. Together
/// with the serial upper bound
/// ([`serial_fabric_makespan`](crate::serial::serial_fabric_makespan))
/// this sandwiches the *measured* wall-clock of a NIC-emulated run: the
/// real engine's turn-taking inside multicast groups serializes more than
/// this bound but never less than the serial one.
pub fn predict_fabric_shuffle_s(
    trace: &Trace,
    stage: &str,
    fabric: ShuffleFabric,
    net: &NetModelConfig,
    scale: f64,
) -> f64 {
    simulate_parallel(&fabric_queues(trace, stage, fabric, scale), net).makespan_s
}

fn mask_to_vec(mask: u128) -> Vec<usize> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        out.push(m.trailing_zeros() as usize);
        m &= m - 1;
    }
    out
}

/// Max-min fair rates via progressive filling over per-node egress and
/// ingress links of capacity `cap`. Only `streaming` flows (past latency)
/// get bandwidth; others get 0.
fn maxmin_rates(active: &[ActiveFlow], streaming: &[usize], nodes: usize, cap: f64) -> Vec<f64> {
    // Link ids: 0..nodes = egress, nodes..2*nodes = ingress.
    let num_links = 2 * nodes;
    let mut link_cap = vec![cap; num_links];
    let mut rates = vec![0.0f64; active.len()];
    let mut frozen: Vec<bool> = (0..active.len()).map(|i| !streaming.contains(&i)).collect();

    let links_of = |f: &ActiveFlow| -> Vec<usize> {
        let mut l = vec![f.src];
        l.extend(f.dsts.iter().map(|&d| nodes + d));
        l
    };

    loop {
        // Flows still rising per link.
        let mut counts = vec![0usize; num_links];
        let mut any = false;
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any = true;
            for l in links_of(f) {
                counts[l] += 1;
            }
        }
        if !any {
            break;
        }
        // The binding link determines the uniform increment.
        let mut delta = f64::INFINITY;
        for l in 0..num_links {
            if counts[l] > 0 {
                delta = delta.min(link_cap[l] / counts[l] as f64);
            }
        }
        if !delta.is_finite() || delta <= 0.0 {
            break;
        }
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rates[i] += delta;
            for l in links_of(f) {
                link_cap[l] -= delta;
            }
        }
        // Freeze flows on saturated links.
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if links_of(f).iter().any(|&l| link_cap[l] <= 1e-9) {
                frozen[i] = true;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_net::trace::{EventKind, TraceEvent};

    fn net_10mbs() -> NetModelConfig {
        NetModelConfig {
            bandwidth_bits_per_sec: 80e6, // 10 MB/s at eff 1
            tcp_efficiency: 1.0,
            per_transfer_latency_s: 0.0,
            multicast_alpha: 0.0,
            group_setup_s: 0.0,
        }
    }

    fn ev(src: usize, dsts: u128, bytes: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            stage: 0,
            job: 0,
            src: src as u16,
            dsts,
            bytes,
            overhead: 0,
            wire_copies: 1,
            kind: EventKind::AppUnicast,
        }
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let out = simulate_parallel(&[vec![ev(0, 0b10, 10_000_000)]], &net_10mbs());
        assert!((out.makespan_s - 1.0).abs() < 1e-6, "{}", out.makespan_s);
        assert_eq!(out.flows.len(), 1);
    }

    #[test]
    fn disjoint_flows_run_concurrently() {
        // 0→1 and 2→3 share no links: both finish at t = 1.
        let out = simulate_parallel(
            &[
                vec![ev(0, 0b0010, 10_000_000)],
                vec![],
                vec![ev(2, 0b1000, 10_000_000)],
            ],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 1.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn ingress_contention_halves_rates() {
        // 0→2 and 1→2 share node 2's ingress: each gets 5 MB/s → 2 s.
        let out = simulate_parallel(
            &[
                vec![ev(0, 0b100, 10_000_000)],
                vec![ev(1, 0b100, 10_000_000)],
            ],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn sender_queue_is_sequential() {
        // One sender, two back-to-back unicasts to different receivers.
        let out = simulate_parallel(
            &[vec![ev(0, 0b010, 10_000_000), ev(0, 0b100, 10_000_000)]],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
        assert!(out.flows[0].end_s <= out.flows[1].start_s + 1e-9);
    }

    #[test]
    fn parallel_all_to_all_beats_serial() {
        // 4 nodes, all-to-all 10 MB each with the classic staggered order
        // (step i: s → (s+i) mod K, all links disjoint per step):
        // serial = 12 s; parallel = 3 s.
        let by_sender: Vec<Vec<TraceEvent>> = (0..4usize)
            .map(|s| {
                (1..4usize)
                    .map(|i| ev(s, 1 << ((s + i) % 4), 10_000_000))
                    .collect()
            })
            .collect();
        let out = simulate_parallel(&by_sender, &net_10mbs());
        assert!((out.makespan_s - 3.0).abs() < 0.01, "{}", out.makespan_s);
    }

    #[test]
    fn naive_ordering_creates_ingress_hotspots() {
        // If every sender targets node 0 first, node 0's ingress serializes
        // the first phase: the makespan doubles vs. the staggered order.
        let by_sender: Vec<Vec<TraceEvent>> = (0..4usize)
            .map(|s| {
                (0..4usize)
                    .filter(|&d| d != s)
                    .map(|d| ev(s, 1 << d, 10_000_000))
                    .collect()
            })
            .collect();
        let out = simulate_parallel(&by_sender, &net_10mbs());
        assert!(out.makespan_s > 4.5, "{}", out.makespan_s);
    }

    #[test]
    fn multicast_loads_every_receiver_ingress() {
        // Two senders multicast 10 MB to the same two receivers.
        // Each receiver ingress carries 20 MB at 10 MB/s → 2 s.
        let out = simulate_parallel(
            &[
                vec![ev(0, 0b1100, 10_000_000)],
                vec![ev(1, 0b1100, 10_000_000)],
            ],
            &net_10mbs(),
        );
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn latency_delays_streaming() {
        let net = NetModelConfig {
            per_transfer_latency_s: 0.5,
            ..net_10mbs()
        };
        let out = simulate_parallel(&[vec![ev(0, 0b10, 10_000_000)]], &net);
        assert!((out.makespan_s - 1.5).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn multicast_penalty_inflates_bytes() {
        let net = NetModelConfig {
            multicast_alpha: 1.0,
            ..net_10mbs()
        };
        // Fanout 2 → inflation 1 + log2(2) = 2 → 2 s for 10 MB.
        let out = simulate_parallel(&[vec![ev(0, 0b110, 10_000_000)]], &net);
        assert!((out.makespan_s - 2.0).abs() < 1e-6, "{}", out.makespan_s);
    }

    #[test]
    fn empty_input_is_zero() {
        let out = simulate_parallel(&[vec![], vec![]], &net_10mbs());
        assert_eq!(out.makespan_s, 0.0);
        assert!(out.flows.is_empty());
    }

    fn multicast_trace() -> Trace {
        use cts_net::trace::TraceCollector;
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        // Two senders, each multicasting 10 MB to the two other ranks.
        c.record_transfer(s, 0, 0b0110, 10_000_000, 0, 1, EventKind::Multicast);
        c.record_transfer(s, 3, 0b0011, 10_000_000, 0, 1, EventKind::Multicast);
        c.snapshot()
    }

    #[test]
    fn fabric_queues_decompose_per_fabric() {
        let t = multicast_trace();
        let mc = fabric_queues(&t, "Shuffle", ShuffleFabric::Multicast, 1.0);
        assert_eq!(mc.iter().flatten().count(), 2);
        assert!(mc.iter().flatten().all(|e| e.fanout() == 2));

        let serial = fabric_queues(&t, "Shuffle", ShuffleFabric::SerialUnicast, 1.0);
        // Copies serialize within the sender's own queue.
        assert_eq!(serial[0].len(), 2);
        assert!(serial.iter().flatten().all(|e| e.fanout() == 1));

        let fanout = fabric_queues(&t, "Shuffle", ShuffleFabric::Fanout, 1.0);
        // Copies land in distinct queues but keep their sender for egress.
        assert_eq!(fanout.iter().flatten().count(), 4);
        let nonempty: Vec<_> = fanout.iter().filter(|q| !q.is_empty()).collect();
        assert_eq!(nonempty.len(), 4);
        assert!(fanout.iter().flatten().all(|e| e.src == 0 || e.src == 3));
    }

    #[test]
    fn fabric_predictions_order_on_disjoint_receivers() {
        use cts_net::trace::TraceCollector;
        // Receiver-disjoint groups so sender egress is the only bottleneck.
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        c.record_transfer(s, 0, 0b0000110, 10_000_000, 0, 1, EventKind::Multicast);
        c.record_transfer(s, 3, 0b0110000, 10_000_000, 0, 1, EventKind::Multicast);
        let t = c.snapshot();
        let net = NetModelConfig {
            per_transfer_latency_s: 0.05,
            multicast_alpha: 0.3,
            ..net_10mbs()
        };
        let serial =
            predict_fabric_shuffle_s(&t, "Shuffle", ShuffleFabric::SerialUnicast, &net, 1.0);
        let fanout = predict_fabric_shuffle_s(&t, "Shuffle", ShuffleFabric::Fanout, &net, 1.0);
        let mcast = predict_fabric_shuffle_s(&t, "Shuffle", ShuffleFabric::Multicast, &net, 1.0);
        // serial: 2·(0.05 + 1) = 2.1; fanout: 0.05 + 2; mcast: 0.05 + 1.3.
        assert!((serial - 2.1).abs() < 1e-6, "serial {serial}");
        assert!((fanout - 2.05).abs() < 1e-6, "fanout {fanout}");
        assert!((mcast - 1.35).abs() < 1e-6, "mcast {mcast}");
        assert!(mcast < fanout && fanout < serial);
    }

    #[test]
    fn fluid_prediction_never_exceeds_serial_bound() {
        // Per fabric, the concurrent (fluid) prediction is a lower bound on
        // the strictly serial closed form — even with receiver contention,
        // where native multicast can lose its cross-fabric edge (the §VI
        // receiver-bottleneck effect).
        use crate::serial::serial_fabric_makespan;
        let t = multicast_trace();
        let net = NetModelConfig {
            per_transfer_latency_s: 0.05,
            multicast_alpha: 0.3,
            ..net_10mbs()
        };
        for fabric in ShuffleFabric::ALL {
            let fluid = predict_fabric_shuffle_s(&t, "Shuffle", fabric, &net, 1.0);
            let serial = serial_fabric_makespan(&t, "Shuffle", fabric, &net, 1.0);
            assert!(
                fluid <= serial + 1e-9,
                "{fabric}: fluid {fluid} > serial {serial}"
            );
        }
    }
}
