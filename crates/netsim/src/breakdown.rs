//! Stage breakdowns and paper-style table rendering.

use serde::{Deserialize, Serialize};

/// Modeled (or measured) per-stage times in seconds, following the paper's
//  table columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// CodeGen: multicast-group initialization (0 for TeraSort).
    pub codegen_s: f64,
    /// Map: hashing into key partitions.
    pub map_s: f64,
    /// Pack (uncoded) or Encode (coded): serialization (+ XOR).
    pub pack_encode_s: f64,
    /// Shuffle: serial unicast or serial multicast.
    pub shuffle_s: f64,
    /// Unpack (uncoded) or Decode (coded).
    pub unpack_decode_s: f64,
    /// Reduce: local sort.
    pub reduce_s: f64,
}

impl StageBreakdown {
    /// Total execution time.
    pub fn total_s(&self) -> f64 {
        self.codegen_s
            + self.map_s
            + self.pack_encode_s
            + self.shuffle_s
            + self.unpack_decode_s
            + self.reduce_s
    }

    /// Speedup of `self` relative to `baseline` (baseline total over ours).
    pub fn speedup_over(&self, baseline: &StageBreakdown) -> f64 {
        baseline.total_s() / self.total_s()
    }

    /// The six stage values as (label, seconds) pairs, table order.
    pub fn columns(&self) -> [(&'static str, f64); 6] {
        [
            ("CodeGen", self.codegen_s),
            ("Map", self.map_s),
            ("Pack/Encode", self.pack_encode_s),
            ("Shuffle", self.shuffle_s),
            ("Unpack/Decode", self.unpack_decode_s),
            ("Reduce", self.reduce_s),
        ]
    }
}

/// One labelled row of a paper-style results table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableRow {
    /// Row label, e.g. `"CodedTeraSort: r = 3"`.
    pub label: String,
    /// Stage breakdown.
    pub breakdown: StageBreakdown,
    /// Speedup vs. the table's baseline row (None for the baseline itself).
    pub speedup: Option<f64>,
}

impl serde::ser::Serialize for StageBreakdown {
    fn to_json(&self) -> serde::json::Value {
        serde::json::Value::object([
            ("codegen_s", serde::json::Value::Float(self.codegen_s)),
            ("map_s", serde::json::Value::Float(self.map_s)),
            (
                "pack_encode_s",
                serde::json::Value::Float(self.pack_encode_s),
            ),
            ("shuffle_s", serde::json::Value::Float(self.shuffle_s)),
            (
                "unpack_decode_s",
                serde::json::Value::Float(self.unpack_decode_s),
            ),
            ("reduce_s", serde::json::Value::Float(self.reduce_s)),
            ("total_s", serde::json::Value::Float(self.total_s())),
        ])
    }
}

impl serde::ser::Serialize for TableRow {
    fn to_json(&self) -> serde::json::Value {
        serde::json::Value::object([
            ("label", serde::json::Value::Str(self.label.clone())),
            ("breakdown", serde::ser::Serialize::to_json(&self.breakdown)),
            (
                "speedup",
                match self.speedup {
                    Some(s) => serde::json::Value::Float(s),
                    None => serde::json::Value::Null,
                },
            ),
        ])
    }
}

/// Renders rows in the layout of the paper's Tables I–III.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>12} {:>9} {:>14} {:>8} {:>11} {:>9}\n",
        "",
        "CodeGen",
        "Map",
        "Pack/Encode",
        "Shuffle",
        "Unpack/Decode",
        "Reduce",
        "Total",
        "Speedup"
    ));
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>12} {:>9} {:>14} {:>8} {:>11} {:>9}\n",
        "", "(sec)", "(sec)", "(sec)", "(sec)", "(sec)", "(sec)", "(sec)", ""
    ));
    for row in rows {
        let b = &row.breakdown;
        let codegen = if b.codegen_s == 0.0 {
            "-".to_string()
        } else {
            format!("{:.2}", b.codegen_s)
        };
        let speedup = row.speedup.map(|s| format!("{s:.2}x")).unwrap_or_default();
        out.push_str(&format!(
            "{:<24} {:>8} {:>8.2} {:>12.2} {:>9.2} {:>14.2} {:>8.2} {:>11.2} {:>9}\n",
            row.label,
            codegen,
            b.map_s,
            b.pack_encode_s,
            b.shuffle_s,
            b.unpack_decode_s,
            b.reduce_s,
            b.total_s(),
            speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_table1() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 0.0,
            map_s: 1.86,
            pack_encode_s: 2.35,
            shuffle_s: 945.72,
            unpack_decode_s: 0.85,
            reduce_s: 10.47,
        }
    }

    #[test]
    fn total_matches_paper_table1() {
        assert!((paper_table1().total_s() - 961.25).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_ratio_of_totals() {
        let base = paper_table1();
        let coded = StageBreakdown {
            codegen_s: 6.06,
            map_s: 6.03,
            pack_encode_s: 5.79,
            shuffle_s: 412.22,
            unpack_decode_s: 2.41,
            reduce_s: 13.05,
        };
        // Paper Table II reports 2.16×.
        let s = coded.speedup_over(&base);
        assert!((s - 2.157).abs() < 0.01, "speedup {s}");
    }

    #[test]
    fn render_contains_all_cells() {
        let rows = vec![
            TableRow {
                label: "TeraSort:".into(),
                breakdown: paper_table1(),
                speedup: None,
            },
            TableRow {
                label: "CodedTeraSort: r = 3".into(),
                breakdown: StageBreakdown {
                    codegen_s: 6.06,
                    map_s: 6.03,
                    pack_encode_s: 5.79,
                    shuffle_s: 412.22,
                    unpack_decode_s: 2.41,
                    reduce_s: 13.05,
                },
                speedup: Some(2.16),
            },
        ];
        let table = render_table("TABLE II (modeled)", &rows);
        assert!(table.contains("945.72"));
        assert!(table.contains("2.16x"));
        assert!(table.contains("CodeGen"));
        // The uncoded row shows "-" for CodeGen, like the paper.
        let first_data_line = table.lines().nth(3).unwrap();
        assert!(first_data_line.contains('-'));
    }

    #[test]
    fn columns_are_in_table_order() {
        let cols = paper_table1().columns();
        assert_eq!(cols[0].0, "CodeGen");
        assert_eq!(cols[5].0, "Reduce");
        let sum: f64 = cols.iter().map(|(_, v)| v).sum();
        assert!((sum - paper_table1().total_s()).abs() < 1e-12);
    }
}
