//! Recovery makespan model: what a rank death should cost the job.
//!
//! With the MDS quorum decode, a single fail-stop death never blocks the
//! shuffle — every group the dead rank belonged to still fields its
//! `r − 1`-sender quorum — so the *only* recovery costs are (1) the
//! detection latency (the health layer's probed death deadline: silence
//! must outlast the suspect window plus every exponentially backed-off
//! probe window before a peer is declared dead) and (2) the speculative
//! re-execution of the dead rank's reduce partition on its successor
//! (bounded by one rank's share of Map plus one partition's worth of
//! unicast forwarding — a small multiple of the healthy makespan).
//!
//! [`RecoveryModel`] turns that into testable brackets, in the same
//! calibrated-from-a-healthy-run style as
//! [`StragglerModel`](crate::straggler::StragglerModel):
//! `tests/failure_injection.rs` holds measured crash-recovery runs inside
//! them, and `crates/bench`'s `ablation_recovery` records the sweep they
//! bracket.

use serde::{Deserialize, Serialize};

use crate::straggler::Bracket;

/// Predicts makespan brackets for a run in which one rank dies fail-stop
/// and the survivors finish the job.
///
/// Calibrated from a *measured healthy run* of the same job (same input,
/// `K`, `r`, fabric) plus the health layer's configured death deadline —
/// the model claims only how the death *changes* the makespan, which is
/// the part detection and re-execution control.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryModel {
    /// Measured makespan of the healthy (no-fault) run, seconds.
    pub healthy_s: f64,
    /// The health layer's death deadline (suspect window plus all probe
    /// windows — [`HealthConfig::death_deadline`]), seconds. Survivors
    /// cannot agree the victim is dead any sooner, so it lower-bounds the
    /// added latency of any sync the death straddles.
    ///
    /// [`HealthConfig::death_deadline`]:
    ///     ../../cts_net/health/struct.HealthConfig.html#method.death_deadline
    pub detect_s: f64,
    /// Multiplicative headroom on the healthy makespan (re-executed Map
    /// work, adoption forwarding, polling sweeps, scheduler jitter).
    /// Default 6×, matching the straggler model.
    pub tolerance: f64,
    /// Additive headroom in seconds (clock granularity, one polling
    /// idle-sweep). Default 0.5 s.
    pub slack_s: f64,
}

impl RecoveryModel {
    /// A model with the default tolerances.
    pub fn new(healthy_s: f64, detect_s: f64) -> Self {
        RecoveryModel {
            healthy_s,
            detect_s,
            tolerance: 6.0,
            slack_s: 0.5,
        }
    }

    /// Bracket for a speculative-recovery run: the job must finish, and
    /// must do so within the healthy makespan's headroom plus one
    /// detection deadline — death costs *detection plus the missing
    /// work*, never a restart. The lower bound is left at zero: a death
    /// late in the job (e.g. pre-reduce) can overlap detection with work
    /// the survivors were doing anyway.
    pub fn speculative_bracket(&self) -> Bracket {
        Bracket {
            lo_s: 0.0,
            hi_s: self.tolerance * self.healthy_s + self.detect_s + self.slack_s,
        }
    }

    /// Bracket for a recovery-off run: the crash panics the job down the
    /// fail-fast teardown path, which involves no deadline waits at all —
    /// the typed error must surface within the healthy makespan's
    /// headroom, with no detection term.
    pub fn failfast_bracket(&self) -> Bracket {
        Bracket {
            lo_s: 0.0,
            hi_s: self.tolerance * self.healthy_s + self.slack_s,
        }
    }

    /// The worst added makespan this model permits a death to cost a
    /// recovered run over the healthy one: the detection deadline plus
    /// the re-execution headroom.
    pub fn predicted_overhead_s(&self) -> f64 {
        self.speculative_bracket().hi_s - self.healthy_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_bracket_adds_exactly_one_detection_deadline() {
        let m = RecoveryModel::new(0.2, 0.18);
        assert_eq!(
            m.speculative_bracket().hi_s,
            m.failfast_bracket().hi_s + 0.18
        );
        assert!(m.speculative_bracket().contains(0.2 + 0.18));
        assert!(m.failfast_bracket().contains(0.1));
    }

    #[test]
    fn overhead_scales_with_detection_latency() {
        let fast = RecoveryModel::new(0.2, 0.05);
        let slow = RecoveryModel::new(0.2, 0.9);
        assert!(slow.predicted_overhead_s() > fast.predicted_overhead_s());
        let delta = slow.predicted_overhead_s() - fast.predicted_overhead_s();
        assert!((delta - (0.9 - 0.05)).abs() < 1e-12, "delta {delta}");
    }

    #[test]
    fn brackets_include_their_endpoints() {
        let b = RecoveryModel::new(0.1, 0.2).speculative_bracket();
        assert!(b.contains(b.lo_s));
        assert!(b.contains(b.hi_s));
        assert!(!b.contains(b.hi_s + 1e-9));
    }
}
