//! Serial shuffle schedule evaluation (paper Fig. 9).
//!
//! Both algorithms shuffle *serially*: exactly one sender is active at any
//! instant. TeraSort unicasts back-to-back (Fig. 9(a)); CodedTeraSort
//! multicasts one coded packet at a time (Fig. 9(b)). Under a serial
//! schedule the stage time is simply the sum of individual transfer times —
//! which the model computes from the traced byte counts, the calibrated
//! link rate, the per-transfer latency, and the logarithmic multicast
//! penalty. [`serial_fabric_makespan`] extends the same sum to the three
//! shuffle fabrics, as the upper-bound half of the measured-vs-modeled
//! validation oracle.
//!
//! ```
//! use cts_net::fabric::ShuffleFabric;
//! use cts_net::trace::{EventKind, TraceCollector};
//! use cts_netsim::config::NetModelConfig;
//! use cts_netsim::serial::serial_fabric_makespan;
//!
//! // One traced multicast: 1 MB to 3 receivers.
//! let c = TraceCollector::new(true);
//! let stage = c.intern("Shuffle");
//! c.record_transfer(stage, 0, 0b1110, 1_000_000, 0, 1, EventKind::Multicast);
//! let trace = c.snapshot();
//!
//! let net = NetModelConfig::ec2_100mbps();
//! let serial = serial_fabric_makespan(&trace, "Shuffle", ShuffleFabric::SerialUnicast, &net, 1.0);
//! let mcast = serial_fabric_makespan(&trace, "Shuffle", ShuffleFabric::Multicast, &net, 1.0);
//! // Serial-unicast emulation pays ~3× the native multicast time.
//! assert!(serial > 2.0 * mcast);
//! ```

use cts_net::fabric::ShuffleFabric;
use cts_net::trace::{EventKind, Trace, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::config::NetModelConfig;

/// One scheduled transfer in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTransfer {
    /// Virtual start time (seconds from stage start).
    pub start_s: f64,
    /// Virtual end time.
    pub end_s: f64,
    /// Sender rank.
    pub src: u16,
    /// Receiver bitmask.
    pub dsts: u128,
    /// Payload bytes (already scaled).
    pub bytes: f64,
}

/// The result of evaluating a stage's transfers under a schedule.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Transfers with virtual start/end times, schedule order.
    pub transfers: Vec<ScheduledTransfer>,
}

impl Schedule {
    /// Stage completion time (end of the last transfer).
    pub fn makespan_s(&self) -> f64 {
        self.transfers.last().map(|t| t.end_s).unwrap_or(0.0)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }
}

/// Evaluates the serial schedule over the non-internal events of `stage`,
/// with byte counts multiplied by `scale`.
///
/// Transfers execute one after another in trace order — the order the
/// engines produced them, which for both algorithms is the paper's
/// node-by-node serial order.
pub fn serial_schedule(trace: &Trace, stage: &str, net: &NetModelConfig, scale: f64) -> Schedule {
    let mut clock = 0.0f64;
    let mut transfers = Vec::new();
    for ev in trace.stage_events(stage) {
        if ev.kind == EventKind::Internal {
            continue;
        }
        let bytes = scaled_wire_bytes(ev, scale);
        let duration = net.per_transfer_latency_s + net.transfer_seconds(bytes, ev.fanout());
        transfers.push(ScheduledTransfer {
            start_s: clock,
            end_s: clock + duration,
            src: ev.src,
            dsts: ev.dsts,
            bytes,
        });
        clock += duration;
    }
    Schedule { transfers }
}

/// Projects a traced transfer onto the target input size: payload scales,
/// per-packet protocol overhead does not.
#[inline]
pub fn scaled_wire_bytes(ev: &TraceEvent, scale: f64) -> f64 {
    (ev.bytes - ev.overhead) as f64 * scale + ev.overhead as f64
}

/// Serial makespan without materializing the schedule (fast path used by
/// sweeps).
pub fn serial_makespan(trace: &Trace, stage: &str, net: &NetModelConfig, scale: f64) -> f64 {
    trace
        .stage_events(stage)
        .filter(|e| e.kind != EventKind::Internal)
        .map(|e| {
            net.per_transfer_latency_s
                + net.transfer_seconds(scaled_wire_bytes(e, scale), e.fanout())
        })
        .sum()
}

/// Models the makespan of a strictly serial schedule under each
/// [`ShuffleFabric`] — the closed-form upper-bound half of the
/// measured-vs-modeled validation oracle (the fluid simulator's
/// [`predict_fabric_shuffle_s`](crate::fluid::predict_fabric_shuffle_s)
/// is the concurrent lower bound). Per non-internal event with fanout `m`
/// and scaled bytes `B`:
///
/// * `SerialUnicast` — `m` back-to-back unicasts: `m·(L + B/rate)`;
/// * `Fanout` — one setup, copies overlap but share egress:
///   `L + m·B/rate`;
/// * `Multicast` — one transmission with the software-multicast penalty:
///   `L + B·(1 + α·log2 m)/rate`.
///
/// This mirrors, term for term, what the real-time NIC emulation in
/// `cts-net::rate` charges, so a rate-limited run's measured shuffle
/// wall-clock should land between this bound and the fluid prediction.
pub fn serial_fabric_makespan(
    trace: &Trace,
    stage: &str,
    fabric: ShuffleFabric,
    net: &NetModelConfig,
    scale: f64,
) -> f64 {
    trace
        .stage_events(stage)
        .filter(|e| e.kind != EventKind::Internal)
        .map(|e| {
            let bytes = scaled_wire_bytes(e, scale);
            let m = e.fanout().max(1);
            let latency = net.per_transfer_latency_s;
            match fabric {
                ShuffleFabric::SerialUnicast => {
                    m as f64 * (latency + net.transfer_seconds(bytes, 1))
                }
                ShuffleFabric::Fanout => latency + m as f64 * net.transfer_seconds(bytes, 1),
                // Physical UDP multicast costs what the emulated native
                // multicast is charged: one transmission with the software
                // α-penalty (a conservative bound for real IGMP snooping).
                ShuffleFabric::Multicast | ShuffleFabric::UdpMulticast => {
                    latency + net.transfer_seconds(bytes, m)
                }
            }
        })
        .sum()
}

/// Evaluates the *tree-decomposed* cost of multicasts: instead of the
/// `1 + α·log2(m)` penalty on one transfer, each multicast to `m` receivers
/// is charged as `m` serial unicasts of the same payload (a binomial tree
/// moves the packet over exactly `m` edges). This is the ablation that
/// quantifies what `MPI_Bcast`'s software tree would cost if its hops did
/// not overlap at all, relative to ideal network-layer multicast (which
/// EC2 does not support — §I).
pub fn serial_makespan_tree_unicast(
    trace: &Trace,
    stage: &str,
    net: &NetModelConfig,
    scale: f64,
) -> f64 {
    trace
        .stage_events(stage)
        .map(|e| match e.kind {
            EventKind::AppUnicast => {
                net.per_transfer_latency_s + net.transfer_seconds(scaled_wire_bytes(e, scale), 1)
            }
            EventKind::Multicast => {
                e.fanout() as f64
                    * (net.per_transfer_latency_s
                        + net.transfer_seconds(scaled_wire_bytes(e, scale), 1))
            }
            // Tree hops are already accounted by the fanout expansion.
            EventKind::Internal => 0.0,
        })
        .sum()
}

/// Returns the per-sender transfer lists of a stage (trace order within
/// each sender) — the input shape for the parallel-shuffle simulator.
pub fn transfers_by_sender(trace: &Trace, stage: &str, scale: f64) -> Vec<Vec<TraceEvent>> {
    let mut max_rank = 0usize;
    let events: Vec<TraceEvent> = trace
        .stage_events(stage)
        .filter(|e| e.kind != EventKind::Internal)
        .map(|e| {
            max_rank = max_rank.max(e.src as usize);
            let mut e = *e;
            e.bytes = scaled_wire_bytes(&e, scale).round() as u64;
            e.overhead = 0; // already folded into bytes
            e
        })
        .collect();
    let mut by_sender = vec![Vec::new(); max_rank + 1];
    for e in events {
        by_sender[e.src as usize].push(e);
    }
    by_sender
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_net::trace::TraceCollector;

    fn trace_with(events: &[(usize, u128, u64, EventKind)]) -> Trace {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        for &(src, dsts, bytes, kind) in events {
            c.record(s, src, dsts, bytes, kind);
        }
        c.snapshot()
    }

    fn net() -> NetModelConfig {
        NetModelConfig {
            bandwidth_bits_per_sec: 80e6, // 10 MB/s effective at eff=1
            tcp_efficiency: 1.0,
            per_transfer_latency_s: 0.001,
            multicast_alpha: 0.5,
            group_setup_s: 0.0,
        }
    }

    #[test]
    fn serial_unicasts_sum() {
        let t = trace_with(&[
            (0, 0b10, 10_000_000, EventKind::AppUnicast),
            (1, 0b01, 20_000_000, EventKind::AppUnicast),
        ]);
        let s = serial_schedule(&t, "Shuffle", &net(), 1.0);
        // 1 s + 2 s plus 1 ms latency each.
        assert!((s.makespan_s() - 3.002).abs() < 1e-9);
        assert_eq!(s.transfers.len(), 2);
        assert!((s.transfers[0].end_s - s.transfers[1].start_s).abs() < 1e-12);
        assert!((serial_makespan(&t, "Shuffle", &net(), 1.0) - s.makespan_s()).abs() < 1e-12);
    }

    #[test]
    fn multicast_pays_log_penalty() {
        let t = trace_with(&[(0, 0b1110, 10_000_000, EventKind::Multicast)]);
        let s = serial_makespan(&t, "Shuffle", &net(), 1.0);
        // fanout 3: 1 + 0.5·log2(3) ≈ 1.7925 → 1.7925 s + 1 ms.
        assert!((s - (1.0 + 0.5 * 3f64.log2()) - 0.001).abs() < 1e-9, "{s}");
    }

    #[test]
    fn internal_events_are_free() {
        let t = trace_with(&[
            (0, 0b10, 1_000_000, EventKind::Internal),
            (0, 0b10, 1_000_000, EventKind::AppUnicast),
        ]);
        let s = serial_makespan(&t, "Shuffle", &net(), 1.0);
        assert!((s - 0.101).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_bytes_not_latency() {
        let t = trace_with(&[(0, 0b10, 1_000_000, EventKind::AppUnicast)]);
        let s1 = serial_makespan(&t, "Shuffle", &net(), 1.0);
        let s10 = serial_makespan(&t, "Shuffle", &net(), 10.0);
        // s1 = 0.1 + 0.001; s10 = 1.0 + 0.001.
        assert!((s10 - 1.001).abs() < 1e-9);
        assert!((s1 - 0.101).abs() < 1e-9);
    }

    #[test]
    fn tree_unicast_charges_fanout_times() {
        // One multicast to 3 receivers decomposed into 3 serial unicasts;
        // the recorded tree hops themselves are not double-charged.
        let t = trace_with(&[
            (0, 0b1110, 1_000_000, EventKind::Multicast),
            (0, 0b0010, 1_000_000, EventKind::Internal),
            (1, 0b0100, 1_000_000, EventKind::Internal),
            (0, 0b1000, 1_000_000, EventKind::Internal),
        ]);
        let tree = serial_makespan_tree_unicast(&t, "Shuffle", &net(), 1.0);
        assert!((tree - 0.303).abs() < 1e-9, "{tree}");
        // The penalty model charges less than 3 serial unicasts (that's the
        // point of multicasting).
        let penalty = serial_makespan(&t, "Shuffle", &net(), 1.0);
        assert!(penalty < tree);
    }

    #[test]
    fn transfers_by_sender_groups_and_scales() {
        let t = trace_with(&[
            (2, 0b001, 100, EventKind::AppUnicast),
            (0, 0b100, 200, EventKind::AppUnicast),
            (2, 0b010, 300, EventKind::AppUnicast),
            (1, 0b001, 400, EventKind::Internal), // excluded
        ]);
        let by = transfers_by_sender(&t, "Shuffle", 2.0);
        assert_eq!(by.len(), 3);
        assert_eq!(by[0].len(), 1);
        assert_eq!(by[1].len(), 0);
        assert_eq!(by[2].len(), 2);
        assert_eq!(by[2][0].bytes, 200);
        assert_eq!(by[2][1].bytes, 600);
    }

    #[test]
    fn empty_stage_is_zero() {
        let t = trace_with(&[]);
        assert_eq!(serial_makespan(&t, "Shuffle", &net(), 1.0), 0.0);
        assert_eq!(
            serial_schedule(&t, "Shuffle", &net(), 1.0).makespan_s(),
            0.0
        );
    }

    #[test]
    fn fabric_makespans_order_correctly() {
        // One multicast to 3 receivers of 10 MB at 10 MB/s, L = 1 ms.
        let t = trace_with(&[(0, 0b1110, 10_000_000, EventKind::Multicast)]);
        let n = net();
        let serial = serial_fabric_makespan(&t, "Shuffle", ShuffleFabric::SerialUnicast, &n, 1.0);
        let fanout = serial_fabric_makespan(&t, "Shuffle", ShuffleFabric::Fanout, &n, 1.0);
        let mcast = serial_fabric_makespan(&t, "Shuffle", ShuffleFabric::Multicast, &n, 1.0);
        // serial: 3·(0.001 + 1) = 3.003; fanout: 0.001 + 3; mcast: 0.001 + 1.7925.
        assert!((serial - 3.003).abs() < 1e-9, "{serial}");
        assert!((fanout - 3.001).abs() < 1e-9, "{fanout}");
        assert!(
            (mcast - (0.001 + 1.0 + 0.5 * 3f64.log2())).abs() < 1e-9,
            "{mcast}"
        );
        assert!(mcast < fanout && fanout < serial);
    }

    #[test]
    fn fabric_makespans_coincide_for_unicasts() {
        let t = trace_with(&[
            (0, 0b10, 5_000_000, EventKind::AppUnicast),
            (1, 0b01, 5_000_000, EventKind::AppUnicast),
        ]);
        let n = net();
        let vals: Vec<f64> = ShuffleFabric::ALL
            .iter()
            .map(|&f| serial_fabric_makespan(&t, "Shuffle", f, &n, 1.0))
            .collect();
        assert!((vals[0] - vals[1]).abs() < 1e-12);
        assert!((vals[1] - vals[2]).abs() < 1e-12);
        assert!((vals[0] - serial_makespan(&t, "Shuffle", &n, 1.0)).abs() < 1e-12);
    }
}
