//! Straggler makespan model: what a slow sender should cost each decode
//! discipline.
//!
//! The paper's engines barrier on *every* coded packet (§IV, stage 5), so
//! one slow sender holds the whole Shuffle stage hostage: the makespan
//! lower bound is the straggler's injected delay, and in the worst case
//! delays cascade through the serial multicast schedule. The MDS quorum
//! decode (any `r−1` of `r` packets release a group) removes the straggler
//! from every group's critical path, so the makespan should track the
//! *healthy* run regardless of how slow — or how dead — the victim is.
//!
//! [`StragglerModel`] turns that argument into testable brackets. It is
//! deliberately coarse: the quorum bound is a constant multiple of the
//! measured healthy makespan (polling overhead, scheduler jitter) plus an
//! additive slack, and the all-mode bound is just the injected delay from
//! below — all-mode upper bounds are not asserted because delayed
//! multicasts compound across the serial schedule in ways this model does
//! not chase. `tests/failure_injection.rs` holds measured runs inside
//! these brackets; `crates/bench` records the sweep they bracket.

use serde::{Deserialize, Serialize};

/// How much slower the victim's multicasts are than a healthy sender's.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Slowdown {
    /// Every multicast send is delayed by this many seconds (a `c×`
    /// slowdown shows up as a fixed per-send delay under the fault
    /// injector's [`straggler_delay_rule`]).
    ///
    /// [`straggler_delay_rule`]: ../../cts_net/fault/fn.straggler_delay_rule.html
    DelayS(f64),
    /// The victim's multicasts never arrive (`∞×`; the fault injector's
    /// blackhole rule). Only the quorum decode can finish.
    Blackhole,
}

impl Slowdown {
    /// The injected per-send delay in seconds (`∞` for a blackhole).
    pub fn delay_s(&self) -> f64 {
        match *self {
            Slowdown::DelayS(d) => d,
            Slowdown::Blackhole => f64::INFINITY,
        }
    }
}

/// An inclusive `[lo_s, hi_s]` makespan bracket in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bracket {
    /// Least admissible makespan.
    pub lo_s: f64,
    /// Greatest admissible makespan (`∞` = "no upper bound asserted").
    pub hi_s: f64,
}

impl Bracket {
    /// Whether a measured makespan falls inside the bracket.
    pub fn contains(&self, measured_s: f64) -> bool {
        self.lo_s <= measured_s && measured_s <= self.hi_s
    }
}

/// Predicts makespan brackets for a run with one straggling sender.
///
/// Calibrated from a *measured healthy run* of the same job (same input,
/// `K`, `r`, fabric), not from first principles — the model only claims
/// how the straggler *changes* the makespan, which is the part the decode
/// discipline controls.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StragglerModel {
    /// Measured makespan of the healthy (no-fault) run, seconds.
    pub healthy_s: f64,
    /// The victim's slowdown.
    pub slowdown: Slowdown,
    /// Multiplicative headroom on the healthy makespan for the quorum
    /// bound (polling sweeps, thread scheduling). Default 6×.
    pub tolerance: f64,
    /// Additive headroom in seconds (clock granularity, one polling
    /// idle-sweep). Default 0.5 s.
    pub slack_s: f64,
}

impl StragglerModel {
    /// A model with the default tolerances.
    pub fn new(healthy_s: f64, slowdown: Slowdown) -> Self {
        StragglerModel {
            healthy_s,
            slowdown,
            tolerance: 6.0,
            slack_s: 0.5,
        }
    }

    /// Bracket for the quorum decode: the straggler is off every group's
    /// critical path, so the bound is independent of the injected delay —
    /// `[0, tolerance · healthy + slack]` whether the victim is 2× slow
    /// or gone entirely.
    pub fn quorum_bracket(&self) -> Bracket {
        Bracket {
            lo_s: 0.0,
            hi_s: self.tolerance * self.healthy_s + self.slack_s,
        }
    }

    /// Bracket for the paper's barrier-on-all decode: every node waits
    /// for the victim's first delayed multicast, so the makespan is at
    /// least the injected delay (and unboundedly more as delays cascade
    /// through the serial schedule — no upper bound is asserted). A
    /// blackhole never completes: the bracket is empty (`lo = hi = ∞`).
    pub fn all_bracket(&self) -> Bracket {
        Bracket {
            lo_s: self.slowdown.delay_s(),
            hi_s: f64::INFINITY,
        }
    }

    /// The quorum-over-all makespan advantage this model guarantees:
    /// `all.lo / quorum.hi` — below 1 the model predicts no separation
    /// (delay too small to measure), above 1 the quorum run must beat
    /// the barrier run by at least this factor. `∞` for a blackhole.
    pub fn predicted_speedup(&self) -> f64 {
        self.slowdown.delay_s() / self.quorum_bracket().hi_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_bracket_ignores_the_delay() {
        let mild = StragglerModel::new(0.1, Slowdown::DelayS(0.2));
        let dead = StragglerModel::new(0.1, Slowdown::Blackhole);
        assert_eq!(mild.quorum_bracket(), dead.quorum_bracket());
        assert!(mild.quorum_bracket().hi_s < 2.0);
    }

    #[test]
    fn all_bracket_floors_at_the_delay() {
        let m = StragglerModel::new(0.1, Slowdown::DelayS(0.4));
        assert_eq!(m.all_bracket().lo_s, 0.4);
        assert!(m.all_bracket().contains(0.4));
        assert!(m.all_bracket().contains(3.0));
        assert!(!m.all_bracket().contains(0.39));
    }

    #[test]
    fn blackhole_all_bracket_is_empty() {
        let m = StragglerModel::new(0.1, Slowdown::Blackhole);
        let b = m.all_bracket();
        assert_eq!(b.lo_s, f64::INFINITY);
        assert!(!b.contains(1e9));
    }

    #[test]
    fn speedup_grows_with_the_delay() {
        let t0 = 0.05;
        let s2 = StragglerModel::new(t0, Slowdown::DelayS(2.0 * t0));
        let s10 = StragglerModel::new(t0, Slowdown::DelayS(10.0 * t0));
        assert!(s10.predicted_speedup() > s2.predicted_speedup());
        assert_eq!(
            StragglerModel::new(t0, Slowdown::Blackhole).predicted_speedup(),
            f64::INFINITY
        );
    }

    #[test]
    fn brackets_include_their_endpoints() {
        let b = StragglerModel::new(0.1, Slowdown::DelayS(0.2)).quorum_bracket();
        assert!(b.contains(b.lo_s));
        assert!(b.contains(b.hi_s));
        assert!(!b.contains(b.hi_s + 1e-9));
    }
}
