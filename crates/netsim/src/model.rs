//! The end-to-end performance model: run statistics + transfer trace →
//! paper-style stage breakdown.

use cts_net::trace::Trace;

use crate::breakdown::StageBreakdown;
use crate::config::PerfModelConfig;
use crate::serial::{serial_makespan, serial_makespan_tree_unicast};
use crate::stats::RunStats;

/// Stage label used by the engines for shuffle traffic.
pub const SHUFFLE_STAGE: &str = "Shuffle";

/// Evaluates stage times from measured work counts under a calibration.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    cfg: PerfModelConfig,
}

impl PerfModel {
    /// A model with the given calibration.
    pub fn new(cfg: PerfModelConfig) -> Self {
        PerfModel { cfg }
    }

    /// The paper's EC2 calibration.
    pub fn ec2_paper() -> Self {
        PerfModel::new(PerfModelConfig::ec2_paper())
    }

    /// The underlying configuration.
    pub fn config(&self) -> &PerfModelConfig {
        &self.cfg
    }

    /// Modeled CodeGen time: `C(K, r+1)` group initializations.
    pub fn codegen_s(&self, stats: &RunStats) -> f64 {
        stats.num_groups as f64 * self.cfg.net.group_setup_s
    }

    /// Modeled Map time: slowest node's hashing plus per-file overhead.
    pub fn map_s(&self, stats: &RunStats) -> f64 {
        stats
            .per_node
            .iter()
            .map(|n| {
                n.map_input_bytes as f64 * stats.scale / self.cfg.compute.hash_bytes_per_sec
                    + n.files_mapped as f64 * self.cfg.compute.per_file_overhead_s
            })
            .fold(0.0, f64::max)
    }

    /// Modeled Pack (uncoded) / Encode (coded) time: slowest node's
    /// serialization (+ XOR, folded into the calibrated rate).
    pub fn pack_encode_s(&self, stats: &RunStats) -> f64 {
        stats
            .per_node
            .iter()
            .map(|n| n.pack_bytes as f64 * stats.scale / self.cfg.compute.pack_bytes_per_sec)
            .fold(0.0, f64::max)
    }

    /// Modeled Shuffle time under the paper's serial schedule.
    pub fn shuffle_s(&self, stats: &RunStats, trace: &Trace) -> f64 {
        serial_makespan(trace, SHUFFLE_STAGE, &self.cfg.net, stats.scale)
    }

    /// Shuffle time if every multicast is decomposed into its binomial-tree
    /// unicast hops (the `MPI_Bcast` software-tree ablation).
    pub fn shuffle_tree_unicast_s(&self, stats: &RunStats, trace: &Trace) -> f64 {
        serial_makespan_tree_unicast(trace, SHUFFLE_STAGE, &self.cfg.net, stats.scale)
    }

    /// Modeled Unpack / Decode time.
    pub fn unpack_decode_s(&self, stats: &RunStats) -> f64 {
        stats
            .per_node
            .iter()
            .map(|n| {
                n.unpack_bytes as f64 * stats.scale / self.cfg.compute.unpack_bytes_per_sec
                    + n.decode_work_bytes as f64 * stats.scale
                        / self.cfg.compute.decode_bytes_per_sec
            })
            .fold(0.0, f64::max)
    }

    /// Modeled Reduce time: slowest partition sort, with memory pressure.
    pub fn reduce_s(&self, stats: &RunStats) -> f64 {
        let mem = self.cfg.compute.memory_factor(stats.r);
        stats
            .per_node
            .iter()
            .map(|n| {
                n.reduce_input_bytes as f64 * stats.scale * mem
                    / self.cfg.compute.sort_bytes_per_sec
            })
            .fold(0.0, f64::max)
    }

    /// Full breakdown under the paper's serial schedule.
    pub fn evaluate(&self, stats: &RunStats, trace: &Trace) -> StageBreakdown {
        self.evaluate_with_shuffle(stats, self.shuffle_s(stats, trace))
    }

    /// Breakdown with an externally computed shuffle time (used by the
    /// parallel-shuffle and tree-unicast ablations).
    pub fn evaluate_with_shuffle(&self, stats: &RunStats, shuffle_s: f64) -> StageBreakdown {
        StageBreakdown {
            codegen_s: self.codegen_s(stats),
            map_s: self.map_s(stats),
            pack_encode_s: self.pack_encode_s(stats),
            shuffle_s,
            unpack_decode_s: self.unpack_decode_s(stats),
            reduce_s: self.reduce_s(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NodeStats;
    use cts_net::trace::{EventKind, TraceCollector};

    /// Hand-built stats mimicking TeraSort at K=16 over 12 GB.
    fn terasort_k16_stats() -> RunStats {
        let k = 16;
        let d: u64 = 12_000_000_000;
        let per = d / k as u64; // 750 MB input per node
        let sent = per - per / k as u64; // (K-1)/K of it leaves
        let mut stats = RunStats::new(k, 1);
        for n in stats.per_node.iter_mut() {
            *n = NodeStats {
                map_input_bytes: per,
                files_mapped: 1,
                pack_bytes: sent,
                sent_bytes: sent,
                recv_bytes: sent,
                unpack_bytes: sent,
                decode_work_bytes: 0,
                reduce_input_bytes: per,
            };
        }
        stats
    }

    fn terasort_k16_trace() -> cts_net::trace::Trace {
        let c = TraceCollector::new(true);
        let s = c.intern(SHUFFLE_STAGE);
        let d: u64 = 12_000_000_000;
        let per_transfer = d / 16 / 16; // 46.875 MB
        for src in 0..16usize {
            for dst in (0..16usize).filter(|&d2| d2 != src) {
                c.record(s, src, 1 << dst, per_transfer, EventKind::AppUnicast);
            }
        }
        c.snapshot()
    }

    #[test]
    fn table1_reproduced_within_tolerance() {
        // The calibration must land close to the paper's Table I:
        // Map 1.86, Pack 2.35, Shuffle 945.72, Unpack 0.85, Reduce 10.47.
        let model = PerfModel::ec2_paper();
        let stats = terasort_k16_stats();
        let trace = terasort_k16_trace();
        let b = model.evaluate(&stats, &trace);
        assert!((b.map_s - 1.86).abs() < 0.1, "map {}", b.map_s);
        assert!(
            (b.pack_encode_s - 2.35).abs() < 0.3,
            "pack {}",
            b.pack_encode_s
        );
        assert!(
            (b.shuffle_s - 945.72).abs() / 945.72 < 0.01,
            "shuffle {}",
            b.shuffle_s
        );
        assert!(
            (b.unpack_decode_s - 0.85).abs() < 0.1,
            "unpack {}",
            b.unpack_decode_s
        );
        assert!((b.reduce_s - 10.47).abs() < 0.3, "reduce {}", b.reduce_s);
        assert!(
            (b.total_s() - 961.25).abs() / 961.25 < 0.02,
            "total {}",
            b.total_s()
        );
        assert_eq!(b.codegen_s, 0.0);
    }

    #[test]
    fn scale_projects_byte_counts_only() {
        let model = PerfModel::ec2_paper();
        let mut stats = terasort_k16_stats();
        // Pretend we ran at 1% size with scale 100: divide the counts.
        for n in stats.per_node.iter_mut() {
            n.map_input_bytes /= 100;
            n.pack_bytes /= 100;
            n.sent_bytes /= 100;
            n.recv_bytes /= 100;
            n.unpack_bytes /= 100;
            n.reduce_input_bytes /= 100;
        }
        stats.scale = 100.0;
        let full = model.evaluate(&terasort_k16_stats(), &terasort_k16_trace());
        // Trace bytes also divided by 100 but scaled back by `scale`.
        let c = TraceCollector::new(true);
        let s = c.intern(SHUFFLE_STAGE);
        for src in 0..16usize {
            for dst in (0..16usize).filter(|&d2| d2 != src) {
                c.record(
                    s,
                    src,
                    1 << dst,
                    12_000_000_000 / 16 / 16 / 100,
                    EventKind::AppUnicast,
                );
            }
        }
        let scaled = model.evaluate(&stats, &c.snapshot());
        // Compute stages match exactly; shuffle differs only by the
        // latency term (identical) — totals agree within 0.1%.
        assert!((scaled.total_s() - full.total_s()).abs() / full.total_s() < 1e-3);
    }

    #[test]
    fn codegen_grows_with_groups() {
        let model = PerfModel::ec2_paper();
        let mut stats = RunStats::new(16, 3);
        stats.num_groups = 1820; // C(16,4)
        let t = model.codegen_s(&stats);
        // Paper Table II: 6.06 s.
        assert!((t - 6.0).abs() < 0.5, "codegen {t}");
        stats.num_groups = 38760; // C(20,6)
        let t = model.codegen_s(&stats);
        // Paper Table III: 140.91 s.
        assert!((t - 128.0).abs() < 15.0, "codegen {t}");
    }

    #[test]
    fn memory_penalty_increases_reduce_for_coded() {
        let model = PerfModel::ec2_paper();
        let mut uncoded = terasort_k16_stats();
        uncoded.r = 1;
        let mut coded = terasort_k16_stats();
        coded.r = 5;
        assert!(model.reduce_s(&coded) > model.reduce_s(&uncoded));
    }

    #[test]
    fn evaluate_with_shuffle_overrides_only_shuffle() {
        let model = PerfModel::ec2_paper();
        let stats = terasort_k16_stats();
        let trace = terasort_k16_trace();
        let a = model.evaluate(&stats, &trace);
        let b = model.evaluate_with_shuffle(&stats, 1.0);
        assert_eq!(a.map_s, b.map_s);
        assert_eq!(a.reduce_s, b.reduce_s);
        assert_eq!(b.shuffle_s, 1.0);
    }
}
