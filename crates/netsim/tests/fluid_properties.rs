//! Property tests of the fluid (parallel-shuffle) simulator: physics
//! bounds that must hold for arbitrary transfer sets.

use cts_net::trace::{EventKind, TraceEvent};
use cts_netsim::config::NetModelConfig;
use cts_netsim::fluid::simulate_parallel;
use proptest::prelude::*;

fn net(cap_mbps: f64) -> NetModelConfig {
    NetModelConfig {
        bandwidth_bits_per_sec: cap_mbps * 1e6,
        tcp_efficiency: 1.0,
        per_transfer_latency_s: 0.0,
        multicast_alpha: 0.0,
        group_setup_s: 0.0,
    }
}

fn ev(src: usize, dsts: u128, bytes: u64) -> TraceEvent {
    TraceEvent {
        seq: 0,
        stage: 0,
        job: 0,
        src: src as u16,
        dsts,
        bytes,
        overhead: 0,
        wire_copies: 1,
        kind: EventKind::AppUnicast,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulated makespan is bracketed by two physics bounds:
    /// * lower: the most loaded single link (egress of the busiest sender,
    ///   ingress of the busiest receiver) at full capacity;
    /// * upper: the fully serial schedule (sum of all transfer times).
    #[test]
    fn makespan_within_physics_bounds(
        k in 2usize..=6,
        plan in proptest::collection::vec((0usize..6, 0usize..6, 1u64..1_000_000), 1..24),
    ) {
        let cap = net(80.0); // 10 MB/s
        let rate = cap.effective_bytes_per_sec();
        let mut by_sender = vec![Vec::new(); k];
        let mut egress = vec![0u64; k];
        let mut ingress = vec![0u64; k];
        let mut total = 0u64;
        for (s, d, bytes) in plan {
            let (s, d) = (s % k, d % k);
            if s == d {
                continue;
            }
            by_sender[s].push(ev(s, 1 << d, bytes));
            egress[s] += bytes;
            ingress[d] += bytes;
            total += bytes;
        }
        prop_assume!(total > 0);
        let out = simulate_parallel(&by_sender, &cap);

        let lower = egress
            .iter()
            .chain(ingress.iter())
            .cloned()
            .max()
            .unwrap() as f64
            / rate;
        let upper = total as f64 / rate;
        prop_assert!(
            out.makespan_s >= lower - 1e-6,
            "makespan {} below link bound {lower}",
            out.makespan_s
        );
        prop_assert!(
            out.makespan_s <= upper + 1e-6,
            "makespan {} above serial bound {upper}",
            out.makespan_s
        );
        // Every flow is recorded exactly once.
        let scheduled: usize = by_sender.iter().map(|q| q.len()).sum();
        prop_assert_eq!(out.flows.len(), scheduled);
    }

    /// Per-sender queues execute in order: flow i+1 of a sender never
    /// starts before flow i completes.
    #[test]
    fn sender_queues_are_sequential(
        bytes in proptest::collection::vec(1u64..500_000, 2..10),
    ) {
        let cap = net(80.0);
        let queue: Vec<TraceEvent> = bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| ev(0, 1 << (1 + i % 3), b))
            .collect();
        let out = simulate_parallel(&[queue], &cap);
        let mut flows = out.flows.clone();
        flows.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
        for pair in flows.windows(2) {
            prop_assert!(pair[1].start_s >= pair[0].end_s - 1e-9);
        }
    }

    /// Doubling the link capacity halves the makespan (latency-free,
    /// work-conserving fluid).
    #[test]
    fn makespan_scales_inversely_with_capacity(
        plan in proptest::collection::vec((0usize..4, 0usize..4, 1u64..100_000), 1..12),
    ) {
        let mut by_sender = vec![Vec::new(); 4];
        let mut any = false;
        for (s, d, bytes) in plan {
            if s != d {
                by_sender[s].push(ev(s, 1 << d, bytes));
                any = true;
            }
        }
        prop_assume!(any);
        let slow = simulate_parallel(&by_sender, &net(40.0)).makespan_s;
        let fast = simulate_parallel(&by_sender, &net(80.0)).makespan_s;
        prop_assert!((slow - 2.0 * fast).abs() / slow < 1e-6);
    }
}
