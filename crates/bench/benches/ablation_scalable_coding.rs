//! **Ablation: scalable coding via pods** (paper §VI, future direction 2).
//!
//! CodeGen cost grows as C(K, r+1) — 38 760 groups at K = 20, r = 5, and
//! combinatorially worse beyond. The pod-partitioned variant codes only
//! within disjoint pods of g nodes: group count falls to (K/g)·C(g, r+1),
//! while communication load rises to `(g/K)(1/r)(1−r/g) + (1−g/K)` (the
//! cross-pod traffic is uncoded).
//!
//! The honest result this ablation shows: at the paper's scale (K ≤ 20)
//! flat coding still wins — its CodeGen (≤ 141 s) is cheaper than the
//! extra cross-pod traffic. But CodeGen grows as K^(r+1)/(r+1)! while
//! shuffle time is bounded, so pods win from K ≈ 30 onward: the paper's
//! scalability concern, quantified.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_scalable_coding
//! ```

use cts_core::combinatorics::binomial;
use cts_core::groups::PodGroups;
use cts_core::theory;
use cts_netsim::config::{NetModelConfig, PerfModelConfig};

/// CodeGen + shuffle for the flat scheme at (K, r) over `d` bytes.
fn flat_cost(k: usize, r: usize, d: f64, net: &NetModelConfig) -> (f64, f64) {
    let groups = binomial(k as u64, r as u64 + 1);
    let codegen = groups as f64 * net.group_setup_s;
    let shuffle = d * theory::coded_comm_load(r, k) * net.multicast_penalty(r as u32)
        / net.effective_bytes_per_sec();
    (codegen, shuffle)
}

/// CodeGen + shuffle for pods of size `g`.
fn pod_cost(k: usize, r: usize, g: usize, d: f64, net: &NetModelConfig) -> (f64, f64) {
    let pods = PodGroups::new(k, r, g).unwrap();
    let codegen = pods.num_groups() as f64 * net.group_setup_s;
    let in_pod = d * (g as f64 / k as f64) * (1.0 - r as f64 / g as f64) / r as f64;
    let cross = d * (1.0 - g as f64 / k as f64);
    let shuffle =
        (in_pod * net.multicast_penalty(r as u32) + cross) / net.effective_bytes_per_sec();
    (codegen, shuffle)
}

fn main() {
    let d = 12e9; // the paper's 12 GB
    let net = PerfModelConfig::ec2_paper().net;
    let r = 5usize;
    let g = 10usize;

    println!("flat coding vs pods of g = {g}, r = {r}, 12 GB (CodeGen + Shuffle only):\n");
    println!(
        "{:>4} {:>12} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>8}",
        "K", "flat groups", "flat CG", "flat total", "pod groups", "pod CG", "pod total", "winner"
    );

    let mut crossover: Option<usize> = None;
    for k in [10usize, 20, 30, 40, 50, 60] {
        if k % g != 0 {
            continue;
        }
        let (fcg, fsh) = flat_cost(k, r, d, &net);
        let (pcg, psh) = pod_cost(k, r, g, d, &net);
        let flat_total = fcg + fsh;
        let pod_total = pcg + psh;
        let winner = if pod_total < flat_total {
            "pods"
        } else {
            "flat"
        };
        if winner == "pods" && crossover.is_none() {
            crossover = Some(k);
        }
        println!(
            "{k:>4} {:>12} {fcg:>10.1} {flat_total:>10.1} | {:>10} {pcg:>10.1} {pod_total:>10.1} {winner:>8}",
            binomial(k as u64, r as u64 + 1),
            PodGroups::new(k, r, g).unwrap().num_groups(),
        );
    }

    println!("\nload comparison at K = 20 (pods pay in bytes what they save in CodeGen):");
    for g2 in [10usize, 20] {
        let load = if g2 == 20 {
            theory::coded_comm_load(r, 20)
        } else {
            theory::pod_comm_load(r, 20, g2)
        };
        let reduction = binomial(20, r as u64 + 1) as f64
            / PodGroups::new(20, r, g2)
                .map(|p| p.num_groups() as f64)
                .unwrap_or(binomial(20, r as u64 + 1) as f64);
        println!("  g = {g2:>2}: L = {load:.4}, CodeGen reduction {reduction:>6.1}×");
    }

    // Cross-check the closed forms against the *real* pod engine at a
    // small configuration: measured wire load must match pod_comm_load.
    {
        use cts_mapreduce::pods::run_coded_pods;
        use cts_mapreduce::stage::EngineConfig;
        use cts_mapreduce::workload::{InputFormat, Workload};

        struct ByteSort;
        impl Workload for ByteSort {
            fn name(&self) -> &str {
                "bytesort"
            }
            fn format(&self) -> InputFormat {
                InputFormat::FixedWidth(1)
            }
            fn map_file(&self, file: &[u8], parts: usize) -> Vec<Vec<u8>> {
                let mut out = vec![Vec::new(); parts];
                for &b in file {
                    out[b as usize % parts].push(b);
                }
                out
            }
            fn reduce(&self, _p: usize, data: &[u8]) -> Vec<u8> {
                let mut v = data.to_vec();
                v.sort_unstable();
                v
            }
        }

        let (ek, er, eg) = (8usize, 2usize, 4usize);
        let bytes: Vec<u8> = (0..200_000usize).map(|i| (i % 251) as u8).collect();
        let input = bytes::Bytes::from(bytes);
        let run = run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(ek, er), eg)
            .expect("pod engine");
        let measured = run.stats.comm_load(input.len() as u64);
        let predicted = theory::pod_comm_load(er, ek, eg);
        println!(
            "\nengine cross-check at K={ek}, r={er}, g={eg}: measured load {measured:.4} vs theory {predicted:.4}"
        );
        assert!(
            (measured - predicted).abs() / predicted < 0.15,
            "pod engine load must match the closed form"
        );
    }

    // Shape assertions.
    let (fcg20, fsh20) = flat_cost(20, r, d, &net);
    let (pcg20, psh20) = pod_cost(20, r, g, d, &net);
    assert!(pcg20 < fcg20 / 50.0, "pods slash CodeGen by ≫50×");
    assert!(psh20 > fsh20, "pods pay more shuffle");
    assert!(
        fcg20 + fsh20 < pcg20 + psh20,
        "at the paper's K = 20 flat still wins"
    );
    let k_star = crossover.expect("pods must win at some K");
    assert!(
        (30..=50).contains(&k_star),
        "crossover at K = {k_star} should land between 30 and 50"
    );
    println!("\npods overtake flat coding at K = {k_star} — scalable coding pays off\nexactly where the paper's CodeGen concern kicks in. ✓");
}
