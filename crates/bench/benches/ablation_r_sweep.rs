//! **Ablation: the impact of the redundancy parameter r** (paper §V-C).
//!
//! The paper observes: shuffle time falls ≈ r×, Map grows linearly,
//! CodeGen grows as C(K, r+1), so speedup first rises then falls; it
//! bounds r ≤ 5. This sweep runs the real engine at K = 16 for r = 1…8
//! and prints modeled paper-scale totals, the eq. (4) ideal, and the gap.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_r_sweep
//! ```

use cts_bench::Experiment;
use cts_core::combinatorics::binomial;
use cts_core::theory;

fn main() {
    let k = 16;
    let exp = Experiment {
        records: cts_bench::env_usize("CTS_RECORDS", 60_000),
        ..Experiment::paper(k)
    };
    let base = exp.run_uncoded();
    let (tm, ts, tr) = (
        base.breakdown.map_s,
        base.breakdown.shuffle_s,
        base.breakdown.reduce_s,
    );

    println!("r sweep at K = {k} (12 GB modeled):\n");
    println!(
        "{:>3} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "r", "CodeGen", "Map", "Shuffle", "total", "speedup", "eq.(4)", "groups"
    );
    println!(
        "{:>3} {:>9} {:>9} {:>9} {:>9.1} {:>10} {:>9.1} {:>10}",
        1,
        "-",
        format!("{tm:.1}"),
        format!("{ts:.1}"),
        base.breakdown.total_s(),
        "1.00x",
        tm + ts + tr,
        "-"
    );

    let mut speedups = vec![1.0f64];
    for r in 2..=8usize {
        let res = exp.run_coded(r);
        let total = res.breakdown.total_s();
        let speedup = base.breakdown.total_s() / total;
        speedups.push(speedup);
        println!(
            "{:>3} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.2}x {:>9.1} {:>10}",
            r,
            res.breakdown.codegen_s,
            res.breakdown.map_s,
            res.breakdown.shuffle_s,
            total,
            speedup,
            theory::predicted_total_time(r, tm, ts, tr),
            binomial(k as u64, r as u64 + 1),
        );
    }

    // Large-r regime, analytic: CodeGen ∝ C(K, r+1) with eq. (4) for the
    // rest — shows where the curve must turn at bigger K.
    println!("\nanalytic large-r regime at K = 20 (CodeGen wall):");
    for r in [5usize, 7, 9, 11] {
        let groups = binomial(20, r as u64 + 1);
        let codegen = groups as f64 * 3.3e-3;
        let rest = theory::predicted_total_time(r, 1.47, 960.07, 8.29);
        println!(
            "  r = {r:>2}: C(20,{:>2}) = {groups:>7} groups → CodeGen {codegen:>6.1} s, total ≳ {:>7.1} s",
            r + 1,
            codegen + rest
        );
    }

    // Shape: speedup strictly improves through the paper's range (r ≤ 5).
    assert!(speedups.windows(2).take(4).all(|w| w[1] > w[0]));
    // And the paper's headline range covers our r = 3 and r = 5 points.
    assert!(speedups[2] > 1.9 && speedups[4] > 2.8);
    println!("\nshape checks passed ✓");
}
