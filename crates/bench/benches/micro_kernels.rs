//! Criterion micro-benchmarks of the hot kernels: XOR, the GF(256)
//! field kernels (scalar vs runtime-dispatched SIMD), encode, decode,
//! hash partitioning, pack/unpack-style copying, sort kernels, and
//! combinatorial enumeration.
//!
//! ```sh
//! cargo bench -p cts-bench --bench micro_kernels
//! ```

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cts_core::combinatorics::Combinations;
use cts_core::decode::Decoder;
use cts_core::encode::{EncodeScratch, Encoder};
use cts_core::gf256::{add_scaled_slice_with, Gf256Kernel};
use cts_core::intermediate::MapOutputStore;
use cts_core::packet::CodedPacket;
use cts_core::placement::PlacementPlan;
use cts_core::subset::NodeSet;
use cts_core::xor::xor_into;
use cts_mapreduce::workload::Workload;
use cts_terasort::record::checksum;
use cts_terasort::sort::{sort_records_with, SortKernel, SortScratch};
use cts_terasort::teragen;
use cts_terasort::workload::TeraSortWorkload;

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_into");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let src = vec![0xA5u8; size];
        let mut dst = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| xor_into(std::hint::black_box(&mut dst), std::hint::black_box(&src)));
        });
    }
    group.finish();
}

fn bench_field_kernels(c: &mut Criterion) {
    // GB/s per coding-field kernel: the GF(2) XOR fold next to the
    // GF(256) `dst ^= c ⊙ src` kernels — scalar log/exp tables vs the
    // runtime-dispatched SIMD path (PSHUFB nibble tables on AVX2,
    // `vqtbl1q_u8` on NEON). Unsupported kernels self-skip so the bench
    // runs everywhere; the SIMD row only appears on hosts that have it.
    let mut group = c.benchmark_group("field_kernels");
    let coeff = 0x8E; // an arbitrary nonzero scalar
    for size in [4 * 1024usize, 64 * 1024, 1 << 20] {
        let src = vec![0xA5u8; size];
        let mut dst = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("gf2_xor", size), &size, |b, _| {
            b.iter(|| xor_into(std::hint::black_box(&mut dst), std::hint::black_box(&src)));
        });
        for kernel in Gf256Kernel::ALL {
            if !kernel.supported() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(kernel.to_string(), size), &size, |b, _| {
                b.iter(|| {
                    add_scaled_slice_with(
                        kernel,
                        std::hint::black_box(&mut dst),
                        std::hint::black_box(&src),
                        coeff,
                    )
                });
            });
        }
    }
    group.finish();
}

/// Builds keep-rule stores for encode/decode benchmarks.
fn stores_for(k: usize, r: usize, value_len: usize) -> Vec<MapOutputStore> {
    let plan = PlacementPlan::new(k, r).unwrap();
    (0..k)
        .map(|node| {
            let mut st = MapOutputStore::new();
            for fid in plan.files_of_node(node) {
                let f = plan.nodes_of_file(fid);
                for t in 0..k {
                    if plan.keeps_intermediate(node, f, t) {
                        st.insert(t, f, Bytes::from(vec![(t * 7) as u8; value_len]));
                    }
                }
            }
            st
        })
        .collect()
}

fn bench_encode_decode(c: &mut Criterion) {
    let (k, r) = (8usize, 3usize);
    let value_len = 64 * 1024;
    let stores = stores_for(k, r, value_len);
    let enc = Encoder::new(k, r, 0).unwrap();
    let groups: Vec<NodeSet> = enc
        .groups()
        .groups_of_node(0)
        .map(|(_, m)| m)
        .take(8)
        .collect();

    let mut group = c.benchmark_group("encode_group");
    group.throughput(Throughput::Bytes((value_len * groups.len()) as u64));
    group.bench_function(format!("k{k}_r{r}_64k"), |b| {
        b.iter(|| {
            for m in &groups {
                std::hint::black_box(enc.encode_group(*m, &stores[0]).unwrap());
            }
        });
    });
    group.finish();

    // Decode: node 1 decodes node 0's packets.
    let packets: Vec<CodedPacket> = groups
        .iter()
        .filter(|m| m.contains(1))
        .map(|m| enc.encode_group(*m, &stores[0]).unwrap())
        .collect();
    let dec = Decoder::new(k, r, 1).unwrap();
    let mut group = c.benchmark_group("decode_packet");
    group.throughput(Throughput::Bytes(
        packets
            .iter()
            .map(|p| p.payload.len() as u64 * r as u64)
            .sum(),
    ));
    group.bench_function(format!("k{k}_r{r}_64k"), |b| {
        b.iter(|| {
            for p in &packets {
                std::hint::black_box(dec.decode_packet(p, &stores[1]).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_packet_wire(c: &mut Criterion) {
    let (k, r) = (8usize, 3usize);
    let stores = stores_for(k, r, 64 * 1024);
    let enc = Encoder::new(k, r, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let wire = pkt.to_bytes();
    let wire_frame = Bytes::from(wire.clone());
    let mut group = c.benchmark_group("packet_wire");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("serialize", |b| {
        b.iter(|| std::hint::black_box(pkt.to_bytes()));
    });
    group.bench_function("serialize_into_reused", |b| {
        let mut out = Vec::with_capacity(wire.len());
        b.iter(|| {
            out.clear();
            pkt.write_into(&mut out);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(CodedPacket::from_bytes(&wire).unwrap()));
    });
    group.bench_function("parse_zero_copy", |b| {
        let mut shell = CodedPacket::empty();
        b.iter(|| {
            shell.read_wire(std::hint::black_box(&wire_frame)).unwrap();
            std::hint::black_box(shell.payload.len())
        });
    });
    group.bench_function("roundtrip_pooled", |b| {
        // The full warm send/receive kernel: write_into a reused buffer,
        // zero-copy parse into a reused shell.
        let mut out = Vec::with_capacity(wire.len());
        let mut shell = CodedPacket::empty();
        b.iter(|| {
            out.clear();
            pkt.write_into(&mut out);
            shell.read_wire(&wire_frame).unwrap();
            std::hint::black_box(shell.seg_lens.len())
        });
    });
    group.finish();
}

fn bench_encode_pooled_vs_fresh(c: &mut Criterion) {
    let (k, r) = (8usize, 3usize);
    let value_len = 64 * 1024;
    let stores = stores_for(k, r, value_len);
    let enc = Encoder::new(k, r, 0).unwrap();
    let groups: Vec<NodeSet> = enc
        .groups()
        .groups_of_node(0)
        .map(|(_, m)| m)
        .take(8)
        .collect();
    let mut group = c.benchmark_group("encode_pooled_vs_fresh");
    group.throughput(Throughput::Bytes((value_len * groups.len()) as u64));
    group.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            for m in &groups {
                std::hint::black_box(enc.encode_group(*m, &stores[0]).unwrap());
            }
        });
    });
    group.bench_function("pooled_scratch", |b| {
        let mut scratch = EncodeScratch::new();
        b.iter(|| {
            for m in &groups {
                enc.encode_group_into(*m, &stores[0], &mut scratch).unwrap();
                std::hint::black_box(scratch.payload.len());
            }
        });
    });
    group.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let records = 50_000;
    let input = teragen::generate(records, 17);
    let mut group = c.benchmark_group("checksum");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("word_at_a_time_5mb", |b| {
        b.iter(|| std::hint::black_box(checksum(&input)));
    });
    group.bench_function("bytewise_reference_5mb", |b| {
        b.iter(|| std::hint::black_box(cts_terasort::record::checksum_bytewise(&input)));
    });
    group.finish();
}

fn bench_map_hashing(c: &mut Criterion) {
    let records = 50_000;
    let input = teragen::generate(records, 11);
    let workload = TeraSortWorkload::range(16);
    let mut group = c.benchmark_group("map_hash_partition");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("k16", |b| {
        b.iter(|| std::hint::black_box(workload.map_file(&input, 16)));
    });
    group.finish();
}

fn bench_sort_kernels(c: &mut Criterion) {
    let records = 100_000;
    let input = teragen::generate(records, 13);
    let mut group = c.benchmark_group("reduce_sort");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for kernel in SortKernel::ALL {
        group.bench_function(format!("{kernel}_100k"), |b| {
            let mut scratch = SortScratch::new();
            b.iter(|| std::hint::black_box(sort_records_with(&input, kernel, &mut scratch)));
        });
    }
    group.finish();
}

fn bench_sort_kernels_1m(c: &mut Criterion) {
    // The acceptance-scale comparison: key-index entries vs whole-record
    // radix at 1 M records (100 MB). Skippable quick mode: CTS_RECORDS_1M=0
    // disables the group entirely.
    let records = cts_bench::env_usize("CTS_RECORDS_1M", 1_000_000);
    if records == 0 {
        return;
    }
    let input = teragen::generate(records, 14);
    let mut group = c.benchmark_group("reduce_sort_1m");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for kernel in [SortKernel::LsdRadix, SortKernel::KeyIndex] {
        group.bench_function(format!("{kernel}_{records}"), |b| {
            let mut scratch = SortScratch::new();
            b.iter(|| std::hint::black_box(sort_records_with(&input, kernel, &mut scratch)));
        });
    }
    group.finish();
}

fn bench_codegen_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen_enumeration");
    for (k, r) in [(16usize, 3usize), (16, 5), (20, 5)] {
        group.bench_function(format!("k{k}_r{r}"), |b| {
            b.iter(|| {
                let count = Combinations::new(k, r + 1).count();
                std::hint::black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_xor,
    bench_field_kernels,
    bench_encode_decode,
    bench_encode_pooled_vs_fresh,
    bench_packet_wire,
    bench_checksum,
    bench_map_hashing,
    bench_sort_kernels,
    bench_sort_kernels_1m,
    bench_codegen_enumeration
);
criterion_main!(benches);
