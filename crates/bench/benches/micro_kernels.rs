//! Criterion micro-benchmarks of the hot kernels: XOR, encode, decode,
//! hash partitioning, pack/unpack-style copying, sort kernels, and
//! combinatorial enumeration.
//!
//! ```sh
//! cargo bench -p cts-bench --bench micro_kernels
//! ```

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cts_core::combinatorics::Combinations;
use cts_core::decode::Decoder;
use cts_core::encode::Encoder;
use cts_core::intermediate::MapOutputStore;
use cts_core::packet::CodedPacket;
use cts_core::placement::PlacementPlan;
use cts_core::subset::NodeSet;
use cts_core::xor::xor_into;
use cts_mapreduce::workload::Workload;
use cts_terasort::sort::{sort_records, SortKernel};
use cts_terasort::teragen;
use cts_terasort::workload::TeraSortWorkload;

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_into");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let src = vec![0xA5u8; size];
        let mut dst = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| xor_into(std::hint::black_box(&mut dst), std::hint::black_box(&src)));
        });
    }
    group.finish();
}

/// Builds keep-rule stores for encode/decode benchmarks.
fn stores_for(k: usize, r: usize, value_len: usize) -> Vec<MapOutputStore> {
    let plan = PlacementPlan::new(k, r).unwrap();
    (0..k)
        .map(|node| {
            let mut st = MapOutputStore::new();
            for fid in plan.files_of_node(node) {
                let f = plan.nodes_of_file(fid);
                for t in 0..k {
                    if plan.keeps_intermediate(node, f, t) {
                        st.insert(t, f, Bytes::from(vec![(t * 7) as u8; value_len]));
                    }
                }
            }
            st
        })
        .collect()
}

fn bench_encode_decode(c: &mut Criterion) {
    let (k, r) = (8usize, 3usize);
    let value_len = 64 * 1024;
    let stores = stores_for(k, r, value_len);
    let enc = Encoder::new(k, r, 0).unwrap();
    let groups: Vec<NodeSet> = enc
        .groups()
        .groups_of_node(0)
        .map(|(_, m)| m)
        .take(8)
        .collect();

    let mut group = c.benchmark_group("encode_group");
    group.throughput(Throughput::Bytes((value_len * groups.len()) as u64));
    group.bench_function(format!("k{k}_r{r}_64k"), |b| {
        b.iter(|| {
            for m in &groups {
                std::hint::black_box(enc.encode_group(*m, &stores[0]).unwrap());
            }
        });
    });
    group.finish();

    // Decode: node 1 decodes node 0's packets.
    let packets: Vec<CodedPacket> = groups
        .iter()
        .filter(|m| m.contains(1))
        .map(|m| enc.encode_group(*m, &stores[0]).unwrap())
        .collect();
    let dec = Decoder::new(k, r, 1).unwrap();
    let mut group = c.benchmark_group("decode_packet");
    group.throughput(Throughput::Bytes(
        packets
            .iter()
            .map(|p| p.payload.len() as u64 * r as u64)
            .sum(),
    ));
    group.bench_function(format!("k{k}_r{r}_64k"), |b| {
        b.iter(|| {
            for p in &packets {
                std::hint::black_box(dec.decode_packet(p, &stores[1]).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_packet_wire(c: &mut Criterion) {
    let (k, r) = (8usize, 3usize);
    let stores = stores_for(k, r, 64 * 1024);
    let enc = Encoder::new(k, r, 0).unwrap();
    let pkt = enc.encode_all(&stores[0]).unwrap().remove(0);
    let wire = pkt.to_bytes();
    let mut group = c.benchmark_group("packet_wire");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("serialize", |b| {
        b.iter(|| std::hint::black_box(pkt.to_bytes()));
    });
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(CodedPacket::from_bytes(&wire).unwrap()));
    });
    group.finish();
}

fn bench_map_hashing(c: &mut Criterion) {
    let records = 50_000;
    let input = teragen::generate(records, 11);
    let workload = TeraSortWorkload::range(16);
    let mut group = c.benchmark_group("map_hash_partition");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("k16", |b| {
        b.iter(|| std::hint::black_box(workload.map_file(&input, 16)));
    });
    group.finish();
}

fn bench_sort_kernels(c: &mut Criterion) {
    let records = 100_000;
    let input = teragen::generate(records, 13);
    let mut group = c.benchmark_group("reduce_sort");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("comparison_100k", |b| {
        b.iter(|| std::hint::black_box(sort_records(&input, SortKernel::Comparison)));
    });
    group.bench_function("lsd_radix_100k", |b| {
        b.iter(|| std::hint::black_box(sort_records(&input, SortKernel::LsdRadix)));
    });
    group.finish();
}

fn bench_codegen_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen_enumeration");
    for (k, r) in [(16usize, 3usize), (16, 5), (20, 5)] {
        group.bench_function(format!("k{k}_r{r}"), |b| {
            b.iter(|| {
                let count = Combinations::new(k, r + 1).count();
                std::hint::black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_xor,
    bench_encode_decode,
    bench_packet_wire,
    bench_map_hashing,
    bench_sort_kernels,
    bench_codegen_enumeration
);
criterion_main!(benches);
