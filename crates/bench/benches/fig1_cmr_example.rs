//! **Fig. 1** — the Coded MapReduce toy example: Q = 3 functions, N = 6
//! files, K = 3 nodes. Communication loads: 12 (uncoded r = 1) →
//! 6 (r = 2, uncoded shuffle) → 3 (r = 2, coded) intermediate-value units.
//!
//! Reproduced with the real coding layer; the 2× coded gain is exact.
//!
//! ```sh
//! cargo bench -p cts-bench --bench fig1_cmr_example
//! ```

use bytes::Bytes;
use cts_core::decode::DecodePipeline;
use cts_core::encode::Encoder;
use cts_core::intermediate::MapOutputStore;
use cts_core::placement::PlacementPlan;
use cts_core::theory;

fn main() {
    let k = 3;
    // Fig. 1 uses 6 unit-size files; the canonical placement uses C(3,2)=3
    // files of 2 units each. All counts below are in paper units.
    const UNITS_PER_FILE_R2: usize = 2;

    // (a) Uncoded, r = 1: node i holds files {2i, 2i+1}; needs its
    // function's value from all 6 files.
    let uncoded_transfers: usize = (0..k).map(|_| 6 - 2).sum();
    println!("Fig. 1(a) uncoded r=1 : {uncoded_transfers:>2} unit transfers (paper: 12)");
    assert_eq!(uncoded_transfers, 12);

    // (b) r = 2, still uncoded: each node stores 2 of the 3 double files →
    // misses 1 double file = 2 units.
    let plan = PlacementPlan::new(k, 2).unwrap();
    let r2_uncoded: usize = (0..k)
        .map(|node| {
            let have: Vec<u64> = plan.files_of_node(node).map(|f| f.0).collect();
            (plan.num_files() as usize - have.len()) * UNITS_PER_FILE_R2
        })
        .sum();
    println!("Fig. 1(b) uncoded r=2 : {r2_uncoded:>2} unit transfers (paper:  6)");
    assert_eq!(r2_uncoded, 6);

    // (b) r = 2, coded: run real encode/decode. Each double file yields a
    // 2-unit intermediate per function; each packet XORs two half-value
    // (1-unit) segments → 1 unit on the wire.
    let unit = 64usize; // bytes per paper unit
    let mut stores: Vec<MapOutputStore> = (0..k).map(|_| MapOutputStore::new()).collect();
    for (node, store) in stores.iter_mut().enumerate() {
        for fid in plan.files_of_node(node) {
            let file_nodes = plan.nodes_of_file(fid);
            for t in 0..k {
                if plan.keeps_intermediate(node, file_nodes, t) {
                    let data = vec![(t * 16 + fid.0 as usize) as u8; UNITS_PER_FILE_R2 * unit];
                    store.insert(t, file_nodes, Bytes::from(data));
                }
            }
        }
    }
    let mut packets = Vec::new();
    for (sender, store) in stores.iter().enumerate() {
        let enc = Encoder::new(k, 2, sender).unwrap();
        packets.extend(enc.encode_all(store).unwrap());
    }
    let coded_units: usize = packets.iter().map(|p| p.payload.len() / unit).sum();
    println!("Fig. 1(b) coded   r=2 : {coded_units:>2} unit multicasts (paper:  3)");
    assert_eq!(packets.len(), 3);
    assert_eq!(coded_units, 3);

    // Everyone decodes successfully.
    let mut decoded = 0;
    for (node, store) in stores.iter().enumerate() {
        let mut pipe = DecodePipeline::new(k, 2, node).unwrap();
        for pkt in packets
            .iter()
            .filter(|p| p.group.contains(node) && p.sender != node)
        {
            if pipe.accept(pkt, store).unwrap().is_some() {
                decoded += 1;
            }
        }
    }
    assert_eq!(decoded, 3, "each node recovers its one missing value");

    println!(
        "\nnormalized loads: uncoded r=1 {:.3}, uncoded r=2 {:.3}, coded r=2 {:.3}",
        theory::uncoded_comm_load(1, 3),
        theory::uncoded_comm_load(2, 3),
        theory::coded_comm_load(2, 3),
    );
    println!("ratios 12 : 6 : 3 — the 2× in-network coding gain. ✓");
}
