//! **Ablation** — recovery sweep: one rank is killed fail-stop at each
//! stage boundary (mid-Map, mid-Encode, mid-Shuffle, pre-Reduce) and the
//! sort runs once with speculative recovery and once with recovery off.
//!
//! With the MDS quorum decode a single death never starves a group, so
//! speculative recovery pays only *detection* (the health layer's probed
//! death deadline) *plus the missing work* (re-executing the dead rank's
//! replicated map share and adopting its reduce partition) — never a
//! restart. Every recovered makespan must land inside the
//! `cts_netsim::recovery` model's bracket and the output is byte-identical
//! to the healthy run's; with recovery off the same death surfaces as a
//! typed error down the fail-fast path, with no deadline waits at all.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_recovery
//! ```

use std::time::{Duration, Instant};

use cts_bench::env_usize;
use cts_bench::results::BenchDoc;
use cts_core::decode::DecodeMode;
use cts_core::field::FieldKind;
use cts_mapreduce::error::EngineError;
use cts_mapreduce::stage::RecoveryMode;
use cts_net::fault::{CrashPoint, CrashSpec};
use cts_net::health::HealthConfig;
use cts_netsim::recovery::RecoveryModel;
use cts_terasort::driver::{run_coded_terasort, SortJob, SortRun};
use cts_terasort::teragen;
use serde::json::Value;

const HEARTBEAT: Duration = Duration::from_millis(10);

struct Point {
    label: String,
    recovered_s: f64,
    failfast_s: f64,
    recovered_hi_s: f64,
    failfast_hi_s: f64,
}

fn timed(
    input: &bytes::Bytes,
    k: usize,
    r: usize,
    recovery: RecoveryMode,
    crash: Option<CrashSpec>,
) -> (cts_mapreduce::Result<SortRun>, f64) {
    let mut job = SortJob::local(k, r)
        .with_field(FieldKind::Gf256)
        .with_decode(DecodeMode::Quorum)
        .with_recovery(recovery)
        .with_heartbeat(HEARTBEAT);
    if let Some(spec) = crash {
        job.engine = job.engine.with_crash(spec);
    }
    let started = Instant::now();
    let run = run_coded_terasort(input.clone(), &job);
    (run, started.elapsed().as_secs_f64())
}

fn main() {
    let (k, r) = (8usize, 3usize);
    let victim = 3usize;
    let records = env_usize("CTS_RECORDS", 4_000).min(50_000);
    let input = teragen::generate(records, 2017);

    println!("Recovery sweep — K = {k}, r = {r}, GF(256) quorum, victim rank {victim}");
    println!(
        "({records} records; heartbeat {} ms, death deadline {} ms)\n",
        HEARTBEAT.as_millis(),
        HealthConfig::from_heartbeat(HEARTBEAT)
            .death_deadline()
            .as_millis()
    );

    let (healthy, healthy_s) = timed(&input, k, r, RecoveryMode::Speculative, None);
    let healthy = healthy.expect("healthy baseline");
    healthy.validate().expect("TeraValidate healthy");
    println!("healthy makespan: {healthy_s:.3} s\n");

    let detect_s = HealthConfig::from_heartbeat(HEARTBEAT)
        .death_deadline()
        .as_secs_f64();
    let model = RecoveryModel::new(healthy_s, detect_s);

    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "crash point", "recovered (s)", "fail-fast (s)", "identical"
    );

    let mut points: Vec<Point> = Vec::new();
    for point in [
        CrashPoint::MidMap,
        CrashPoint::MidEncode,
        CrashPoint::AfterSends(2),
        CrashPoint::PreReduce,
    ] {
        let crash = CrashSpec {
            rank: victim,
            point,
        };

        let (recovered, recovered_s) = timed(&input, k, r, RecoveryMode::Speculative, Some(crash));
        let recovered = recovered.expect("speculative recovery must complete");
        recovered.validate().expect("TeraValidate recovered");
        assert_eq!(
            recovered.outcome.outputs, healthy.outcome.outputs,
            "{point}: recovered output diverged"
        );
        assert!(
            model.speculative_bracket().contains(recovered_s),
            "{point}: recovered makespan {recovered_s:.3}s outside {:?}",
            model.speculative_bracket()
        );

        let (failed, failfast_s) = timed(&input, k, r, RecoveryMode::Off, Some(crash));
        assert!(
            matches!(failed, Err(EngineError::RankDied { rank, .. }) if rank == victim),
            "{point}: recovery off must fail typed"
        );
        assert!(
            model.failfast_bracket().contains(failfast_s),
            "{point}: fail-fast took {failfast_s:.3}s, outside {:?}",
            model.failfast_bracket()
        );

        println!(
            "{point:>12} {recovered_s:>14.3} {failfast_s:>14.3} {:>10}",
            "yes"
        );
        points.push(Point {
            label: point.to_string(),
            recovered_s,
            failfast_s,
            recovered_hi_s: model.speculative_bracket().hi_s,
            failfast_hi_s: model.failfast_bracket().hi_s,
        });
    }

    let worst = points.iter().map(|p| p.recovered_s).fold(0.0f64, f64::max);
    println!(
        "\nevery crash point recovered byte-identically within \
         detection + re-execution headroom (worst {worst:.3} s ≤ bound {:.3} s); \
         recovery off failed fast and typed at every point. ✓",
        model.speculative_bracket().hi_s
    );
    write_json(k, r, victim, records, healthy_s, detect_s, &points);
}

/// Dumps the sweep as `BENCH_ablation_recovery.json` inside
/// `$CTS_BENCH_JSON_DIR` (no-op when unset), the PR's headline artifact.
#[allow(clippy::too_many_arguments)]
fn write_json(
    k: usize,
    r: usize,
    victim: usize,
    records: usize,
    healthy_s: f64,
    detect_s: f64,
    points: &[Point],
) {
    let mut doc = BenchDoc::new("ablation_recovery")
        .config("k", Value::UInt(k as u64))
        .config("r", Value::UInt(r as u64))
        .config("records", Value::UInt(records as u64))
        .config("victim_rank", Value::UInt(victim as u64))
        .config("field", Value::Str("gf256".to_string()))
        .config("decode", Value::Str("quorum".to_string()))
        .config("heartbeat_ms", Value::UInt(HEARTBEAT.as_millis() as u64))
        .config("death_deadline_s", Value::Float(detect_s))
        .config("healthy_makespan_s", Value::Float(healthy_s))
        .unit("recovered_makespan_s", "s")
        .unit("failfast_error_s", "s")
        .unit("recovered_bound_s", "s")
        .unit("failfast_bound_s", "s");
    for p in points {
        doc.row([
            ("crash_point", Value::Str(p.label.clone())),
            ("recovered_makespan_s", Value::Float(p.recovered_s)),
            ("failfast_error_s", Value::Float(p.failfast_s)),
            ("recovered_bound_s", Value::Float(p.recovered_hi_s)),
            ("failfast_bound_s", Value::Float(p.failfast_hi_s)),
            ("byte_identical", Value::Bool(true)),
        ]);
    }
    doc.write();
}
