//! **Fig. 2** — the computation/communication tradeoff: communication
//! load L versus computation load r, comparing Coded MapReduce
//! `L = (1/r)(1 − r/K)` against the uncoded scheme `L = 1 − r/K`.
//!
//! Prints both the closed forms and loads *measured* from real engine
//! runs at every r (bytes on the wire, projected to scale, normalized by
//! the input size).
//!
//! ```sh
//! cargo bench -p cts-bench --bench fig2_tradeoff
//! ```

use cts_bench::env_usize;
use cts_core::theory;
use cts_netsim::serial::scaled_wire_bytes;
use cts_netsim::SHUFFLE_STAGE;
use cts_terasort::driver::{run_coded_terasort, run_terasort, SortJob};
use cts_terasort::record::RECORD_LEN;
use cts_terasort::teragen;
use serde::json::Value;

fn main() {
    let k = 10;
    let records = env_usize("CTS_RECORDS", 40_000).min(200_000);
    let input = teragen::generate(records, 2017);
    let d = (records * RECORD_LEN) as f64;

    println!("FIG. 2 reproduction — communication load vs computation load, K = {k}");
    println!(
        "({} records per point; measured = wire bytes / input bytes,",
        records
    );
    println!(" with per-packet headers excluded as in the paper's normalization)\n");
    println!(
        "{:>3} {:>14} {:>14} {:>14} {:>9}",
        "r", "uncoded L(r)", "CMR L(r)", "measured L", "meas/CMR"
    );

    let mut prev_measured = f64::INFINITY;
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::with_capacity(k);
    for r in 1..=k {
        let theory_uncoded = theory::uncoded_comm_load(r, k);
        let theory_coded = theory::coded_comm_load(r, k);
        // Measure: run the real engine; count scaled payload bytes.
        let run = if r == 1 {
            run_terasort(input.clone(), &SortJob::local(k, 1)).unwrap()
        } else {
            run_coded_terasort(input.clone(), &SortJob::local(k, r)).unwrap()
        };
        run.validate().unwrap();
        let payload: f64 = run
            .outcome
            .trace
            .stage_events(SHUFFLE_STAGE)
            .filter(|e| e.kind != cts_net::trace::EventKind::Internal)
            .map(|e| scaled_wire_bytes(e, 1.0) - e.overhead as f64)
            .sum();
        let measured = payload / d;
        let ratio = if theory_coded > 0.0 {
            measured / theory_coded
        } else {
            1.0
        };
        println!(
            "{r:>3} {theory_uncoded:>14.4} {theory_coded:>14.4} {measured:>14.4} {ratio:>9.3}"
        );

        // Shape: measured load is monotone decreasing and tracks the CMR
        // curve within a few percent (hash variance).
        assert!(measured < prev_measured + 1e-9, "L must fall with r");
        if r < k {
            assert!(
                (measured - theory_coded).abs() / theory_coded < 0.10,
                "r={r}: measured {measured} vs theory {theory_coded}"
            );
        } else {
            assert!(measured < 1e-9, "r=K must shuffle nothing");
        }
        prev_measured = measured;
        rows.push((r, theory_uncoded, theory_coded, measured));
    }
    println!("\nmeasured points lie on the CMR curve: the r× gain of eq. (2). ✓");
    write_artifacts(k, records, &rows);
}

/// Dumps the curve as `fig2_tradeoff.csv` + `BENCH_fig2_tradeoff.json`
/// inside `$CTS_BENCH_JSON_DIR` (no-op when unset), so CI commits a
/// machine-readable tradeoff artifact next to the kernel-throughput one.
fn write_artifacts(k: usize, records: usize, rows: &[(usize, f64, f64, f64)]) {
    let Some(dir) = std::env::var_os("CTS_BENCH_JSON_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);

    let mut csv = String::from("r,uncoded_load,coded_load,measured_load\n");
    for (r, uncoded, coded, measured) in rows {
        csv.push_str(&format!("{r},{uncoded:.6},{coded:.6},{measured:.6}\n"));
    }
    let csv_path = dir.join("fig2_tradeoff.csv");
    match std::fs::write(&csv_path, csv) {
        Ok(()) => println!("tradeoff csv: {}", csv_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", csv_path.display()),
    }

    let entries: Vec<Value> = rows
        .iter()
        .map(|&(r, uncoded, coded, measured)| {
            Value::object([
                ("r", Value::UInt(r as u64)),
                ("uncoded_load", Value::Float(uncoded)),
                ("coded_load", Value::Float(coded)),
                ("measured_load", Value::Float(measured)),
            ])
        })
        .collect();
    let doc = Value::object([
        ("target", Value::Str("fig2_tradeoff".to_string())),
        ("k", Value::UInt(k as u64)),
        ("records", Value::UInt(records as u64)),
        ("results", Value::Array(entries)),
    ]);
    let json_path = dir.join("BENCH_fig2_tradeoff.json");
    match std::fs::write(&json_path, doc.render()) {
        Ok(()) => println!("results json: {}", json_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", json_path.display()),
    }
}
