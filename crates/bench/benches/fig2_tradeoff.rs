//! **Fig. 2** — the computation/communication tradeoff: communication
//! load L versus computation load r, comparing Coded MapReduce
//! `L = (1/r)(1 − r/K)` against the uncoded scheme `L = 1 − r/K`.
//!
//! Prints both the closed forms and loads *measured* from real engine
//! runs at every r (bytes on the wire, projected to scale, normalized by
//! the input size).
//!
//! ```sh
//! cargo bench -p cts-bench --bench fig2_tradeoff
//! ```

use cts_bench::env_usize;
use cts_core::theory;
use cts_netsim::serial::scaled_wire_bytes;
use cts_netsim::SHUFFLE_STAGE;
use cts_terasort::driver::{run_coded_terasort, run_terasort, SortJob};
use cts_terasort::record::RECORD_LEN;
use cts_terasort::teragen;

fn main() {
    let k = 10;
    let records = env_usize("CTS_RECORDS", 40_000).min(200_000);
    let input = teragen::generate(records, 2017);
    let d = (records * RECORD_LEN) as f64;

    println!("FIG. 2 reproduction — communication load vs computation load, K = {k}");
    println!(
        "({} records per point; measured = wire bytes / input bytes,",
        records
    );
    println!(" with per-packet headers excluded as in the paper's normalization)\n");
    println!(
        "{:>3} {:>14} {:>14} {:>14} {:>9}",
        "r", "uncoded L(r)", "CMR L(r)", "measured L", "meas/CMR"
    );

    let mut prev_measured = f64::INFINITY;
    for r in 1..=k {
        let theory_uncoded = theory::uncoded_comm_load(r, k);
        let theory_coded = theory::coded_comm_load(r, k);
        // Measure: run the real engine; count scaled payload bytes.
        let run = if r == 1 {
            run_terasort(input.clone(), &SortJob::local(k, 1)).unwrap()
        } else {
            run_coded_terasort(input.clone(), &SortJob::local(k, r)).unwrap()
        };
        run.validate().unwrap();
        let payload: f64 = run
            .outcome
            .trace
            .stage_events(SHUFFLE_STAGE)
            .filter(|e| e.kind != cts_net::trace::EventKind::Internal)
            .map(|e| scaled_wire_bytes(e, 1.0) - e.overhead as f64)
            .sum();
        let measured = payload / d;
        let ratio = if theory_coded > 0.0 {
            measured / theory_coded
        } else {
            1.0
        };
        println!(
            "{r:>3} {theory_uncoded:>14.4} {theory_coded:>14.4} {measured:>14.4} {ratio:>9.3}"
        );

        // Shape: measured load is monotone decreasing and tracks the CMR
        // curve within a few percent (hash variance).
        assert!(measured < prev_measured + 1e-9, "L must fall with r");
        if r < k {
            assert!(
                (measured - theory_coded).abs() / theory_coded < 0.10,
                "r={r}: measured {measured} vs theory {theory_coded}"
            );
        } else {
            assert!(measured < 1e-9, "r=K must shuffle nothing");
        }
        prev_measured = measured;
    }
    println!("\nmeasured points lie on the CMR curve: the r× gain of eq. (2). ✓");
}
