//! **Ablation** — straggler-injection sweep: one rank's multicasts are
//! slowed {2×, 10×, ∞} and the sort runs under both decode disciplines.
//!
//! The paper's engines barrier on every coded packet, so the whole
//! Shuffle inherits the slowest sender's delay. The MDS quorum decode
//! (any `r−1` of `r` packets release a group) takes the straggler off
//! every critical path: its makespan must stay inside the
//! `cts_netsim::straggler` model's delay-independent bracket while the
//! barrier-on-all makespan grows at least linearly with the delay — and
//! at ∞ only the quorum run finishes at all.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_straggler_sweep
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use cts_bench::env_usize;
use cts_bench::results::BenchDoc;
use cts_core::decode::DecodeMode;
use cts_core::field::FieldKind;
use cts_net::fault::{straggler_blackhole_rule, straggler_delay_rule, FaultRule};
use cts_netsim::straggler::{Slowdown, StragglerModel};
use cts_terasort::driver::{run_coded_terasort, SortJob};
use cts_terasort::teragen;
use serde::json::Value;

struct Point {
    label: String,
    delay_s: f64,
    quorum_s: f64,
    /// `None` at the ∞ point — barrier-on-all would never finish.
    all_s: Option<f64>,
    quorum_hi_s: f64,
}

fn timed(
    input: &bytes::Bytes,
    k: usize,
    r: usize,
    decode: DecodeMode,
    fault: Option<(usize, Arc<FaultRule>)>,
) -> f64 {
    let mut job = SortJob::local(k, r)
        .with_field(FieldKind::Gf256)
        .with_decode(decode);
    if let Some((victim, rule)) = fault {
        job.engine.cluster = job.engine.cluster.with_fault(victim, rule);
    }
    let started = Instant::now();
    let run = run_coded_terasort(input.clone(), &job).expect("straggler sweep run");
    let elapsed = started.elapsed().as_secs_f64();
    run.validate().expect("TeraValidate");
    elapsed
}

fn main() {
    let (k, r) = (5usize, 3usize);
    let victim = 1usize;
    let records = env_usize("CTS_RECORDS", 4_000).min(50_000);
    let input = teragen::generate(records, 2017);

    println!("Straggler sweep — K = {k}, r = {r}, GF(256), victim rank {victim}");
    println!("({records} records; slowdown = extra delay on every victim multicast)\n");

    let healthy_s = timed(&input, k, r, DecodeMode::Quorum, None);
    println!("healthy quorum makespan: {healthy_s:.3} s\n");
    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>12}",
        "slowdown", "delay (s)", "quorum (s)", "all (s)", "all/quorum"
    );

    // Delay unit: the healthy makespan, floored so sub-10ms local runs
    // still separate the sweep's points.
    let unit_s = healthy_s.max(0.02);
    let mut points: Vec<Point> = Vec::new();
    for factor in [2.0f64, 10.0] {
        let delay_s = (factor * unit_s).min(1.0);
        let model = StragglerModel::new(healthy_s, Slowdown::DelayS(delay_s));
        let rule = straggler_delay_rule(Duration::from_secs_f64(delay_s));
        let quorum_s = timed(
            &input,
            k,
            r,
            DecodeMode::Quorum,
            Some((victim, Arc::clone(&rule))),
        );
        let all_s = timed(&input, k, r, DecodeMode::All, Some((victim, rule)));
        println!(
            "{factor:>8}× {delay_s:>10.3} {quorum_s:>12.3} {all_s:>12.3} {:>12.2}",
            all_s / quorum_s
        );
        assert!(
            model.quorum_bracket().contains(quorum_s),
            "{factor}×: quorum {quorum_s:.3}s outside {:?}",
            model.quorum_bracket()
        );
        assert!(
            model.all_bracket().contains(all_s),
            "{factor}×: all-mode {all_s:.3}s below the injected delay {delay_s:.3}s"
        );
        points.push(Point {
            label: format!("{factor}x"),
            delay_s,
            quorum_s,
            all_s: Some(all_s),
            quorum_hi_s: model.quorum_bracket().hi_s,
        });
    }

    // The ∞ point: the victim's multicasts never arrive. Only quorum runs.
    let model = StragglerModel::new(healthy_s, Slowdown::Blackhole);
    let quorum_s = timed(
        &input,
        k,
        r,
        DecodeMode::Quorum,
        Some((victim, straggler_blackhole_rule())),
    );
    println!(
        "{:>9} {:>10} {quorum_s:>12.3} {:>12} {:>12}",
        "inf", "inf", "never", "inf"
    );
    assert!(
        model.quorum_bracket().contains(quorum_s),
        "∞: quorum {quorum_s:.3}s outside {:?}",
        model.quorum_bracket()
    );
    points.push(Point {
        label: "inf".to_string(),
        delay_s: f64::INFINITY,
        quorum_s,
        all_s: None,
        quorum_hi_s: model.quorum_bracket().hi_s,
    });

    // Graceful degradation: the quorum makespan must not track the delay —
    // the 10× and ∞ points stay within the same healthy-calibrated bound
    // the 2× point satisfies (sub-linear by construction of the bracket).
    let worst = points.iter().map(|p| p.quorum_s).fold(0.0f64, f64::max);
    assert!(
        worst <= points[0].quorum_hi_s,
        "quorum makespan grew with the injected delay: worst {worst:.3}s"
    );
    println!(
        "\nquorum makespan is delay-independent (worst {worst:.3} s ≤ bound {:.3} s); \
         barrier-on-all pays ≥ the injected delay. ✓",
        points[0].quorum_hi_s
    );
    write_json(k, r, records, healthy_s, &points);
}

/// Dumps the sweep as `BENCH_ablation_straggler_sweep.json` inside
/// `$CTS_BENCH_JSON_DIR` (no-op when unset), the PR's headline artifact.
fn write_json(k: usize, r: usize, records: usize, healthy_s: f64, points: &[Point]) {
    let mut doc = BenchDoc::new("ablation_straggler_sweep")
        .config("k", Value::UInt(k as u64))
        .config("r", Value::UInt(r as u64))
        .config("records", Value::UInt(records as u64))
        .config("victim_rank", Value::UInt(1))
        .config("field", Value::Str("gf256".to_string()))
        .config("healthy_quorum_makespan_s", Value::Float(healthy_s))
        .unit("injected_delay_s", "s")
        .unit("quorum_makespan_s", "s")
        .unit("all_makespan_s", "s")
        .unit("quorum_bound_s", "s");
    for p in points {
        doc.row([
            ("slowdown", Value::Str(p.label.clone())),
            (
                "injected_delay_s",
                if p.delay_s.is_finite() {
                    Value::Float(p.delay_s)
                } else {
                    Value::Str("inf".to_string())
                },
            ),
            ("quorum_makespan_s", Value::Float(p.quorum_s)),
            (
                "all_makespan_s",
                match p.all_s {
                    Some(s) => Value::Float(s),
                    None => Value::Str("never-completes".to_string()),
                },
            ),
            ("quorum_bound_s", Value::Float(p.quorum_hi_s)),
        ]);
    }
    doc.write();
}
