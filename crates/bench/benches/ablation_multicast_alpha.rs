//! **Ablation: the multicast penalty α** (paper §V-C, observation 2).
//!
//! The paper attributes the gap between the theoretical r× shuffle gain
//! and the measured 2.3×/4.2× to `MPI_Bcast` overhead that "increases
//! logarithmically with r". Our model expresses that as a
//! `1 + α·log2(m)` slowdown per multicast. This ablation re-evaluates one
//! recorded trace under a range of α, including α = 0 (ideal multicast)
//! and the binomial-tree decomposition (the software-bcast worst case).
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_multicast_alpha
//! ```

use cts_bench::Experiment;
use cts_netsim::config::NetModelConfig;
use cts_netsim::serial::{serial_makespan, serial_makespan_tree_unicast};
use cts_netsim::SHUFFLE_STAGE;

fn main() {
    let k = 16;
    let exp = Experiment::paper(k);
    let base = exp.run_uncoded();
    let base_shuffle = base.breakdown.shuffle_s;
    println!("uncoded shuffle (reference): {base_shuffle:.1} s\n");

    for r in [3usize, 5] {
        let coded = exp.run_coded(r);
        println!("CodedTeraSort r = {r}: shuffle under varying multicast penalty α");
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            "alpha", "shuffle (s)", "gain vs unc", "gain/r"
        );
        let mut gains = Vec::new();
        for alpha in [0.0, 0.15, 0.30, 0.45, 0.60] {
            let net = NetModelConfig {
                multicast_alpha: alpha,
                ..NetModelConfig::ec2_100mbps()
            };
            let shuffle = serial_makespan(&coded.trace, SHUFFLE_STAGE, &net, coded.stats.scale);
            let gain = base_shuffle / shuffle;
            gains.push((alpha, gain));
            println!(
                "{alpha:>8.2} {shuffle:>12.1} {gain:>11.2}x {:>10.2}",
                gain / r as f64
            );
        }
        // The software-tree decomposition: every multicast charged as its
        // r binomial-tree unicast hops.
        let net = NetModelConfig::ec2_100mbps();
        let tree =
            serial_makespan_tree_unicast(&coded.trace, SHUFFLE_STAGE, &net, coded.stats.scale);
        println!(
            "{:>8} {tree:>12.1} {:>11.2}x {:>10.2}   (binomial-tree unicasts)",
            "tree",
            base_shuffle / tree,
            base_shuffle / tree / r as f64
        );

        // Shape: at α = 0 the gain is ≈ r (+ the 1-r/K bonus); it decays
        // monotonically with α; the paper's measured gains (2.3 at r=3,
        // 4.2 at r=5) sit between α = 0.15 and α = 0.45.
        assert!(gains[0].1 > r as f64 * 0.95, "ideal multicast ≈ r× gain");
        assert!(gains.windows(2).all(|w| w[1].1 < w[0].1));
        let paper_gain = if r == 3 { 2.3 } else { 4.2 };
        assert!(
            gains[1].1 >= paper_gain * 0.9 && gains[3].1 <= paper_gain * 1.2,
            "paper's measured gain {paper_gain} must lie in the α band"
        );
        println!();
    }
    println!("shape checks passed ✓");
}
