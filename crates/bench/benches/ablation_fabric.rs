//! **Ablation: shuffle fabrics** — serial-unicast vs fanout vs native
//! multicast, *measured* wall-clock against the netsim oracle.
//!
//! The paper's headline gain is the `r×` shuffle reduction from multicast
//! coded exchange, but a fabric that emulates multicast by blocking serial
//! unicasts never shows it on the wall-clock. This bench runs the same
//! coded sort three times per `K` — once per
//! [`ShuffleFabric`](cts_net::fabric::ShuffleFabric) — over the in-memory
//! cluster with an *emulated NIC* (token-bucket egress, per-transfer
//! latency, multicast `α`; async sends with backpressure), and compares:
//!
//! * **measured** — the slowest node's shuffle-stage wall-clock;
//! * **serial bound** — `cts_netsim::serial_fabric_makespan`: the
//!   closed-form strictly serial schedule (upper bound);
//! * **fluid bound** — `cts_netsim::predict_fabric_shuffle_s`: the
//!   max-min-fair concurrent replay (lower bound; skipped at K = 64 where
//!   the flow count makes it slow).
//!
//! Sorted outputs are asserted byte-identical across fabrics, and at
//! K = 16 the fanout and multicast fabrics must beat serial-unicast
//! strictly — the wall-clock materialization of the paper's multicast
//! shuffling.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_fabric
//! ```

use cts_bench::env_usize;
use cts_net::fabric::ShuffleFabric;
use cts_net::rate::NicProfile;
use cts_netsim::config::NetModelConfig;
use cts_netsim::{predict_fabric_shuffle_s, serial_fabric_makespan, SHUFFLE_STAGE};
use cts_terasort::driver::{run_coded_terasort, SortJob};
use cts_terasort::teragen;

/// 1 MB/s egress, 0.1 ms per transfer, α = 0.30 — slow enough that the
/// shuffle dominates at bench scale, fast enough to finish in seconds.
const RATE_BYTES_PER_SEC: f64 = 1_000_000.0;
const LATENCY_S: f64 = 1e-4;
const ALPHA: f64 = 0.30;

fn nic() -> NicProfile {
    let mut p = NicProfile::rate_limited(RATE_BYTES_PER_SEC)
        .with_latency_s(LATENCY_S)
        .with_multicast_alpha(ALPHA);
    p.burst_bytes = 4096.0; // keep the bucket binding at bench scale
    p
}

/// The model twin of [`nic`], for the oracle columns.
fn net_model() -> NetModelConfig {
    NetModelConfig {
        bandwidth_bits_per_sec: RATE_BYTES_PER_SEC * 8.0,
        tcp_efficiency: 1.0,
        per_transfer_latency_s: LATENCY_S,
        multicast_alpha: ALPHA,
        group_setup_s: 0.0,
    }
}

fn main() {
    let records = env_usize("CTS_RECORDS", 24_000);
    println!(
        "shuffle fabrics, measured vs modeled ({} records, {:.0} KB/s NIC, {:.1} ms/transfer):\n",
        records,
        RATE_BYTES_PER_SEC / 1e3,
        LATENCY_S * 1e3
    );

    for (k, r) in [(16usize, 3usize), (20, 3), (64, 2)] {
        let input = teragen::generate(records, 2017);
        println!("K = {k}, r = {r}:");
        println!(
            "  {:<16} {:>12} {:>14} {:>13} {:>10}",
            "fabric", "measured (s)", "serial bnd (s)", "fluid bnd (s)", "sends"
        );

        let mut walls = Vec::new();
        let mut outputs: Vec<Vec<Vec<u8>>> = Vec::new();
        for fabric in ShuffleFabric::ALL {
            let job = SortJob::local(k, r).with_fabric(fabric).with_nic(nic());
            let run = run_coded_terasort(input.clone(), &job).expect("coded run");
            run.validate().expect("TeraValidate");
            let measured = run.outcome.wall.max.shuffle.as_secs_f64();
            let trace = &run.outcome.trace;
            let serial_bound =
                serial_fabric_makespan(trace, SHUFFLE_STAGE, fabric, &net_model(), 1.0);
            // The fluid replay is O(flows × active × links); at K = 64 the
            // 125k-flow trace makes it slower than the run it models.
            let fluid_bound = (k < 64)
                .then(|| predict_fabric_shuffle_s(trace, SHUFFLE_STAGE, fabric, &net_model(), 1.0));
            println!(
                "  {:<16} {:>12.3} {:>14.3} {:>13} {:>10}",
                fabric.label(),
                measured,
                serial_bound,
                fluid_bound
                    .map(|f| format!("{f:.3}"))
                    .unwrap_or_else(|| "-".into()),
                trace.stage_wire_sends(SHUFFLE_STAGE),
            );
            // Measured can't beat the fully concurrent fluid bound by more
            // than scheduling noise, nor exceed the strictly serial bound
            // (turn-taking serializes less than a global serial order).
            assert!(
                measured <= serial_bound * 1.25 + 0.05,
                "{fabric} at K={k}: measured {measured:.3} far above serial bound {serial_bound:.3}"
            );
            walls.push(measured);
            outputs.push(run.outcome.outputs);
        }

        // One logical exchange: identical sorted bytes on every fabric.
        assert_eq!(outputs[0], outputs[1], "serial vs fanout outputs at K={k}");
        assert_eq!(
            outputs[1], outputs[2],
            "fanout vs multicast outputs at K={k}"
        );

        let (serial, fanout, multicast) = (walls[0], walls[1], walls[2]);
        println!(
            "  → serial/fanout {:.2}×, serial/multicast {:.2}×\n",
            serial / fanout,
            serial / multicast
        );
        if k == 16 {
            // The acceptance bar: the async fabrics strictly beat the
            // blocking serial-unicast baseline on *measured* wall-clock.
            assert!(
                fanout < serial,
                "K=16: fanout {fanout:.3} not below serial-unicast {serial:.3}"
            );
            assert!(
                multicast < serial,
                "K=16: multicast {multicast:.3} not below serial-unicast {serial:.3}"
            );
            assert!(
                multicast < fanout,
                "K=16: multicast {multicast:.3} not below fanout {fanout:.3}"
            );
        } else {
            assert!(
                serial >= fanout && serial >= multicast,
                "K={k}: serial-unicast must be slowest (serial {serial:.3}, fanout {fanout:.3}, multicast {multicast:.3})"
            );
        }
    }

    println!("the r× multicast gain now shows on measured wall-clock, not just the model ✓");
}
