//! **Ablation: the impact of the worker count K** (paper §V-C).
//!
//! The paper observes that the coded speedup *decreases* with K: more
//! multicast groups (CodeGen ∝ C(K, r+1)) and less locally available data
//! (load 1 − r/K grows). This sweep fixes r = 3 and varies K.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_k_sweep
//! ```

use cts_bench::{env_usize, Experiment};
use cts_core::theory;

fn main() {
    let r = 3usize;
    println!("K sweep at r = {r} (12 GB modeled):\n");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "K", "CodeGen", "Shuffle", "coded", "uncoded", "speedup", "L_CMR(r)"
    );

    let mut speedups = Vec::new();
    for k in [8usize, 12, 16, 20] {
        let exp = Experiment {
            records: env_usize("CTS_RECORDS", 60_000),
            ..Experiment::paper(k)
        };
        let base = exp.run_uncoded();
        let coded = exp.run_coded(r);
        let speedup = base.breakdown.total_s() / coded.breakdown.total_s();
        speedups.push((k, speedup));
        println!(
            "{k:>4} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x {:>12.4}",
            coded.breakdown.codegen_s,
            coded.breakdown.shuffle_s,
            coded.breakdown.total_s(),
            base.breakdown.total_s(),
            speedup,
            theory::coded_comm_load(r, k),
        );
    }

    // The paper's trend: speedup falls from K = 16 to K = 20 (its two
    // measured points). We additionally check monotonicity over the upper
    // range — at small K the load term (1 - r/K) dominates the other way.
    let s16 = speedups.iter().find(|(k, _)| *k == 16).unwrap().1;
    let s20 = speedups.iter().find(|(k, _)| *k == 20).unwrap().1;
    assert!(
        s16 > s20,
        "speedup must fall from K=16 ({s16:.2}) to K=20 ({s20:.2})"
    );
    println!("\nspeedup falls with K over the paper's range (paper: 2.16× → 1.97×) ✓");
}
