//! **Table III** — sorting 12 GB with K = 20 workers and 100 Mbps links.
//!
//! Paper speedups: 1.97× (r = 3) and 2.20× (r = 5); the CodeGen stage
//! balloons to 140.91 s at r = 5 because C(20, 6) = 38 760 multicast
//! groups must be initialized.
//!
//! ```sh
//! cargo bench -p cts-bench --bench table3_k20
//! ```

use cts_bench::{paper_comparison, reference};
use cts_netsim::render_table;

fn main() {
    let rows = paper_comparison(20, &[3, 5]);
    println!(
        "{}",
        render_table(
            "TABLE III reproduction — 12 GB, K = 20 workers, 100 Mbps",
            &rows
        )
    );

    for (label, paper, ours) in [
        ("TeraSort", reference::table3_terasort(), rows[0].breakdown),
        (
            "CodedTeraSort r=3",
            reference::table3_coded_r3(),
            rows[1].breakdown,
        ),
        (
            "CodedTeraSort r=5",
            reference::table3_coded_r5(),
            rows[2].breakdown,
        ),
    ] {
        println!("{}", reference::compare(label, &paper, &ours));
    }

    let s3 = rows[1].speedup.unwrap();
    let s5 = rows[2].speedup.unwrap();
    println!("speedups: r=3 {s3:.2}× (paper 1.97×), r=5 {s5:.2}× (paper 2.20×)");

    // Shape: both within the paper's headline band; CodeGen at r=5 dwarfs
    // every other non-shuffle stage (the paper's scalability concern).
    assert!((s3 - 1.97).abs() < 0.4, "r=3 speedup {s3}");
    assert!((s5 - 2.20).abs() < 0.4, "r=5 speedup {s5}");
    let cg = rows[2].breakdown.codegen_s;
    assert!((cg - 140.91).abs() / 140.91 < 0.2, "CodeGen {cg} vs 140.91");
    let _ = cts_bench::results::write_rows_json("table3_k20", &rows);
    println!("\nshape checks passed ✓");
}
