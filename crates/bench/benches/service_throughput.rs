//! **Service throughput** — the multi-tenant sort service under load.
//!
//! Starts one `cts serve`-equivalent [`SortService`] (resident
//! `JobRuntime`: shared fabric, admission queue, slot-leased job
//! isolation) and drives it with 8–64 concurrent tenants over the real
//! TCP wire protocol. Each tenant submits sort jobs back-to-back and
//! waits for the digest; admission refusals (queue full) back off and
//! retry — that is the service's backpressure, and the bench counts them.
//!
//! Reports jobs/sec and p50/p99 job latency per tenant count, checks
//! every digest against a locally computed reference (byte-identity with
//! one-shot runs), and dumps `BENCH_service_throughput.json` when
//! `CTS_BENCH_JSON_DIR` is set.
//!
//! Also pins the observability plane's overhead: the same load point
//! runs with stage spans + transfer tracing on (the shipped default)
//! and off, best-of-three each, and the bench **asserts** the
//! instrumented run keeps ≥ 95% of the stripped run's jobs/s.
//!
//! Quick mode for CI: `CTS_RECORDS=1000 CTS_SERVICE_TENANTS=16`.
//!
//! ```sh
//! cargo bench -p cts-bench --bench service_throughput
//! ```

use std::time::{Duration, Instant};

use cts_bench::env_usize;
use cts_bench::results::BenchDoc;
use cts_mapreduce::runtime::RuntimeConfig;
use cts_mapreduce::stage::EngineConfig;
use cts_terasort::driver::{run_terasort, SortJob};
use cts_terasort::service::{JobKind, ResultDigest, ServiceClient, SortService};
use cts_terasort::teragen;
use serde::json::Value;

const K: usize = 4;
const R: usize = 2;
/// Distinct tenant inputs (tenant t uses seed t % SEEDS).
const SEEDS: usize = 4;

struct Row {
    tenants: usize,
    jobs: usize,
    elapsed: Duration,
    latencies_ms: Vec<f64>,
    busy_retries: usize,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.elapsed.as_secs_f64()
    }
    fn percentile(&self, p: f64) -> f64 {
        let mut l = self.latencies_ms.clone();
        l.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((l.len() - 1) as f64 * p).round() as usize;
        l[idx]
    }
}

fn main() {
    let records = env_usize("CTS_RECORDS", 2_000).min(20_000);
    let jobs_per_tenant = env_usize("CTS_SERVICE_JOBS", 3);
    let max_tenants = env_usize("CTS_SERVICE_TENANTS", 64);
    let tenant_counts: Vec<usize> = [8, 16, 32, 64]
        .into_iter()
        .filter(|&t| t <= max_tenants)
        .collect();

    // Tenant inputs and their one-shot reference digests: the service's
    // outputs must be byte-identical to a solo run of the same job.
    let inputs: Vec<bytes::Bytes> = (0..SEEDS as u64)
        .map(|seed| teragen::generate(records, 2017 + seed))
        .collect();
    let references: Vec<ResultDigest> = inputs
        .iter()
        .map(|input| {
            let run = run_terasort(input.clone(), &SortJob::local(K, 1)).expect("reference run");
            ResultDigest::of(&run.outcome.outputs)
        })
        .collect();

    println!(
        "SERVICE THROUGHPUT — {jobs_per_tenant} sort jobs per tenant, \
         {records} records each, K = {K}, r = {R}, shared runtime over TCP wire\n"
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "tenants", "jobs", "jobs/s", "p50 (ms)", "p99 (ms)", "refused"
    );

    let mut rows = Vec::new();
    for &tenants in &tenant_counts {
        let row = drive(tenants, jobs_per_tenant, &inputs, &references, true);
        println!(
            "{:>8} {:>8} {:>10.2} {:>10.1} {:>10.1} {:>8}",
            row.tenants,
            row.jobs,
            row.jobs_per_sec(),
            row.percentile(0.50),
            row.percentile(0.99),
            row.busy_retries,
        );
        rows.push(row);
    }
    println!("\nevery job digest matched its one-shot reference. ✓");

    // Overhead pin: same load point with the observability plane on vs
    // off, best-of-three to damp scheduler noise. The instrumented
    // service must keep >= 95% of the stripped service's throughput.
    let probe_tenants = *tenant_counts.first().unwrap_or(&8);
    let best = |on: bool| {
        (0..3)
            .map(|_| drive(probe_tenants, jobs_per_tenant, &inputs, &references, on).jobs_per_sec())
            .fold(f64::MIN, f64::max)
    };
    let off_jps = best(false);
    let on_jps = best(true);
    let ratio = on_jps / off_jps;
    println!(
        "\noverhead pin at {probe_tenants} tenants: metrics+spans on {on_jps:.2} jobs/s, \
         off {off_jps:.2} jobs/s — ratio {ratio:.3}"
    );
    assert!(
        ratio >= 0.95,
        "observability overhead too high: {on_jps:.2} vs {off_jps:.2} jobs/s ({:.1}% loss)",
        (1.0 - ratio) * 100.0
    );
    println!("observability overhead within the 5% budget. ✓");

    write_artifact(records, jobs_per_tenant, &rows, (on_jps, off_jps));
}

/// One load point: `tenants` concurrent clients, each submitting
/// `jobs_per_tenant` sort jobs into a fresh service. `observability`
/// toggles the stage-span ring and transfer trace (the metric registry
/// itself always exists; its instruments are the cheap part).
fn drive(
    tenants: usize,
    jobs_per_tenant: usize,
    inputs: &[bytes::Bytes],
    references: &[ResultDigest],
    observability: bool,
) -> Row {
    let mut template = EngineConfig::local(K, R);
    if !observability {
        template.cluster = template.cluster.with_trace(false).with_spans(false);
    }
    let cfg = RuntimeConfig::new(template)
        .with_max_concurrent(4)
        .with_queue_capacity(2 * tenants);
    let service = SortService::bind("127.0.0.1:0", cfg).expect("service bind");
    let addr = service.local_addr().expect("service addr");
    let server = std::thread::spawn(move || service.run().expect("service run"));

    let started = Instant::now();
    let per_tenant: Vec<(Vec<f64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let input = &inputs[t % inputs.len()];
                let expect = &references[t % references.len()];
                s.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(jobs_per_tenant);
                    let mut retries = 0usize;
                    for _ in 0..jobs_per_tenant {
                        let job_start = Instant::now();
                        let id = loop {
                            match client.submit(&JobKind::Sort, R, input) {
                                Ok(id) => break id,
                                // Admission backpressure: the queue is
                                // full, not an error — back off and retry.
                                Err(msg) if msg.contains("admission") => {
                                    retries += 1;
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(msg) => panic!("submit: {msg}"),
                            }
                        };
                        let digest = client.digest(id).expect("digest");
                        latencies.push(job_start.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(&digest, expect, "tenant {t} job {id} diverged");
                    }
                    (latencies, retries)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut client = ServiceClient::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");

    let mut latencies_ms = Vec::with_capacity(tenants * jobs_per_tenant);
    let mut busy_retries = 0;
    for (l, r) in per_tenant {
        latencies_ms.extend(l);
        busy_retries += r;
    }
    Row {
        tenants,
        jobs: tenants * jobs_per_tenant,
        elapsed,
        latencies_ms,
        busy_retries,
    }
}

fn write_artifact(records: usize, jobs_per_tenant: usize, rows: &[Row], overhead: (f64, f64)) {
    let (on_jps, off_jps) = overhead;
    let mut doc = BenchDoc::new("service_throughput")
        .config("k", Value::UInt(K as u64))
        .config("r", Value::UInt(R as u64))
        .config("records_per_job", Value::UInt(records as u64))
        .config("jobs_per_tenant", Value::UInt(jobs_per_tenant as u64))
        .config("observability_on_jobs_per_sec", Value::Float(on_jps))
        .config("observability_off_jobs_per_sec", Value::Float(off_jps))
        .config(
            "observability_overhead_ratio",
            Value::Float(on_jps / off_jps),
        )
        .unit("jobs_per_sec", "jobs/s")
        .unit("p50_ms", "ms")
        .unit("p99_ms", "ms");
    for row in rows {
        doc.row([
            ("tenants", Value::UInt(row.tenants as u64)),
            ("jobs", Value::UInt(row.jobs as u64)),
            ("jobs_per_sec", Value::Float(row.jobs_per_sec())),
            ("p50_ms", Value::Float(row.percentile(0.50))),
            ("p99_ms", Value::Float(row.percentile(0.99))),
            ("busy_retries", Value::UInt(row.busy_retries as u64)),
        ]);
    }
    doc.write();
}
