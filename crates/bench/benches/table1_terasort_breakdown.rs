//! **Table I** — performance of TeraSort sorting 12 GB with K = 16 nodes
//! and 100 Mbps network speed.
//!
//! Paper row: Map 1.86, Pack 2.35, Shuffle 945.72, Unpack 0.85,
//! Reduce 10.47, Total 961.25 (s); 98.4% of the time in the shuffle.
//!
//! ```sh
//! cargo bench -p cts-bench --bench table1_terasort_breakdown
//! ```

use cts_bench::{reference, Experiment};

fn main() {
    let exp = Experiment::paper(16);
    println!(
        "TABLE I reproduction — TeraSort, 12 GB, K = 16, 100 Mbps\n\
         (scaled run: {} records = {:.1} MB, projected ×{:.0})\n",
        exp.records,
        exp.input_bytes() as f64 / 1e6,
        exp.scale()
    );

    let result = exp.run_uncoded();
    println!(
        "{}",
        reference::compare(
            "TeraSort stage breakdown (paper Table I vs this reproduction)",
            &reference::table2_terasort(),
            &result.breakdown
        )
    );

    let shuffle_share = result.breakdown.shuffle_s / result.breakdown.total_s();
    println!(
        "shuffle share of total: {:.1}%  (paper: 98.4%)",
        shuffle_share * 100.0
    );
    let map_ratio = result.breakdown.shuffle_s / result.breakdown.map_s;
    println!("shuffle / map ratio:    {map_ratio:.0}×   (paper: 508.5×)");

    assert!(shuffle_share > 0.95, "shuffle must dominate");
    assert!(
        (result.breakdown.total_s() - 961.25).abs() / 961.25 < 0.05,
        "total within 5% of the paper"
    );
    let _ = cts_bench::results::write_rows_json("table1_terasort_breakdown", &[result.row(None)]);
    println!("\nshape checks passed ✓");
}
