//! **Ablation: asynchronous / parallel shuffling** (paper §VI, future
//! direction 3).
//!
//! The paper executes shuffles serially and asks what parallel
//! communication changes. Replaying the recorded transfer sets through
//! the max-min-fair fluid simulator answers quantitatively:
//!
//! * uncoded all-to-all parallelizes almost perfectly (≈ K× faster);
//! * the coded shuffle parallelizes far worse: every packet occupies `r`
//!   receivers' ingress at once, multicast flows run at the rate of their
//!   most-contended receiver, and the α-penalty still applies — under this
//!   one-outstanding-send-per-node model the coded scheme can even lose to
//!   parallel uncoded all-to-all. Serial-shuffle regimes are where coding
//!   pays; the asynchronous setting is exactly the open question the paper
//!   flags in §VI.
//!
//! ```sh
//! cargo bench -p cts-bench --bench ablation_parallel_shuffle
//! ```

use cts_bench::Experiment;
use cts_netsim::config::NetModelConfig;
use cts_netsim::serial::transfers_by_sender;
use cts_netsim::{simulate_parallel, SHUFFLE_STAGE};

fn main() {
    let k = 16;
    let exp = Experiment::paper(k);
    let net = NetModelConfig::ec2_100mbps();

    let base = exp.run_uncoded();
    let base_serial = base.breakdown.shuffle_s;
    let base_parallel = simulate_parallel(
        &transfers_by_sender(&base.trace, SHUFFLE_STAGE, base.stats.scale),
        &net,
    )
    .makespan_s;

    println!("shuffle times at K = {k} (12 GB modeled), serial vs parallel:\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "", "serial (s)", "parallel(s)", "serial/par"
    );
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>11.1}x",
        "TeraSort",
        base_serial,
        base_parallel,
        base_serial / base_parallel
    );

    let mut coded_parallel = Vec::new();
    for r in [3usize, 5] {
        let coded = exp.run_coded(r);
        let serial = coded.breakdown.shuffle_s;
        let parallel = simulate_parallel(
            &transfers_by_sender(&coded.trace, SHUFFLE_STAGE, coded.stats.scale),
            &net,
        )
        .makespan_s;
        coded_parallel.push((r, parallel));
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>11.1}x",
            format!("CodedTeraSort r={r}"),
            serial,
            parallel,
            serial / parallel
        );
    }

    println!("\ncoding gain in each regime:");
    for (r, parallel) in &coded_parallel {
        let serial_gain = base_serial / exp.run_coded(*r).breakdown.shuffle_s;
        let parallel_gain = base_parallel / parallel;
        println!(
            "  r = {r}: serial-shuffle gain {serial_gain:.2}× → parallel-shuffle gain {parallel_gain:.2}×"
        );
        // The receiver bottleneck: the coding gain collapses (and can
        // invert) once senders stop serializing.
        assert!(
            parallel_gain < serial_gain,
            "coding gain must shrink under parallelism"
        );
    }

    // Parallelism helps both schemes dramatically.
    assert!(
        base_serial / base_parallel > 8.0,
        "uncoded ≈ K× parallel win"
    );
    println!("\nparallelism ≈ K×-accelerates the uncoded shuffle; the coded gain\nmigrates from sender serialization to receiver-side load — the open\nquestion the paper poses. ✓");
}
