//! **Table II** — sorting 12 GB with K = 16 workers and 100 Mbps links:
//! TeraSort vs CodedTeraSort at r = 3 and r = 5.
//!
//! Paper speedups: 2.16× (r = 3) and 3.39× (r = 5).
//!
//! ```sh
//! cargo bench -p cts-bench --bench table2_k16
//! ```

use cts_bench::{paper_comparison, reference};
use cts_netsim::render_table;

fn main() {
    let rows = paper_comparison(16, &[3, 5]);
    println!(
        "{}",
        render_table(
            "TABLE II reproduction — 12 GB, K = 16 workers, 100 Mbps",
            &rows
        )
    );

    for (label, paper, ours) in [
        ("TeraSort", reference::table2_terasort(), rows[0].breakdown),
        (
            "CodedTeraSort r=3",
            reference::table2_coded_r3(),
            rows[1].breakdown,
        ),
        (
            "CodedTeraSort r=5",
            reference::table2_coded_r5(),
            rows[2].breakdown,
        ),
    ] {
        println!("{}", reference::compare(label, &paper, &ours));
    }

    let s3 = rows[1].speedup.unwrap();
    let s5 = rows[2].speedup.unwrap();
    println!("speedups: r=3 {s3:.2}× (paper 2.16×), r=5 {s5:.2}× (paper 3.39×)");
    let _ = cts_bench::results::write_rows_json("table2_k16", &rows);

    // Shape assertions: same winners, same ordering, same ballpark.
    assert!(s5 > s3 && s3 > 1.8, "ordering must match the paper");
    assert!((s3 - 2.16).abs() < 0.5, "r=3 speedup {s3}");
    assert!((s5 - 3.39).abs() < 0.7, "r=5 speedup {s5}");
    println!("\nshape checks passed ✓");
}
