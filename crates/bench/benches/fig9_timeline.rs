//! **Fig. 9** — the serial shuffle schedules: (a) TeraSort's serial
//! unicast, (b) CodedTeraSort's serial multicast. Rendered as event
//! listings and per-sender Gantt lanes from real traces, plus the
//! parallel-shuffle (fluid) overlay of the §VI asynchronous extension.
//!
//! ```sh
//! cargo bench -p cts-bench --bench fig9_timeline
//! ```

use cts_netsim::config::NetModelConfig;
use cts_netsim::serial::{serial_schedule, transfers_by_sender};
use cts_netsim::timeline::{render_gantt, render_listing};
use cts_netsim::{simulate_parallel, SHUFFLE_STAGE};
use cts_terasort::driver::{run_coded_terasort, run_terasort, SortJob};
use cts_terasort::teragen;

fn main() {
    let k = 4;
    let input = teragen::generate(8_000, 7);
    let net = NetModelConfig::ec2_100mbps();

    // (a) Serial unicast.
    let plain = run_terasort(input.clone(), &SortJob::local(k, 1)).unwrap();
    let schedule_a = serial_schedule(&plain.outcome.trace, SHUFFLE_STAGE, &net, 1.0);
    println!("FIG. 9(a) — TeraSort serial unicast, K = {k}:\n");
    println!("{}", render_listing(&schedule_a, 12));
    println!("{}", render_gantt(&schedule_a, 60));

    // (b) Serial multicast.
    let coded = run_coded_terasort(input, &SortJob::local(k, 2)).unwrap();
    let schedule_b = serial_schedule(&coded.outcome.trace, SHUFFLE_STAGE, &net, 1.0);
    println!("\nFIG. 9(b) — CodedTeraSort serial multicast, K = {k}, r = 2:\n");
    println!("{}", render_listing(&schedule_b, 12));
    println!("{}", render_gantt(&schedule_b, 60));

    // Structural checks: serial schedules tile (node i+1 starts when node
    // i finishes its turn), and every multicast reaches r receivers.
    for pair in schedule_a.transfers.windows(2) {
        assert!(
            (pair[0].end_s - pair[1].start_s).abs() < 1e-9,
            "serial tiling"
        );
    }
    assert!(schedule_b
        .transfers
        .iter()
        .all(|t| t.dsts.count_ones() == 2));

    // §VI extension: the same transfer sets under parallel communication.
    let par_a = simulate_parallel(
        &transfers_by_sender(&plain.outcome.trace, SHUFFLE_STAGE, 1.0),
        &net,
    );
    let par_b = simulate_parallel(
        &transfers_by_sender(&coded.outcome.trace, SHUFFLE_STAGE, 1.0),
        &net,
    );
    println!("\nasynchronous-execution extension (max-min fair fluid model):");
    println!(
        "  TeraSort shuffle:      serial {:>8.3}s → parallel {:>8.3}s  ({:.2}×)",
        schedule_a.makespan_s(),
        par_a.makespan_s,
        schedule_a.makespan_s() / par_a.makespan_s
    );
    println!(
        "  CodedTeraSort shuffle: serial {:>8.3}s → parallel {:>8.3}s  ({:.2}×)",
        schedule_b.makespan_s(),
        par_b.makespan_s,
        schedule_b.makespan_s() / par_b.makespan_s
    );
    assert!(par_a.makespan_s < schedule_a.makespan_s());
    assert!(par_b.makespan_s < schedule_b.makespan_s());
    println!("\nschedules rendered and verified ✓");
}
