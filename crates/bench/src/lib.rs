//! # cts-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper. Each bench target under
//! `benches/` is one experiment; this library holds the shared runner:
//!
//! 1. generate TeraGen input at a laptop-scale record count
//!    (`CTS_RECORDS`, default 120 000 records = 12 MB);
//! 2. run the *real* algorithm (uncoded §III or coded §IV) over the
//!    in-memory cluster, recording every transfer;
//! 3. validate the sorted output (TeraValidate);
//! 4. project the measured byte counts onto the paper's 12 GB
//!    (`CTS_TARGET_GB`) and evaluate the calibrated EC2 model
//!    ([`cts_netsim::PerfModelConfig::ec2_paper`]) to produce the table
//!    row.
//!
//! Byte counts scale exactly (every stage is linear in input size;
//! per-packet headers are tracked separately), so the scaled run yields
//! the same model inputs a full-size run would.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use bytes::Bytes;
use cts_net::trace::Trace;
use cts_netsim::breakdown::{StageBreakdown, TableRow};
use cts_netsim::model::PerfModel;
use cts_netsim::stats::RunStats;
use cts_terasort::driver::{run_coded_terasort, run_terasort, SortJob};
use cts_terasort::record::RECORD_LEN;
use cts_terasort::teragen;

/// One experiment configuration (a table row's workload).
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Worker count `K`.
    pub k: usize,
    /// Records actually generated and sorted in-process.
    pub records: usize,
    /// Input size the model projects to (the paper: 12 GB).
    pub target_bytes: u64,
    /// TeraGen seed.
    pub seed: u64,
}

impl Experiment {
    /// The paper's setting for `K` workers: 12 GB target, scaled run sized
    /// by `CTS_RECORDS` (default 120 000 records = 12 MB).
    pub fn paper(k: usize) -> Self {
        Experiment {
            k,
            records: env_usize("CTS_RECORDS", 120_000),
            target_bytes: (env_f64("CTS_TARGET_GB", 12.0) * 1e9) as u64,
            seed: env_usize("CTS_SEED", 2017) as u64,
        }
    }

    /// Real input bytes of the scaled run.
    pub fn input_bytes(&self) -> u64 {
        (self.records * RECORD_LEN) as u64
    }

    /// The projection factor onto the target size.
    pub fn scale(&self) -> f64 {
        self.target_bytes as f64 / self.input_bytes() as f64
    }

    /// Generates the input.
    pub fn input(&self) -> Bytes {
        teragen::generate(self.records, self.seed)
    }

    /// Runs conventional TeraSort and models the paper-scale breakdown.
    pub fn run_uncoded(&self) -> ExperimentResult {
        let input = self.input();
        let run = run_terasort(input, &SortJob::local(self.k, 1)).expect("terasort run");
        run.validate().expect("TeraValidate (uncoded)");
        self.finish(
            run.outcome.stats,
            run.outcome.trace,
            "TeraSort:".to_string(),
        )
    }

    /// Runs CodedTeraSort at redundancy `r` and models the breakdown.
    pub fn run_coded(&self, r: usize) -> ExperimentResult {
        let input = self.input();
        let run =
            run_coded_terasort(input, &SortJob::local(self.k, r)).expect("coded terasort run");
        run.validate().expect("TeraValidate (coded)");
        self.finish(
            run.outcome.stats,
            run.outcome.trace,
            format!("CodedTeraSort: r = {r}"),
        )
    }

    fn finish(&self, mut stats: RunStats, trace: Trace, label: String) -> ExperimentResult {
        stats.scale = self.scale();
        let model = PerfModel::ec2_paper();
        let breakdown = model.evaluate(&stats, &trace);
        ExperimentResult {
            label,
            breakdown,
            stats,
            trace,
        }
    }
}

/// The outcome of one experiment: modeled breakdown plus the raw materials
/// (stats and trace) for ablations.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Row label.
    pub label: String,
    /// Modeled paper-scale stage times.
    pub breakdown: StageBreakdown,
    /// Measured (scaled-run) work counts with the projection factor set.
    pub stats: RunStats,
    /// The transfer trace of the scaled run.
    pub trace: Trace,
}

impl ExperimentResult {
    /// Converts to a table row with a speedup versus `baseline`.
    pub fn row(&self, baseline: Option<&StageBreakdown>) -> TableRow {
        TableRow {
            label: self.label.clone(),
            breakdown: self.breakdown,
            speedup: baseline.map(|b| self.breakdown.speedup_over(b)),
        }
    }
}

/// Runs the full comparison the paper's Tables II/III report: TeraSort
/// plus CodedTeraSort at each `r`, all at `K = k`.
pub fn paper_comparison(k: usize, rs: &[usize]) -> Vec<TableRow> {
    let exp = Experiment::paper(k);
    let base = exp.run_uncoded();
    let mut rows = vec![base.row(None)];
    for &r in rs {
        let coded = exp.run_coded(r);
        rows.push(coded.row(Some(&base.breakdown)));
    }
    rows
}

/// Reads a `usize` environment override.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an `f64` environment override.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Machine-readable bench output: `BENCH_<target>.json` files written
/// next to the console report (gated on `CTS_BENCH_JSON_DIR`, like the
/// criterion shim's kernel-level results).
pub mod results {
    use cts_netsim::breakdown::TableRow;
    use serde::json::Value;
    use serde::Serialize;

    /// Writes an arbitrary JSON document as `BENCH_<target>.json` inside
    /// `$CTS_BENCH_JSON_DIR`. No-op (returning `None`) when the variable
    /// is unset, so plain `cargo bench` runs leave no files behind.
    pub fn write_json(target: &str, doc: &Value) -> Option<std::path::PathBuf> {
        let dir = std::env::var_os("CTS_BENCH_JSON_DIR")?;
        let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
        match std::fs::write(&path, doc.render()) {
            Ok(()) => {
                println!("results json: {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Serializes experiment rows (per-stage breakdowns + speedups) and
    /// writes them as `BENCH_<target>.json` via [`BenchDoc`].
    pub fn write_rows_json(target: &str, rows: &[TableRow]) -> Option<std::path::PathBuf> {
        let mut doc = BenchDoc::new(target);
        for field in [
            "codegen_s",
            "map_s",
            "pack_encode_s",
            "shuffle_s",
            "unpack_decode_s",
            "reduce_s",
            "total_s",
        ] {
            doc = doc.unit(field, "seconds");
        }
        if let Value::Array(rows) = rows.to_json() {
            for row in rows {
                doc.push_row_value(row);
            }
        }
        doc.write()
    }

    /// The one shared `BENCH_*.json` schema every artifact uses, so
    /// results stay comparable across PRs:
    ///
    /// ```json
    /// {"target": "...", "config": {...}, "units": {...}, "rows": [...]}
    /// ```
    ///
    /// `target` names the bench, `config` records the knobs the run used
    /// (K, r, record counts, env overrides), `units` maps row fields to
    /// their unit strings, and `rows` holds the measurements. Build with
    /// the fluent methods and finish with [`write`](BenchDoc::write)
    /// (gated on `CTS_BENCH_JSON_DIR` like [`write_json`]).
    #[derive(Debug)]
    pub struct BenchDoc {
        target: String,
        config: Vec<(String, Value)>,
        units: Vec<(String, Value)>,
        rows: Vec<Value>,
    }

    impl BenchDoc {
        /// An empty document for bench `target`.
        pub fn new(target: impl Into<String>) -> BenchDoc {
            BenchDoc {
                target: target.into(),
                config: Vec::new(),
                units: Vec::new(),
                rows: Vec::new(),
            }
        }

        /// Records one configuration knob.
        pub fn config(mut self, key: &str, value: Value) -> Self {
            self.config.push((key.to_string(), value));
            self
        }

        /// Declares the unit of a row field (e.g. `("p50_ms", "ms")`).
        pub fn unit(mut self, field: &str, unit: &str) -> Self {
            self.units
                .push((field.to_string(), Value::Str(unit.to_string())));
            self
        }

        /// Appends one measurement row.
        pub fn row(&mut self, fields: impl IntoIterator<Item = (&'static str, Value)>) {
            self.rows.push(Value::object(fields));
        }

        /// Appends an already-built row value (for pre-serialized rows).
        pub fn push_row_value(&mut self, row: Value) {
            self.rows.push(row);
        }

        /// Renders the document and writes `BENCH_<target>.json` via
        /// [`write_json`]. No-op without `CTS_BENCH_JSON_DIR`.
        pub fn write(&self) -> Option<std::path::PathBuf> {
            let doc = Value::Object(vec![
                ("target".to_string(), Value::Str(self.target.clone())),
                ("config".to_string(), Value::Object(self.config.clone())),
                ("units".to_string(), Value::Object(self.units.clone())),
                ("rows".to_string(), Value::Array(self.rows.clone())),
            ]);
            write_json(&self.target, &doc)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use cts_netsim::breakdown::StageBreakdown;

        #[test]
        fn rows_json_includes_every_stage() {
            let dir = std::env::temp_dir().join(format!("cts-rows-json-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            std::env::set_var("CTS_BENCH_JSON_DIR", &dir);
            let rows = vec![TableRow {
                label: "TeraSort".into(),
                breakdown: StageBreakdown {
                    map_s: 1.86,
                    shuffle_s: 945.72,
                    ..Default::default()
                },
                speedup: None,
            }];
            let path = write_rows_json("selftest", &rows).expect("written");
            let text = std::fs::read_to_string(&path).unwrap();
            for field in [
                "codegen_s",
                "map_s",
                "pack_encode_s",
                "shuffle_s",
                "unpack_decode_s",
                "reduce_s",
                "total_s",
                "speedup",
            ] {
                assert!(text.contains(field), "missing {field}: {text}");
            }
            assert!(text.contains("945.72"), "{text}");
            std::env::remove_var("CTS_BENCH_JSON_DIR");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The paper's reference numbers, used by benches to print side-by-side
/// comparisons and by tests to check shape.
pub mod reference {
    use cts_netsim::breakdown::StageBreakdown;

    /// Table I / Table II TeraSort row (K = 16).
    pub fn table2_terasort() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 0.0,
            map_s: 1.86,
            pack_encode_s: 2.35,
            shuffle_s: 945.72,
            unpack_decode_s: 0.85,
            reduce_s: 10.47,
        }
    }

    /// Table II CodedTeraSort r = 3 (K = 16), speedup 2.16×.
    pub fn table2_coded_r3() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 6.06,
            map_s: 6.03,
            pack_encode_s: 5.79,
            shuffle_s: 412.22,
            unpack_decode_s: 2.41,
            reduce_s: 13.05,
        }
    }

    /// Table II CodedTeraSort r = 5 (K = 16), speedup 3.39×.
    pub fn table2_coded_r5() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 23.47,
            map_s: 10.84,
            pack_encode_s: 8.10,
            shuffle_s: 222.83,
            unpack_decode_s: 3.69,
            reduce_s: 14.40,
        }
    }

    /// Table III TeraSort row (K = 20).
    pub fn table3_terasort() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 0.0,
            map_s: 1.47,
            pack_encode_s: 2.00,
            shuffle_s: 960.07,
            unpack_decode_s: 0.62,
            reduce_s: 8.29,
        }
    }

    /// Table III CodedTeraSort r = 3 (K = 20), speedup 1.97×.
    pub fn table3_coded_r3() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 19.32,
            map_s: 4.68,
            pack_encode_s: 4.89,
            shuffle_s: 453.37,
            unpack_decode_s: 1.87,
            reduce_s: 9.73,
        }
    }

    /// Table III CodedTeraSort r = 5 (K = 20), speedup 2.20×.
    pub fn table3_coded_r5() -> StageBreakdown {
        StageBreakdown {
            codegen_s: 140.91,
            map_s: 8.59,
            pack_encode_s: 7.51,
            shuffle_s: 269.42,
            unpack_decode_s: 3.70,
            reduce_s: 10.97,
        }
    }

    /// Renders a "paper vs modeled" comparison block.
    pub fn compare(label: &str, paper: &StageBreakdown, ours: &StageBreakdown) -> String {
        let mut out = String::new();
        out.push_str(&format!("{label}\n"));
        out.push_str(&format!(
            "  {:<14} {:>10} {:>10} {:>8}\n",
            "stage", "paper (s)", "model (s)", "Δ%"
        ));
        for ((name, p), (_, m)) in paper.columns().iter().zip(ours.columns().iter()) {
            let delta = if *p > 0.0 {
                format!("{:+.1}%", (m - p) / p * 100.0)
            } else {
                "-".to_string()
            };
            out.push_str(&format!("  {name:<14} {p:>10.2} {m:>10.2} {delta:>8}\n"));
        }
        out.push_str(&format!(
            "  {:<14} {:>10.2} {:>10.2} {:>+7.1}%\n",
            "TOTAL",
            paper.total_s(),
            ours.total_s(),
            (ours.total_s() - paper.total_s()) / paper.total_s() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Experiment {
        Experiment {
            k: 4,
            records: 2_000,
            target_bytes: 12_000_000_000,
            seed: 7,
        }
    }

    #[test]
    fn scale_projects_to_target() {
        let e = small();
        assert_eq!(e.input_bytes(), 200_000);
        assert!((e.scale() - 60_000.0).abs() < 1e-9);
    }

    #[test]
    fn uncoded_experiment_produces_breakdown() {
        let r = small().run_uncoded();
        assert!(r.breakdown.shuffle_s > 0.0);
        assert_eq!(r.breakdown.codegen_s, 0.0);
        assert_eq!(r.stats.k, 4);
    }

    #[test]
    fn coded_beats_uncoded_at_small_scale() {
        let e = small();
        let base = e.run_uncoded();
        let coded = e.run_coded(2);
        assert!(coded.breakdown.shuffle_s < base.breakdown.shuffle_s);
        let row = coded.row(Some(&base.breakdown));
        assert!(row.speedup.unwrap() > 1.0);
    }

    #[test]
    fn comparison_produces_labelled_rows() {
        let rows = paper_comparison(4, &[2, 3]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].label.starts_with("TeraSort"));
        assert!(rows[2].label.contains("r = 3"));
        assert!(rows[0].speedup.is_none());
        assert!(rows[1].speedup.is_some());
    }

    #[test]
    fn env_parsers_fall_back() {
        assert_eq!(env_usize("CTS_NO_SUCH_VAR_12345", 9), 9);
        assert_eq!(env_f64("CTS_NO_SUCH_VAR_12345", 1.5), 1.5);
    }

    #[test]
    fn reference_totals_match_paper() {
        assert!((reference::table2_terasort().total_s() - 961.25).abs() < 0.01);
        assert!((reference::table3_coded_r5().total_s() - 441.10).abs() < 0.01);
        let text = reference::compare(
            "check",
            &reference::table2_terasort(),
            &reference::table2_terasort(),
        );
        assert!(text.contains("+0.0%"));
    }
}
