//! Job admission control for the resident runtime.
//!
//! Two small primitives that together bound how much work a shared fabric
//! will take on:
//!
//! * [`AdmissionQueue`] — a bounded MPMC queue between the service
//!   front-end and the dispatcher threads. Submission is non-blocking:
//!   when the queue is full the caller gets
//!   [`AdmissionError::QueueFull`] immediately (backpressure surfaces at
//!   the client, not as a silent stall inside the runtime).
//! * [`SlotPool`] — the pool of job tag-namespace slots
//!   (`1..=`[`Tag::MAX_JOB_SLOT`](crate::message::Tag::MAX_JOB_SLOT)).
//!   A dispatcher leases a slot for a job's lifetime and returns it when
//!   the job retires; the pool size caps true in-flight concurrency.
//!
//! ```
//! use cts_net::admission::{AdmissionError, AdmissionQueue};
//!
//! let q: AdmissionQueue<u32> = AdmissionQueue::new(2);
//! q.try_enqueue(1).unwrap();
//! q.try_enqueue(2).unwrap();
//! assert!(matches!(
//!     q.try_enqueue(3),
//!     Err(AdmissionError::QueueFull { capacity: 2 })
//! ));
//! assert_eq!(q.dequeue(), Some(1));
//! q.close();
//! assert_eq!(q.dequeue(), Some(2)); // drains before reporting closed
//! assert_eq!(q.dequeue(), None);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use cts_core::metrics::{Counter, Gauge};
use parking_lot::{Condvar, Mutex};

/// Why a submission was refused at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded admission queue is at capacity — retry later.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The runtime is shutting down and accepts no further jobs.
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} jobs queued)")
            }
            AdmissionError::Closed => write!(f, "runtime closed to new jobs"),
        }
    }
}

impl std::error::Error for AdmissionError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer job queue.
///
/// Producers never block: [`try_enqueue`](AdmissionQueue::try_enqueue)
/// fails fast when full. Consumers block in
/// [`dequeue`](AdmissionQueue::dequeue) until an item arrives or the queue
/// is closed *and* drained.
pub struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    cv: Condvar,
    /// Observability: live queue depth, mirrored on every enqueue/dequeue.
    depth_gauge: Option<Arc<Gauge>>,
    /// Observability: submissions refused because the queue was full.
    refused: Option<Arc<Counter>>,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        assert!(capacity > 0, "admission queue needs capacity >= 1");
        AdmissionQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            cv: Condvar::new(),
            depth_gauge: None,
            refused: None,
        }
    }

    /// Attaches a depth gauge and a refusal counter (builder-style, before
    /// the queue is shared). The gauge tracks the live depth; the counter
    /// increments on every [`AdmissionError::QueueFull`] refusal.
    pub fn with_metrics(mut self, depth: Arc<Gauge>, refused: Arc<Counter>) -> Self {
        self.depth_gauge = Some(depth);
        self.refused = Some(refused);
        self
    }

    fn mirror_depth(&self, depth: usize) {
        if let Some(g) = &self.depth_gauge {
            g.set(depth as i64);
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently waiting.
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Enqueues `item` if there is room; never blocks.
    pub fn try_enqueue(&self, item: T) -> Result<(), AdmissionError> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(AdmissionError::Closed);
        }
        if st.items.len() >= self.capacity {
            if let Some(c) = &self.refused {
                c.inc();
            }
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        st.items.push_back(item);
        self.mirror_depth(st.items.len());
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed and fully drained.
    pub fn dequeue(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.mirror_depth(st.items.len());
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Closes the queue: further submissions fail with
    /// [`AdmissionError::Closed`]; consumers drain what is already queued
    /// and then see `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

/// The pool of job tag-namespace slots on one shared fabric.
///
/// Slots `1..=max` are leased in lowest-free order; slot 0 (the exclusive
/// namespace) is never handed out. Pool exhaustion blocks the acquiring
/// dispatcher — by construction the pool is sized to the runtime's
/// `max_concurrent`, so this only ever waits for a retiring job.
pub struct SlotPool {
    max: u8,
    free: Mutex<Vec<u8>>,
    cv: Condvar,
    /// Observability: slots currently leased.
    in_use: Option<Arc<Gauge>>,
}

impl SlotPool {
    /// A pool of slots `1..=max`.
    ///
    /// # Panics
    /// Panics if `max` is zero or exceeds
    /// [`Tag::MAX_JOB_SLOT`](crate::message::Tag::MAX_JOB_SLOT).
    pub fn new(max: u8) -> SlotPool {
        assert!(
            (1..=crate::message::Tag::MAX_JOB_SLOT).contains(&max),
            "slot pool size {max} outside 1..={}",
            crate::message::Tag::MAX_JOB_SLOT
        );
        // Reversed so pop() hands out the lowest slot first.
        SlotPool {
            max,
            free: Mutex::new((1..=max).rev().collect()),
            cv: Condvar::new(),
            in_use: None,
        }
    }

    /// Attaches an occupancy gauge (builder-style, before sharing).
    pub fn with_gauge(mut self, in_use: Arc<Gauge>) -> Self {
        self.in_use = Some(in_use);
        self
    }

    fn mirror(&self, free: usize) {
        if let Some(g) = &self.in_use {
            g.set(self.max as i64 - free as i64);
        }
    }

    /// Takes a free slot without blocking, if one exists.
    pub fn try_acquire(&self) -> Option<u8> {
        let mut free = self.free.lock();
        let slot = free.pop();
        if slot.is_some() {
            self.mirror(free.len());
        }
        slot
    }

    /// Blocks until a slot frees up and takes it.
    pub fn acquire(&self) -> u8 {
        let mut free = self.free.lock();
        loop {
            if let Some(slot) = free.pop() {
                self.mirror(free.len());
                return slot;
            }
            self.cv.wait(&mut free);
        }
    }

    /// Returns `slot` to the pool.
    pub fn release(&self, slot: u8) {
        let mut free = self.free.lock();
        debug_assert!(!free.contains(&slot), "slot {slot} double-released");
        free.push(slot);
        self.mirror(free.len());
        drop(free);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn queue_bounds_and_fifo_order() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(3);
        for i in 0..3 {
            q.try_enqueue(i).unwrap();
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(
            q.try_enqueue(9),
            Err(AdmissionError::QueueFull { capacity: 3 })
        );
        assert_eq!(q.dequeue(), Some(0));
        q.try_enqueue(9).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(9));
    }

    #[test]
    fn close_drains_then_wakes_blocked_consumers() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(2));
        q.try_enqueue(5).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.dequeue() {
                    seen.push(v);
                }
                seen
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(q.try_enqueue(6), Err(AdmissionError::Closed));
        assert_eq!(worker.join().unwrap(), vec![5]);
    }

    #[test]
    fn metrics_mirror_depth_refusals_and_occupancy() {
        use cts_core::metrics::{Counter, Gauge};
        let depth = Arc::new(Gauge::new());
        let refused = Arc::new(Counter::new());
        let q: AdmissionQueue<u32> =
            AdmissionQueue::new(2).with_metrics(Arc::clone(&depth), Arc::clone(&refused));
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        assert_eq!(depth.get(), 2);
        assert!(q.try_enqueue(3).is_err());
        assert_eq!(refused.get(), 1);
        q.dequeue();
        assert_eq!(depth.get(), 1);

        let in_use = Arc::new(Gauge::new());
        let pool = SlotPool::new(3).with_gauge(Arc::clone(&in_use));
        let a = pool.acquire();
        let _b = pool.try_acquire().unwrap();
        assert_eq!(in_use.get(), 2);
        pool.release(a);
        assert_eq!(in_use.get(), 1);
    }

    #[test]
    fn slot_pool_leases_lowest_first_and_recycles() {
        let pool = SlotPool::new(2);
        assert_eq!(pool.try_acquire(), Some(1));
        assert_eq!(pool.try_acquire(), Some(2));
        assert_eq!(pool.try_acquire(), None);
        pool.release(2);
        assert_eq!(pool.try_acquire(), Some(2));
    }

    #[test]
    fn slot_pool_blocking_acquire_waits_for_release() {
        let pool = Arc::new(SlotPool::new(1));
        let slot = pool.acquire();
        assert_eq!(slot, 1);
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.acquire())
        };
        std::thread::sleep(Duration::from_millis(20));
        pool.release(slot);
        assert_eq!(waiter.join().unwrap(), 1);
    }
}
