//! # cts-net — MPI-like message passing for Coded TeraSort
//!
//! The paper implements TeraSort and CodedTeraSort in C++ over Open MPI on
//! an EC2 cluster. There is no comparable Rust substrate, so this crate
//! builds one from scratch:
//!
//! * [`mailbox`] — blocking, `(source, tag)`-matched message queues with
//!   MPI receive semantics;
//! * [`local`] — an in-process fabric (threads + shared mailboxes) that
//!   moves real bytes at memory speed, with zero-copy native multicast;
//! * [`nio`] — the non-blocking I/O core: incremental framed reads/writes,
//!   the round-robin write executor, adaptive backoff;
//! * [`registry`] — the rank → address registry and deterministic mesh
//!   bring-up, scaling single-host emulation to `K = 128`;
//! * [`tcp`] — a real-socket fabric (lazily connected TCP mesh over
//!   loopback, length-prefixed frames, one event-driven reactor thread per
//!   endpoint, overlapped multicast writes);
//! * [`udp`] — physical UDP/IP-multicast transport: one datagram stream
//!   per coded packet to a per-group multicast address, with MTU chunking
//!   and NACK-based loss recovery over the TCP control channel;
//! * [`fabric`] — the [`ShuffleFabric`] selector: serial-unicast vs fanout
//!   vs native multicast realizations of a group send;
//! * [`comm`] — the per-node [`Communicator`]:
//!   send/recv, barrier, legacy tree/flat broadcast, fabric-aware
//!   [`Communicator::multicast`] (the `MPI_Bcast` of the paper's Multicast
//!   Shuffling), gather, scatter;
//! * [`rate`] — emulated-NIC pacing: token-bucket egress shaping (the
//!   paper's 100 Mbps `tc` cap), per-transfer latency, multicast `α`;
//! * [`trace`] — transfer tracing: every unicast and multicast with stage
//!   labels, byte counts, and per-fabric egress frame counts, consumed by
//!   `cts-netsim`'s calibrated network model;
//! * [`span`] — stage spans: wall-clock brackets per job and rank driven
//!   by the engines' `set_stage` annotations, recorded into a bounded
//!   ring for live daemon introspection (`cts stats`, `--timeline`);
//! * [`cluster`] — SPMD runners ([`run_spmd`]) spawning
//!   one thread per rank over either fabric, with panic-safe teardown,
//!   plus the resident [`SharedFabric`] that runs many concurrent
//!   job-scoped SPMD programs over one set of transports;
//! * [`admission`] — admission control for the resident runtime: a
//!   bounded job queue that refuses (rather than stalls) when full, and
//!   the pool of per-job tag-namespace slots;
//! * [`fault`] — transport-level fault injection for failure testing,
//!   including crash-at-point specs ([`fault::CrashSpec`]);
//! * [`health`] — per-rank liveness (Alive/Suspect/Dead) driven by
//!   heartbeat deadlines with bounded exponential backoff, feeding
//!   [`registry::MembershipView`]s and typed
//!   [`NetError::PeerDead`] receive failures.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::cluster::{run_spmd, ClusterConfig};
//! use cts_net::message::Tag;
//!
//! // Three nodes; node 0 multicasts a packet to the whole group.
//! let run = run_spmd(&ClusterConfig::local(3), |comm| {
//!     comm.set_stage("Shuffle");
//!     let data = (comm.rank() == 0).then(|| Bytes::from_static(b"coded packet"));
//!     comm.broadcast(0, &[0, 1, 2], Tag::new(Tag::BCAST, 0), data).unwrap()
//! })
//! .unwrap();
//! assert!(run.results.iter().all(|r| r == "coded packet"));
//! // The trace counted the multicast's bytes once.
//! assert_eq!(run.trace.stage_bytes("Shuffle"), 12);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cluster;
pub mod comm;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod health;
pub mod local;
pub mod mailbox;
pub mod message;
pub mod nio;
pub mod rate;
pub mod registry;
pub mod span;
pub mod tcp;
pub mod trace;
pub mod transport;
pub mod udp;

pub use admission::{AdmissionError, AdmissionQueue, SlotPool};
pub use cluster::{
    run_spmd, run_spmd_with_inputs, ClusterConfig, ClusterRun, JobBinding, SharedFabric,
    TransportKind,
};
pub use comm::{BcastAlgorithm, Communicator};
pub use error::{NetError, Result};
pub use fabric::ShuffleFabric;
pub use health::{HealthBoard, HealthConfig, Heartbeat, Liveness};
pub use message::{Message, Tag};
pub use rate::{Nic, NicMeter, NicProfile};
pub use registry::{MembershipView, RankRegistry};
pub use span::{SpanCollector, SpanLog, StageSpan};
pub use trace::{EventKind, Trace, TraceCollector, TraceEvent};
pub use transport::Transport;
pub use udp::{build_udp_fabric, UdpConfig, UdpEndpoint, UdpFabricStats};
