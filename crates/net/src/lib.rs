//! # cts-net — MPI-like message passing for Coded TeraSort
//!
//! The paper implements TeraSort and CodedTeraSort in C++ over Open MPI on
//! an EC2 cluster. There is no comparable Rust substrate, so this crate
//! builds one from scratch:
//!
//! * [`mailbox`] — blocking, `(source, tag)`-matched message queues with
//!   MPI receive semantics;
//! * [`local`] — an in-process fabric (threads + shared mailboxes) that
//!   moves real bytes at memory speed;
//! * [`tcp`] — a real-socket fabric (full TCP mesh over loopback,
//!   length-prefixed frames, one reader thread per peer);
//! * [`comm`] — the per-node [`Communicator`]:
//!   send/recv, barrier, binomial-tree or flat broadcast (the `MPI_Bcast`
//!   of the paper's Multicast Shuffling), gather, scatter;
//! * [`rate`] — token-bucket egress shaping (the paper's 100 Mbps `tc` cap)
//!   for real-time demos;
//! * [`trace`] — transfer tracing: every unicast and multicast with stage
//!   labels and byte counts, consumed by `cts-netsim`'s calibrated network
//!   model;
//! * [`cluster`] — SPMD runners ([`run_spmd`]) spawning
//!   one thread per rank over either fabric, with panic-safe teardown;
//! * [`fault`] — transport-level fault injection for failure testing.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::cluster::{run_spmd, ClusterConfig};
//! use cts_net::message::Tag;
//!
//! // Three nodes; node 0 multicasts a packet to the whole group.
//! let run = run_spmd(&ClusterConfig::local(3), |comm| {
//!     comm.set_stage("Shuffle");
//!     let data = (comm.rank() == 0).then(|| Bytes::from_static(b"coded packet"));
//!     comm.broadcast(0, &[0, 1, 2], Tag::new(Tag::BCAST, 0), data).unwrap()
//! })
//! .unwrap();
//! assert!(run.results.iter().all(|r| r == "coded packet"));
//! // The trace counted the multicast's bytes once.
//! assert_eq!(run.trace.stage_bytes("Shuffle"), 12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod comm;
pub mod error;
pub mod fault;
pub mod local;
pub mod mailbox;
pub mod message;
pub mod rate;
pub mod tcp;
pub mod trace;
pub mod transport;

pub use cluster::{run_spmd, run_spmd_with_inputs, ClusterConfig, ClusterRun, TransportKind};
pub use comm::{BcastAlgorithm, Communicator};
pub use error::{NetError, Result};
pub use message::{Message, Tag};
pub use trace::{EventKind, Trace, TraceCollector, TraceEvent};
pub use transport::Transport;
