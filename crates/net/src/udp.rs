//! Physical UDP/IP-multicast transport with a NACK-based reliability layer.
//!
//! Every other fabric in this crate *emulates* the paper's headline gain —
//! one coded transmission serving `r` receivers — by charging a single
//! egress crossing while really copying bytes per receiver. This module
//! makes the gain physical: a coded packet is chunked to fit the MTU and
//! sent as **one stream of UDP datagrams to a multicast group address**
//! ([`std::net::UdpSocket::join_multicast_v4`]); the kernel's network
//! stack, not the application, fans it out to the receiver set.
//!
//! ## Architecture
//!
//! * **Group addressing** — [`registry::UdpGroupPlan`](crate::registry::UdpGroupPlan)
//!   hashes each multicast set (receiver bitmask) onto a small pool of
//!   administratively scoped group addresses sharing one UDP port. All
//!   endpoints join the pool once at bring-up (Linux caps IGMP memberships
//!   per socket, so per-`C(K, r+1)`-group memberships cannot scale);
//!   receiver-mask filtering in the chunk header resolves pool collisions,
//!   like coarse IGMP snooping on a real switch.
//! * **Chunking** — a payload is split into datagrams of
//!   [`UdpConfig::chunk_bytes`] (default 1400 B, conservatively under an
//!   Ethernet MTU with the 40-byte chunk header), each carrying
//!   `(sender, seq, tag, chunk index/count, receiver mask)`.
//! * **Reassembly** — one fabric-wide dispatcher thread reads the shared
//!   receive socket and feeds each rank's reassembly table; a completed
//!   message is delivered exactly once into that rank's mailbox. (On a
//!   real LAN each host would own its socket; the shared receive socket is
//!   purely a single-host-emulation artifact, mirroring how
//!   [`local`](crate::local) shares memory.)
//! * **Loss recovery** — receivers detect stalls while blocked in `recv`:
//!   after [`UdpConfig::nack_interval`] of silence they run a bounded
//!   *recovery round* over the **TCP control channel** (the lazy
//!   [`tcp`](crate::tcp) mesh underneath): a status request returns the
//!   sender's retained `(seq, tag, chunk count)` manifest for this
//!   receiver, and a NACK with a missing-chunk bitmap triggers
//!   retransmission. The first [`UdpConfig::max_multicast_repairs`] NACKs
//!   of a message are served by re-multicasting the missing chunks (they
//!   may help other receivers too); after that the sender falls back to
//!   lossless TCP unicast repair, so recovery always terminates.
//! * **Unicast and collectives** — [`Transport::send`] (barriers, gathers,
//!   TeraSort's unicast shuffle) rides the TCP mesh unchanged; only
//!   [`Transport::multicast`] takes the physical path.
//!
//! Delivery is exactly-once per message (duplicates are absorbed by the
//! reassembly table), but under loss two messages carrying the *same*
//! `(source, tag)` pair can complete out of send order — callers must use
//! distinct tags for concurrently in-flight multicasts, which the coded
//! engine's one-tag-per-group discipline satisfies.
//!
//! Kernels can deny multicast membership (containers without a
//! multicast-capable interface); [`build_udp_fabric`] probes loopback
//! delivery at bring-up and fails with a descriptive
//! [`NetError::Io`](crate::error::NetError) so tests and CI can skip
//! gracefully — check [`multicast_available`] first.
//!
//! ```no_run
//! use bytes::Bytes;
//! use cts_net::message::Tag;
//! use cts_net::transport::Transport;
//! use cts_net::udp::build_udp_fabric;
//!
//! let endpoints = build_udp_fabric(3).unwrap();
//! // One physical multicast: a single datagram stream serves both.
//! endpoints[0]
//!     .multicast(&[1, 2], Tag::app(0), Bytes::from_static(b"coded"))
//!     .unwrap();
//! assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "coded");
//! assert_eq!(endpoints[2].recv(0, Tag::app(0)).unwrap(), "coded");
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::{NetError, Result};
use crate::fault::{DatagramAction, DatagramRule};
use crate::mailbox::Mailbox;
use crate::message::{Message, Tag};
use crate::nio::Backoff;
use crate::registry::UdpGroupPlan;
use crate::tcp::{build_tcp_fabric, TcpEndpoint};
use crate::transport::Transport;

/// First bytes of every data chunk ("CTSU" little-endian).
const MAGIC: u32 = 0x5553_5443;
/// Magic of the bring-up probe datagram, so stray probes never enter
/// reassembly.
const PROBE_MAGIC: u32 = 0x5053_5443;
/// Fixed chunk header size on the wire.
const HEADER_LEN: usize = 40;
/// Control-channel tags (constant sub-sequence; the mailbox FIFO per
/// `(src, tag)` orders the streams).
const CTRL_TAG: Tag = Tag((Tag::UDP_CTRL as u32) << 24);
const REPLY_TAG: Tag = Tag((Tag::UDP_REPLY as u32) << 24);
const REPAIR_TAG: Tag = Tag((Tag::UDP_REPAIR as u32) << 24);
/// How long the polling `recv` loop blocks on the TCP mailbox per
/// iteration (also bounds udp-mailbox wake-up latency).
const POLL_SLICE: Duration = Duration::from_millis(1);
/// How long a recovery round waits for the sender's status reply.
const STATUS_REPLY_TIMEOUT: Duration = Duration::from_millis(250);

/// Counters describing the UDP fabric's datagram-level behaviour, shared
/// by every endpoint of one fabric. Tests keep a clone of the
/// [`UdpConfig::stats`] handle to assert delivery really went over
/// multicast and that loss recovery stayed within its retransmit budget.
#[derive(Debug, Default)]
pub struct UdpFabricStats {
    datagrams_sent: AtomicU64,
    datagrams_received: AtomicU64,
    dropped_by_fault: AtomicU64,
    messages_completed: AtomicU64,
    nacks_sent: AtomicU64,
    status_rounds: AtomicU64,
    mcast_repair_chunks: AtomicU64,
    tcp_repair_chunks: AtomicU64,
}

macro_rules! stat_getters {
    ($($(#[$doc:meta])* $field:ident),* $(,)?) => {
        $( $(#[$doc])* pub fn $field(&self) -> u64 {
            self.$field.load(Ordering::Relaxed)
        } )*
    };
}

impl UdpFabricStats {
    stat_getters! {
        /// Data chunks that left a sender socket (first transmissions plus
        /// multicast repairs).
        datagrams_sent,
        /// Data chunks the dispatcher read off the shared receive socket.
        datagrams_received,
        /// Chunks suppressed by the injected [`DatagramRule`].
        dropped_by_fault,
        /// Messages fully reassembled and delivered (across all ranks).
        messages_completed,
        /// NACKs receivers sent over the TCP control channel.
        nacks_sent,
        /// Status-request recovery rounds receivers ran.
        status_rounds,
        /// Missing chunks re-multicast in response to NACKs.
        mcast_repair_chunks,
        /// Missing chunks repaired over lossless TCP unicast (the
        /// post-budget fallback).
        tcp_repair_chunks,
    }
}

/// Tuning knobs of the UDP fabric.
#[derive(Clone)]
pub struct UdpConfig {
    /// Payload bytes per datagram (the MTU budget minus the 40-byte chunk
    /// header). Default 1400: under a 1500-byte Ethernet MTU, so chunks
    /// never rely on IP fragmentation on a real LAN.
    pub chunk_bytes: usize,
    /// Multicast group-address pool size (see [`UdpGroupPlan`]).
    pub pool_size: u8,
    /// How long a blocked receive stays quiet before running a NACK /
    /// status recovery round against the awaited sender.
    pub nack_interval: Duration,
    /// How many NACKs of one message are served by *re-multicasting* the
    /// missing chunks before the sender falls back to TCP unicast repair.
    pub max_multicast_repairs: u32,
    /// Recovery rounds *with something outstanding to repair* a single
    /// receive attempts before giving up with `Timeout` (bounding a loss
    /// stall at roughly `max_recovery_rounds × nack_interval`). Rounds
    /// where the awaited sender simply has not sent yet do not count —
    /// `recv` blocks indefinitely on healthy silence like every other
    /// transport.
    pub max_recovery_rounds: u32,
    /// Sent messages retained per endpoint for repair (ring buffer; a NACK
    /// for an evicted message cannot be served, so receivers of very deep
    /// backlogs should raise this).
    pub history: usize,
    /// Injected datagram loss for tests (see
    /// [`fault::datagram_loss_rule`](crate::fault::datagram_loss_rule)).
    pub fault: Option<Arc<DatagramRule>>,
    /// Shared counter sink; clone the handle before building the fabric to
    /// observe it from outside.
    pub stats: Arc<UdpFabricStats>,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            chunk_bytes: 1400,
            pool_size: UdpGroupPlan::DEFAULT_POOL,
            nack_interval: Duration::from_millis(20),
            max_multicast_repairs: 2,
            max_recovery_rounds: 400,
            history: 4096,
            fault: None,
            stats: Arc::new(UdpFabricStats::default()),
        }
    }
}

impl std::fmt::Debug for UdpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpConfig")
            .field("chunk_bytes", &self.chunk_bytes)
            .field("pool_size", &self.pool_size)
            .field("nack_interval", &self.nack_interval)
            .field("max_multicast_repairs", &self.max_multicast_repairs)
            .field("max_recovery_rounds", &self.max_recovery_rounds)
            .field("history", &self.history)
            .field("fault", &self.fault.as_ref().map(|_| "<rule>"))
            .finish_non_exhaustive()
    }
}

/// One data chunk's header fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ChunkHeader {
    sender: u16,
    chunk_idx: u16,
    chunk_count: u16,
    /// The sender's nominal chunk payload size, so receivers place any
    /// chunk at `chunk_idx × nominal` without needing chunk 0 first.
    nominal: u16,
    seq: u32,
    tag: u32,
    total_len: u32,
    mask: u128,
}

impl ChunkHeader {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.sender.to_le_bytes());
        out.extend_from_slice(&self.chunk_idx.to_le_bytes());
        out.extend_from_slice(&self.chunk_count.to_le_bytes());
        out.extend_from_slice(&self.nominal.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&self.mask.to_le_bytes());
    }

    fn parse(buf: &[u8]) -> Option<ChunkHeader> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        let u16_at = |i: usize| u16::from_le_bytes(buf[i..i + 2].try_into().expect("2 bytes"));
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("4 bytes"));
        if u32_at(0) != MAGIC {
            return None;
        }
        Some(ChunkHeader {
            sender: u16_at(4),
            chunk_idx: u16_at(6),
            chunk_count: u16_at(8),
            nominal: u16_at(10),
            seq: u32_at(12),
            tag: u32_at(16),
            total_len: u32_at(20),
            mask: u128::from_le_bytes(buf[24..40].try_into().expect("16 bytes")),
        })
    }
}

/// A message being reassembled from its chunks.
#[derive(Debug)]
struct Reassembly {
    tag: u32,
    total_len: usize,
    chunk_count: u16,
    nominal: usize,
    have: Vec<bool>,
    got: u16,
    buf: Vec<u8>,
}

impl Reassembly {
    fn new(tag: u32, total_len: usize, chunk_count: u16, nominal: usize) -> Reassembly {
        Reassembly {
            tag,
            total_len,
            chunk_count,
            nominal,
            have: vec![false; chunk_count as usize],
            got: 0,
            buf: vec![0u8; total_len],
        }
    }

    /// Bitmap of still-missing chunks (bit set = missing), for NACKs.
    fn missing_bitmap(&self) -> Vec<u8> {
        let mut bits = vec![0u8; self.have.len().div_ceil(8)];
        for (i, have) in self.have.iter().enumerate() {
            if !have {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        bits
    }
}

/// Per-rank receive state: reassembly table plus the mailbox completed
/// messages are delivered into.
struct RankRx {
    mailbox: Mailbox,
    state: Mutex<RxState>,
    /// Dedup horizon, mirroring the sender's [`UdpConfig::history`] ring:
    /// duplicates of a message can only originate from repairs, and a
    /// sender can only repair what its ring still retains, so `done`
    /// entries older than the horizon below the highest seq seen per
    /// sender are safe to forget — this bounds receiver state for
    /// long-lived fabrics instead of leaking one entry per message.
    dedup_horizon: u32,
}

#[derive(Default)]
struct RxState {
    partial: HashMap<(u16, u32), Reassembly>,
    /// Seqs already delivered, for exactly-once absorption of duplicates
    /// and late repairs (pruned past the dedup horizon).
    done: HashSet<(u16, u32)>,
    /// Highest seq seen per sender, driving `done` pruning.
    max_seq: HashMap<u16, u32>,
}

impl RankRx {
    fn new(rank: usize, dedup_horizon: usize) -> RankRx {
        RankRx {
            mailbox: Mailbox::new(rank),
            state: Mutex::new(RxState::default()),
            dedup_horizon: u32::try_from(dedup_horizon).unwrap_or(u32::MAX),
        }
    }

    /// Feeds one chunk (from the dispatcher or a TCP repair frame) into
    /// reassembly; delivers the message on completion. Malformed chunks
    /// are dropped — the reliability layer treats them as lost.
    fn ingest(&self, h: &ChunkHeader, data: &[u8], stats: &UdpFabricStats) {
        let key = (h.sender, h.seq);
        // Shape sanity: the chunk count must be exactly what the declared
        // total length and nominal chunk size imply, which also guarantees
        // every chunk's offset lands inside the reassembly buffer — a
        // forged or corrupt header can otherwise point past it. The rx
        // socket is joined to well-known group addresses, so hostile
        // datagrams must never panic the fabric-wide dispatcher.
        if h.chunk_count == 0 || h.chunk_idx >= h.chunk_count || h.nominal == 0 {
            return;
        }
        let implied = (h.total_len as usize).div_ceil(h.nominal as usize).max(1);
        if h.chunk_count as usize != implied {
            return;
        }
        let mut state = self.state.lock();
        if state.done.contains(&key) {
            return;
        }
        let entry = state.partial.entry(key).or_insert_with(|| {
            Reassembly::new(
                h.tag,
                h.total_len as usize,
                h.chunk_count,
                h.nominal as usize,
            )
        });
        // A chunk disagreeing with the established shape is corrupt: drop.
        if entry.chunk_count != h.chunk_count
            || entry.total_len != h.total_len as usize
            || entry.nominal != h.nominal as usize
            || entry.tag != h.tag
        {
            return;
        }
        let offset = h.chunk_idx as usize * entry.nominal;
        let expected = entry.nominal.min(entry.total_len.saturating_sub(offset));
        if data.len() != expected {
            return;
        }
        if entry.have[h.chunk_idx as usize] {
            return; // duplicate
        }
        entry.buf[offset..offset + expected].copy_from_slice(data);
        entry.have[h.chunk_idx as usize] = true;
        entry.got += 1;
        if entry.got == entry.chunk_count {
            let done = state.partial.remove(&key).expect("entry just updated");
            state.done.insert(key);
            let max = state.max_seq.entry(h.sender).or_insert(h.seq);
            if h.seq > *max {
                *max = h.seq;
            }
            // Amortized prune: once the dedup set outgrows a few horizons,
            // drop entries no sender's repair ring can re-send.
            if state.done.len() > (self.dedup_horizon as usize).saturating_mul(4).max(1024) {
                let horizon = self.dedup_horizon;
                let RxState { done, max_seq, .. } = &mut *state;
                done.retain(|(s, q)| {
                    max_seq
                        .get(s)
                        .is_none_or(|m| *q >= m.saturating_sub(horizon))
                });
            }
            drop(state);
            stats.messages_completed.fetch_add(1, Ordering::Relaxed);
            self.mailbox.deliver(Message {
                src: h.sender as usize,
                tag: Tag(done.tag),
                payload: Bytes::from(done.buf),
            });
        }
    }
}

/// State shared by every endpoint of one UDP fabric.
struct FabricCore {
    plan: UdpGroupPlan,
    rx: Vec<Arc<RankRx>>,
    stats: Arc<UdpFabricStats>,
    stop: AtomicBool,
    live: AtomicUsize,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

/// One message retained for repair.
struct SentMsg {
    seq: u32,
    tag: u32,
    mask: u128,
    payload: Bytes,
    /// NACKs of this message already served by re-multicast; beyond
    /// [`UdpConfig::max_multicast_repairs`], repairs go over TCP.
    repair_rounds: u32,
}

#[derive(Default)]
struct SendHistory {
    next_seq: u32,
    ring: VecDeque<SentMsg>,
}

/// The endpoint internals, shared with the control-servicer thread.
struct Shared {
    rank: usize,
    tcp: Arc<TcpEndpoint>,
    core: Arc<FabricCore>,
    cfg: UdpConfig,
    tx: UdpSocket,
    history: Mutex<SendHistory>,
    dg_index: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    /// Sends the chunks of one message (all of them, or just the NACKed
    /// subset) as multicast datagrams to the mask's group address.
    fn send_chunks(
        &self,
        mask: u128,
        seq: u32,
        tag: u32,
        payload: &[u8],
        only_missing: Option<&[u8]>,
    ) -> Result<()> {
        let nominal = self.cfg.chunk_bytes;
        let chunk_count = chunk_count_for(payload.len(), nominal)?;
        let addr = self.core.plan.addr_for(mask);
        let mut frame = Vec::with_capacity(HEADER_LEN + nominal);
        for (idx, span) in chunk_spans(payload.len(), nominal, chunk_count, only_missing) {
            frame.clear();
            ChunkHeader {
                sender: self.rank as u16,
                chunk_idx: idx,
                chunk_count,
                nominal: nominal as u16,
                seq,
                tag,
                total_len: payload.len() as u32,
                mask,
            }
            .write(&mut frame);
            frame.extend_from_slice(&payload[span]);
            let dgi = self.dg_index.fetch_add(1, Ordering::Relaxed);
            if let Some(rule) = &self.cfg.fault {
                if rule(self.rank, mask, seq, idx, dgi) == DatagramAction::Drop {
                    self.core
                        .stats
                        .dropped_by_fault
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            self.tx.send_to(&frame, addr)?;
            self.core
                .stats
                .datagrams_sent
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// One blocked-receive recovery round against `src`: ask for the
    /// sender's manifest of messages addressed to us, then NACK everything
    /// incomplete. Returns whether anything was actually outstanding
    /// (NACKs sent, or the reply timed out with partials in flight) — an
    /// idle round means the peer simply has not sent yet, which must not
    /// count against the caller's recovery budget. The reply timing out is
    /// also reported `Ok` — persistence is bounded by the caller.
    fn recovery_round(&self, src: usize) -> Result<bool> {
        self.core
            .stats
            .status_rounds
            .fetch_add(1, Ordering::Relaxed);
        self.tcp
            .send(src, CTRL_TAG, Bytes::from_static(&[CTRL_STATUS_REQ]))?;
        let rx = &self.core.rx[self.rank];
        let partials_from_src = |rx: &RankRx| {
            rx.state
                .lock()
                .partial
                .keys()
                .any(|(sender, _)| *sender as usize == src)
        };
        let reply = match self.tcp.recv_timeout(src, REPLY_TAG, STATUS_REPLY_TIMEOUT) {
            Ok(reply) => reply,
            // An unresponsive sender only counts against the recovery
            // budget while we hold incomplete reassemblies from it.
            Err(NetError::Timeout { .. }) => return Ok(partials_from_src(rx)),
            Err(e) => return Err(e),
        };
        let mut outstanding = false;
        for entry in parse_status_reply(&reply) {
            let (seq, tag, chunk_count, total_len, nominal) = entry;
            let key = (src as u16, seq);
            let bitmap = {
                let mut state = rx.state.lock();
                if state.done.contains(&key) {
                    continue;
                }
                state
                    .partial
                    .entry(key)
                    .or_insert_with(|| {
                        Reassembly::new(tag, total_len as usize, chunk_count, nominal as usize)
                    })
                    .missing_bitmap()
            };
            if bitmap.iter().all(|b| *b == 0) {
                continue;
            }
            outstanding = true;
            let mut nack = Vec::with_capacity(7 + bitmap.len());
            nack.push(CTRL_NACK);
            nack.extend_from_slice(&seq.to_le_bytes());
            nack.extend_from_slice(&chunk_count.to_le_bytes());
            nack.extend_from_slice(&bitmap);
            self.tcp.send(src, CTRL_TAG, Bytes::from(nack))?;
            self.core.stats.nacks_sent.fetch_add(1, Ordering::Relaxed);
        }
        Ok(outstanding)
    }
}

const CTRL_STATUS_REQ: u8 = 0;
const CTRL_NACK: u8 = 1;

/// Iterates `(chunk_idx, payload byte range)` over a message's chunks,
/// restricted to the ones a NACK bitmap marks missing (`None` = all).
/// Shared by the multicast send path and the TCP repair path so the two
/// wire forms can never disagree on chunk addressing.
fn chunk_spans<'a>(
    len: usize,
    nominal: usize,
    chunk_count: u16,
    missing: Option<&'a [u8]>,
) -> impl Iterator<Item = (u16, std::ops::Range<usize>)> + 'a {
    (0..chunk_count).filter_map(move |idx| {
        let i = idx as usize;
        if let Some(bits) = missing {
            if i / 8 >= bits.len() || bits[i / 8] & (1 << (i % 8)) == 0 {
                return None;
            }
        }
        let offset = i * nominal;
        Some((idx, offset..(offset + nominal).min(len)))
    })
}

fn chunk_count_for(len: usize, nominal: usize) -> Result<u16> {
    let count = len.div_ceil(nominal).max(1);
    u16::try_from(count).map_err(|_| NetError::Io {
        what: format!(
            "payload of {len} bytes exceeds {} chunks of {nominal}",
            u16::MAX
        ),
    })
}

/// Status-reply wire format: `[n u32]` then `n` entries of
/// `[seq u32][tag u32][chunk_count u16][nominal u16][total_len u32]`.
fn parse_status_reply(buf: &[u8]) -> Vec<(u32, u32, u16, u32, u16)> {
    let mut out = Vec::new();
    if buf.len() < 4 {
        return out;
    }
    let n = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let mut at = 4;
    for _ in 0..n {
        if at + 16 > buf.len() {
            break;
        }
        let seq = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4"));
        let tag = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4"));
        let chunk_count = u16::from_le_bytes(buf[at + 8..at + 10].try_into().expect("2"));
        let nominal = u16::from_le_bytes(buf[at + 10..at + 12].try_into().expect("2"));
        let total_len = u32::from_le_bytes(buf[at + 12..at + 16].try_into().expect("4"));
        out.push((seq, tag, chunk_count, total_len, nominal));
        at += 16;
    }
    out
}

/// The fabric-wide dispatcher: reads the shared receive socket, filters by
/// receiver mask, and feeds each addressed rank's reassembly table — the
/// single-host stand-in for per-host multicast reception.
fn dispatcher_loop(sock: UdpSocket, core: &FabricCore) {
    let mut buf = vec![0u8; 65536];
    let world = core.rx.len();
    while !core.stop.load(Ordering::Acquire) {
        let n = match sock.recv_from(&mut buf) {
            Ok((n, _)) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let Some(h) = ChunkHeader::parse(&buf[..n]) else {
            continue; // probe datagrams and foreign traffic
        };
        core.stats
            .datagrams_received
            .fetch_add(1, Ordering::Relaxed);
        let data = &buf[HEADER_LEN..n];
        let mut mask = h.mask;
        while mask != 0 {
            let rank = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if rank < world && rank != h.sender as usize {
                core.rx[rank].ingest(&h, data, &core.stats);
            }
        }
    }
}

/// The per-endpoint control servicer: answers status requests with the
/// send-history manifest, and serves NACKs by re-multicasting missing
/// chunks (within budget) or repairing over TCP; inbound TCP repair
/// chunks are fed into this rank's own reassembly.
fn servicer_loop(shared: &Shared) {
    let world = shared.tcp.world_size();
    let mut backoff = Backoff::with_max_park_us(1_000);
    while !shared.stop.load(Ordering::Acquire) {
        let mut progressed = false;
        for src in (0..world).filter(|&s| s != shared.rank) {
            while let Ok(Some(msg)) = shared.tcp.try_recv(src, CTRL_TAG) {
                progressed = true;
                let _ = handle_ctrl(shared, src, &msg);
            }
            while let Ok(Some(msg)) = shared.tcp.try_recv(src, REPAIR_TAG) {
                progressed = true;
                handle_repair(shared, src, &msg);
            }
        }
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }
}

fn handle_ctrl(shared: &Shared, src: usize, msg: &[u8]) -> Result<()> {
    match msg.first() {
        Some(&CTRL_STATUS_REQ) => {
            let bit = 1u128 << src;
            let history = shared.history.lock();
            // `multicast` validates the chunk count before recording
            // history, so every retained entry chunks cleanly; skip (never
            // panic over) anything that somehow does not — this thread
            // serves the whole rank's reliability layer.
            let mine: Vec<&SentMsg> = history
                .ring
                .iter()
                .filter(|m| {
                    m.mask & bit != 0
                        && chunk_count_for(m.payload.len(), shared.cfg.chunk_bytes).is_ok()
                })
                .collect();
            let mut reply = Vec::with_capacity(4 + mine.len() * 16);
            reply.extend_from_slice(&(mine.len() as u32).to_le_bytes());
            for m in &mine {
                let chunk_count = chunk_count_for(m.payload.len(), shared.cfg.chunk_bytes)
                    .expect("filtered above");
                reply.extend_from_slice(&m.seq.to_le_bytes());
                reply.extend_from_slice(&m.tag.to_le_bytes());
                reply.extend_from_slice(&chunk_count.to_le_bytes());
                reply.extend_from_slice(&(shared.cfg.chunk_bytes as u16).to_le_bytes());
                reply.extend_from_slice(&(m.payload.len() as u32).to_le_bytes());
            }
            drop(history);
            shared.tcp.send(src, REPLY_TAG, Bytes::from(reply))
        }
        Some(&CTRL_NACK) if msg.len() >= 7 => {
            let seq = u32::from_le_bytes(msg[1..5].try_into().expect("4 bytes"));
            let bitmap = &msg[7..];
            let mut history = shared.history.lock();
            let Some(m) = history.ring.iter_mut().find(|m| m.seq == seq) else {
                return Ok(()); // evicted from the ring: unrepairable
            };
            m.repair_rounds += 1;
            let (mask, tag, payload, rounds) = (m.mask, m.tag, m.payload.clone(), m.repair_rounds);
            drop(history);
            if rounds <= shared.cfg.max_multicast_repairs {
                let before = shared.core.stats.datagrams_sent.load(Ordering::Relaxed);
                shared.send_chunks(mask, seq, tag, &payload, Some(bitmap))?;
                let sent = shared.core.stats.datagrams_sent.load(Ordering::Relaxed) - before;
                shared
                    .core
                    .stats
                    .mcast_repair_chunks
                    .fetch_add(sent, Ordering::Relaxed);
            } else {
                repair_over_tcp(shared, src, seq, tag, &payload, bitmap)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Sends the NACKed chunks as TCP repair frames:
/// `[seq u32][tag u32][chunk_idx u16][chunk_count u16][nominal u16][total_len u32][data]`.
fn repair_over_tcp(
    shared: &Shared,
    dst: usize,
    seq: u32,
    tag: u32,
    payload: &[u8],
    bitmap: &[u8],
) -> Result<()> {
    let nominal = shared.cfg.chunk_bytes;
    let chunk_count = chunk_count_for(payload.len(), nominal)?;
    for (idx, span) in chunk_spans(payload.len(), nominal, chunk_count, Some(bitmap)) {
        let mut frame = Vec::with_capacity(18 + span.len());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&idx.to_le_bytes());
        frame.extend_from_slice(&chunk_count.to_le_bytes());
        frame.extend_from_slice(&(nominal as u16).to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload[span]);
        shared.tcp.send(dst, REPAIR_TAG, Bytes::from(frame))?;
        shared
            .core
            .stats
            .tcp_repair_chunks
            .fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

fn handle_repair(shared: &Shared, src: usize, msg: &[u8]) {
    if msg.len() < 18 {
        return;
    }
    let h = ChunkHeader {
        sender: src as u16,
        chunk_idx: u16::from_le_bytes(msg[8..10].try_into().expect("2")),
        chunk_count: u16::from_le_bytes(msg[10..12].try_into().expect("2")),
        nominal: u16::from_le_bytes(msg[12..14].try_into().expect("2")),
        seq: u32::from_le_bytes(msg[0..4].try_into().expect("4")),
        tag: u32::from_le_bytes(msg[4..8].try_into().expect("4")),
        total_len: u32::from_le_bytes(msg[14..18].try_into().expect("4")),
        mask: 1u128 << shared.rank,
    };
    shared.core.rx[shared.rank].ingest(&h, &msg[18..], &shared.core.stats);
}

/// One endpoint of a UDP-multicast fabric: physical multicast for group
/// sends, the lazy TCP mesh for unicasts and control traffic.
pub struct UdpEndpoint {
    shared: Arc<Shared>,
    servicer: Mutex<Option<JoinHandle<()>>>,
}

impl UdpEndpoint {
    /// The fabric-wide datagram counters.
    pub fn stats(&self) -> &Arc<UdpFabricStats> {
        &self.shared.core.stats
    }

    /// The group-address plan in effect.
    pub fn plan(&self) -> &UdpGroupPlan {
        &self.shared.core.plan
    }

    fn teardown(&self) {
        self.shutdown();
        if let Some(handle) = self.servicer.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        let core = &self.shared.core;
        if core.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            core.stop.store(true, Ordering::Release);
            if let Some(handle) = core.dispatcher.lock().take() {
                let _ = handle.join();
            }
        }
    }

    /// The polling receive shared by all receive flavours: drains the UDP
    /// mailbox (hot path for multicast payloads), waits on the TCP mailbox
    /// in short slices (which also surfaces peer disconnects), and runs
    /// recovery rounds against `src` while stalled. Only rounds that found
    /// something outstanding to repair count against the bounded recovery
    /// budget — a peer that simply has not sent yet keeps `recv` blocking
    /// indefinitely, matching every other transport's contract, while the
    /// idle status polls back off exponentially.
    fn recv_inner(&self, src: usize, tag: Tag, deadline: Option<Instant>) -> Result<Bytes> {
        let shared = &self.shared;
        if src >= self.world_size() {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world_size(),
            });
        }
        let rx = &shared.core.rx[shared.rank];
        let mut quiet_since = Instant::now();
        let mut repair_rounds = 0u32;
        let mut idle_rounds = 0u32;
        loop {
            if let Some(payload) = rx.mailbox.try_recv(src, tag) {
                return Ok(payload);
            }
            match shared.tcp.recv_timeout(src, tag, POLL_SLICE) {
                Ok(payload) => return Ok(payload),
                Err(NetError::Timeout { .. }) => {}
                Err(e) => return Err(e),
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(NetError::Timeout { src, tag: tag.0 });
                }
            }
            // Idle rounds double the next status-poll interval (capped at
            // 32×) so a long compute-stage wait does not spam the peer.
            let interval = shared.cfg.nack_interval * (1u32 << idle_rounds.min(5));
            if quiet_since.elapsed() >= interval {
                if shared.recovery_round(src)? {
                    idle_rounds = 0;
                    repair_rounds += 1;
                    if repair_rounds > shared.cfg.max_recovery_rounds {
                        return Err(NetError::Timeout { src, tag: tag.0 });
                    }
                } else {
                    idle_rounds = idle_rounds.saturating_add(1);
                }
                quiet_since = Instant::now();
            }
        }
    }
}

impl Transport for UdpEndpoint {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn world_size(&self) -> usize {
        self.shared.tcp.world_size()
    }

    /// Point-to-point sends ride the TCP control channel (they need
    /// per-pair ordering, which raw datagrams cannot give).
    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        self.shared.tcp.send(dst, tag, payload)
    }

    /// The physical one-to-many primitive: one chunked datagram stream to
    /// the destination set's multicast group address.
    fn multicast(&self, dsts: &[usize], tag: Tag, payload: Bytes) -> Result<()> {
        let shared = &self.shared;
        let world = self.world_size();
        let mut mask = 0u128;
        let mut to_self = false;
        for &dst in dsts {
            if dst >= world {
                return Err(NetError::InvalidRank { rank: dst, world });
            }
            if dst == shared.rank {
                to_self = true;
            } else {
                mask |= 1u128 << dst;
            }
        }
        if to_self {
            shared.core.rx[shared.rank].mailbox.deliver(Message {
                src: shared.rank,
                tag,
                payload: payload.clone(),
            });
        }
        if mask == 0 {
            return Ok(());
        }
        // Reject unsendable payloads *before* recording history: an entry
        // that can never be chunked must not be advertised to receivers
        // (the servicer builds status replies from the ring and relies on
        // every retained message chunking cleanly).
        chunk_count_for(payload.len(), shared.cfg.chunk_bytes)?;
        let seq = {
            let mut history = shared.history.lock();
            let seq = history.next_seq;
            history.next_seq = history.next_seq.wrapping_add(1);
            history.ring.push_back(SentMsg {
                seq,
                tag: tag.0,
                mask,
                payload: payload.clone(),
                repair_rounds: 0,
            });
            while history.ring.len() > shared.cfg.history {
                history.ring.pop_front();
            }
            seq
        };
        shared.send_chunks(mask, seq, tag.0, &payload, None)
    }

    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        self.recv_inner(src, tag, None)
    }

    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        self.recv_inner(src, tag, Some(Instant::now() + timeout))
    }

    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        if let Some(payload) = self.shared.core.rx[self.shared.rank]
            .mailbox
            .try_recv(src, tag)
        {
            return Ok(Some(payload));
        }
        self.shared.tcp.try_recv(src, tag)
    }

    fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.tcp.shutdown();
        self.shared.core.rx[self.shared.rank].mailbox.close();
        if let Some(handle) = self.servicer.lock().as_ref() {
            handle.thread().unpark();
        }
    }

    fn mark_peer_dead(&self, peer: usize) {
        // Both wait paths learn about the death: the UDP data mailbox and
        // the TCP control channel the polling recv also blocks on.
        self.shared.core.rx[self.shared.rank]
            .mailbox
            .mark_dead(peer);
        self.shared.tcp.mark_peer_dead(peer);
    }
}

impl Drop for UdpEndpoint {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Opens a transmit socket configured for host-looped multicast. `std`
/// exposes no `IP_MULTICAST_IF` setter, so datagrams leave via the
/// kernel's default multicast route — the bring-up probe verifies that
/// this route loops deliveries back to local group members before the
/// fabric is handed out.
fn open_tx() -> std::io::Result<UdpSocket> {
    let tx = UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0))?;
    tx.set_multicast_loop_v4(true)?;
    Ok(tx)
}

/// Binds the shared receive socket, joins the whole group pool on `iface`,
/// and verifies loopback delivery end to end with a probe datagram through
/// the real transmit path.
fn try_open_rx(
    pool: &[Ipv4Addr],
    port_group: Ipv4Addr,
    iface: Ipv4Addr,
) -> std::io::Result<UdpSocket> {
    let rx = UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0))?;
    let port = rx.local_addr()?.port();
    for group in pool {
        rx.join_multicast_v4(group, &iface)?;
    }
    let tx = open_tx()?;
    rx.set_read_timeout(Some(Duration::from_millis(100)))?;
    let probe = PROBE_MAGIC.to_le_bytes();
    let mut buf = [0u8; 64];
    for _attempt in 0..3 {
        tx.send_to(&probe, SocketAddrV4::new(port_group, port))?;
        loop {
            match rx.recv_from(&mut buf) {
                Ok((n, _)) if n >= 4 && buf[..4] == probe => return Ok(rx),
                Ok(_) => continue, // foreign datagram: keep draining
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        "multicast probe was not looped back",
    ))
}

/// Joins the pool and probes delivery on the candidate join interfaces,
/// returning the verified receive socket.
fn open_rx(pool: &[Ipv4Addr]) -> Result<UdpSocket> {
    let mut last = String::from("no interface candidates");
    for iface in [Ipv4Addr::UNSPECIFIED, Ipv4Addr::LOCALHOST] {
        match try_open_rx(pool, pool[0], iface) {
            Ok(rx) => return Ok(rx),
            Err(e) => last = format!("iface {iface}: {e}"),
        }
    }
    Err(NetError::Io {
        what: format!("udp-multicast unavailable: {last}"),
    })
}

/// Whether this kernel/interface setup supports the UDP-multicast fabric
/// (join + loopback delivery). Probed once and cached; tests and the CI
/// smoke job consult this to skip gracefully.
pub fn multicast_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| open_rx(&UdpGroupPlan::new(0, 1).pool()).is_ok())
}

/// The canonical skip guard for tests and smoke jobs that need the UDP
/// fabric: returns `true` (after explaining why on stderr) where the
/// kernel denies multicast membership or loopback delivery, so callers
/// can `return` early and degrade to a visible no-op.
pub fn skip_without_multicast() -> bool {
    if multicast_available() {
        return false;
    }
    eprintln!("skipping: kernel denies UDP multicast membership/loopback");
    true
}

/// Builds a UDP-multicast fabric of `k` endpoints with default tuning.
///
/// # Errors
/// `NetError::Io` with an `"udp-multicast unavailable"` message when the
/// kernel denies multicast membership or does not loop deliveries back;
/// ordinary I/O errors otherwise.
pub fn build_udp_fabric(k: usize) -> Result<Vec<UdpEndpoint>> {
    build_udp_fabric_with(k, UdpConfig::default())
}

/// [`build_udp_fabric`] with explicit [`UdpConfig`] tuning.
pub fn build_udp_fabric_with(k: usize, cfg: UdpConfig) -> Result<Vec<UdpEndpoint>> {
    // A chunk plus its 40-byte header must fit one legal IPv4 UDP datagram
    // (65 507 payload bytes) and the dispatcher's receive buffer.
    const MAX_CHUNK: usize = 65_507 - HEADER_LEN;
    if cfg.chunk_bytes == 0 || cfg.chunk_bytes > MAX_CHUNK {
        return Err(NetError::Io {
            what: format!("chunk_bytes {} outside 1..={MAX_CHUNK}", cfg.chunk_bytes),
        });
    }
    let tcp = build_tcp_fabric(k)?;
    let pool = UdpGroupPlan::new(0, cfg.pool_size).pool();
    let rx_sock = open_rx(&pool)?;
    let port = rx_sock.local_addr()?.port();
    rx_sock.set_read_timeout(Some(Duration::from_millis(25)))?;
    let plan = UdpGroupPlan::new(port, cfg.pool_size);
    let core = Arc::new(FabricCore {
        plan,
        rx: (0..k)
            .map(|r| Arc::new(RankRx::new(r, cfg.history)))
            .collect(),
        stats: Arc::clone(&cfg.stats),
        stop: AtomicBool::new(false),
        live: AtomicUsize::new(k),
        dispatcher: Mutex::new(None),
    });
    let dispatcher = {
        let core = Arc::clone(&core);
        std::thread::Builder::new()
            .name("cts-net-udp-dispatch".into())
            .spawn(move || dispatcher_loop(rx_sock, &core))
            .expect("spawn udp dispatcher")
    };
    *core.dispatcher.lock() = Some(dispatcher);

    let build = |rank: usize, tcp_ep: TcpEndpoint| -> Result<UdpEndpoint> {
        let shared = Arc::new(Shared {
            rank,
            tcp: Arc::new(tcp_ep),
            core: Arc::clone(&core),
            cfg: cfg.clone(),
            tx: open_tx()?,
            history: Mutex::new(SendHistory::default()),
            dg_index: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let servicer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cts-net-udp-ctrl-{rank}"))
                .spawn(move || servicer_loop(&shared))
                .expect("spawn udp servicer")
        };
        Ok(UdpEndpoint {
            shared,
            servicer: Mutex::new(Some(servicer)),
        })
    };
    let mut endpoints = Vec::with_capacity(k);
    for (rank, tcp_ep) in tcp.into_iter().enumerate() {
        match build(rank, tcp_ep) {
            Ok(ep) => endpoints.push(ep),
            Err(e) => {
                // Partial bring-up: tear down what exists, then stop and
                // join the dispatcher ourselves — the endpoints created so
                // far cannot drive `live` down to the last-one-out handoff
                // (it was initialized for all `k`), so without this the
                // dispatcher thread, its socket, and the group memberships
                // would leak on every failed bring-up.
                drop(endpoints);
                core.stop.store(true, Ordering::Release);
                if let Some(handle) = core.dispatcher.lock().take() {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::datagram_loss_rule;

    #[test]
    fn chunk_header_round_trips() {
        let h = ChunkHeader {
            sender: 7,
            chunk_idx: 3,
            chunk_count: 9,
            nominal: 1400,
            seq: 0xDEAD_BEEF,
            tag: 0xB100_0042,
            total_len: 12_345,
            mask: (1u128 << 127) | 0b1010,
        };
        let mut wire = Vec::new();
        h.write(&mut wire);
        assert_eq!(wire.len(), HEADER_LEN);
        assert_eq!(ChunkHeader::parse(&wire), Some(h));
        // Wrong magic and short buffers are rejected.
        wire[0] ^= 0xFF;
        assert_eq!(ChunkHeader::parse(&wire), None);
        assert_eq!(ChunkHeader::parse(&[0u8; 10]), None);
    }

    #[test]
    fn forged_chunk_headers_are_dropped_not_panicked() {
        let rx = RankRx::new(1, 4096);
        let stats = UdpFabricStats::default();
        // chunk_idx × nominal far past total_len, with an empty body whose
        // length happens to match the expected tail: must be rejected by
        // the shape check, not slice out of the reassembly buffer.
        let h = ChunkHeader {
            sender: 0,
            chunk_idx: 4,
            chunk_count: 5,
            nominal: 1400,
            seq: 1,
            tag: 0,
            total_len: 100,
            mask: 0b10,
        };
        rx.ingest(&h, &[], &stats);
        // Inconsistent duplicate shapes for an established entry drop too.
        let good = ChunkHeader {
            sender: 0,
            chunk_idx: 0,
            chunk_count: 1,
            nominal: 1400,
            seq: 2,
            tag: 0,
            total_len: 3,
            mask: 0b10,
        };
        rx.ingest(&good, b"abc", &stats);
        assert_eq!(rx.mailbox.try_recv(0, Tag(0)).unwrap(), "abc");
        assert_eq!(stats.messages_completed(), 1);
        assert_eq!(rx.state.lock().partial.len(), 0, "forged entry discarded");
    }

    #[test]
    fn missing_bitmap_marks_unreceived_chunks() {
        let mut r = Reassembly::new(0, 3000, 3, 1400);
        r.have[1] = true;
        let bits = r.missing_bitmap();
        assert_eq!(bits, vec![0b101]);
    }

    #[test]
    fn status_reply_round_trips() {
        let mut reply = Vec::new();
        reply.extend_from_slice(&2u32.to_le_bytes());
        for (seq, tag, count, nominal, total) in
            [(5u32, 9u32, 3u16, 1400u16, 4000u32), (6, 9, 1, 1400, 10)]
        {
            reply.extend_from_slice(&seq.to_le_bytes());
            reply.extend_from_slice(&tag.to_le_bytes());
            reply.extend_from_slice(&count.to_le_bytes());
            reply.extend_from_slice(&nominal.to_le_bytes());
            reply.extend_from_slice(&total.to_le_bytes());
        }
        assert_eq!(
            parse_status_reply(&reply),
            vec![(5, 9, 3, 4000, 1400), (6, 9, 1, 10, 1400)]
        );
        assert!(parse_status_reply(&[]).is_empty());
    }

    #[test]
    fn chunk_count_handles_edges() {
        assert_eq!(chunk_count_for(0, 1400).unwrap(), 1);
        assert_eq!(chunk_count_for(1400, 1400).unwrap(), 1);
        assert_eq!(chunk_count_for(1401, 1400).unwrap(), 2);
        assert!(chunk_count_for(1400 * 70_000, 1400).is_err());
    }

    #[test]
    fn physical_multicast_end_to_end() {
        if skip_without_multicast() {
            return;
        }
        let cfg = UdpConfig::default();
        let stats = Arc::clone(&cfg.stats);
        let endpoints = build_udp_fabric_with(4, cfg).unwrap();
        // 3 chunks of 1400 for a 4000-byte payload.
        let payload: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        endpoints[1]
            .multicast(&[0, 2, 3], Tag::app(3), Bytes::from(payload.clone()))
            .unwrap();
        for dst in [0usize, 2, 3] {
            let got = endpoints[dst].recv(1, Tag::app(3)).unwrap();
            assert_eq!(&got[..], &payload[..], "dst {dst}");
        }
        // The payload crossed the sender's socket once per chunk — not per
        // receiver: 3 datagrams for 3 receivers, not 9.
        assert_eq!(stats.datagrams_sent(), 3);
        assert_eq!(stats.messages_completed(), 3);
        assert_eq!(stats.nacks_sent(), 0);
    }

    #[test]
    fn empty_and_single_byte_payloads_deliver() {
        if skip_without_multicast() {
            return;
        }
        let endpoints = build_udp_fabric(2).unwrap();
        endpoints[0]
            .multicast(&[1], Tag::app(0), Bytes::new())
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap().len(), 0);
        endpoints[0]
            .multicast(&[1], Tag::app(1), Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(1)).unwrap(), "x");
    }

    #[test]
    fn multicast_including_self_delivers_locally() {
        if skip_without_multicast() {
            return;
        }
        let endpoints = build_udp_fabric(2).unwrap();
        endpoints[0]
            .multicast(&[0, 1], Tag::app(2), Bytes::from_static(b"both"))
            .unwrap();
        assert_eq!(endpoints[0].recv(0, Tag::app(2)).unwrap(), "both");
        assert_eq!(endpoints[1].recv(0, Tag::app(2)).unwrap(), "both");
    }

    #[test]
    fn unicast_and_invalid_ranks_behave_like_tcp() {
        if skip_without_multicast() {
            return;
        }
        let endpoints = build_udp_fabric(2).unwrap();
        endpoints[0]
            .send(1, Tag::app(0), Bytes::from_static(b"p2p"))
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "p2p");
        assert!(matches!(
            endpoints[0].multicast(&[9], Tag::app(0), Bytes::new()),
            Err(NetError::InvalidRank { rank: 9, .. })
        ));
        assert!(matches!(
            endpoints[0].recv(9, Tag::app(0)),
            Err(NetError::InvalidRank { rank: 9, .. })
        ));
    }

    #[test]
    fn injected_loss_recovers_via_nack_and_multicast_repair() {
        if skip_without_multicast() {
            return;
        }
        // Drop the first 2 data datagrams outright, deliver the rest.
        let cfg = UdpConfig {
            fault: Some(Arc::new(|_, _, _, _, idx| {
                if idx < 2 {
                    DatagramAction::Drop
                } else {
                    DatagramAction::Deliver
                }
            })),
            ..UdpConfig::default()
        };
        let stats = Arc::clone(&cfg.stats);
        let endpoints = build_udp_fabric_with(2, cfg).unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i * 7 % 253) as u8).collect();
        endpoints[0]
            .multicast(&[1], Tag::app(0), Bytes::from(payload.clone()))
            .unwrap();
        let got = endpoints[1].recv(0, Tag::app(0)).unwrap();
        assert_eq!(&got[..], &payload[..]);
        assert!(stats.dropped_by_fault() >= 2);
        assert!(stats.nacks_sent() >= 1, "recovery must have NACKed");
        assert!(stats.mcast_repair_chunks() >= 1);
        assert_eq!(stats.tcp_repair_chunks(), 0, "budget not exhausted");
    }

    #[test]
    fn total_loss_falls_back_to_tcp_repair() {
        if skip_without_multicast() {
            return;
        }
        // Every datagram is lost: after max_multicast_repairs NACK rounds
        // the sender must repair over TCP, which cannot be dropped.
        let cfg = UdpConfig {
            fault: Some(datagram_loss_rule(100, 1)),
            max_multicast_repairs: 1,
            ..UdpConfig::default()
        };
        let stats = Arc::clone(&cfg.stats);
        let endpoints = build_udp_fabric_with(2, cfg).unwrap();
        let payload: Vec<u8> = (0..3000u32).map(|i| (i % 256) as u8).collect();
        endpoints[0]
            .multicast(&[1], Tag::app(0), Bytes::from(payload.clone()))
            .unwrap();
        let got = endpoints[1].recv(0, Tag::app(0)).unwrap();
        assert_eq!(&got[..], &payload[..]);
        assert!(
            stats.tcp_repair_chunks() >= 3,
            "all chunks repaired over TCP"
        );
        assert_eq!(stats.datagrams_received(), 0, "nothing survived the fault");
    }

    #[test]
    fn duplicate_datagrams_deliver_exactly_once() {
        if skip_without_multicast() {
            return;
        }
        let endpoints = build_udp_fabric(2).unwrap();
        // Two sends under distinct tags, then verify each arrives once and
        // nothing phantom remains queued.
        for t in 0..2u32 {
            endpoints[0]
                .multicast(&[1], Tag::app(t), Bytes::from_static(b"once"))
                .unwrap();
            assert_eq!(endpoints[1].recv(0, Tag::app(t)).unwrap(), "once");
            assert!(endpoints[1].try_recv(0, Tag::app(t)).unwrap().is_none());
        }
    }

    #[test]
    fn shutdown_unblocks_blocked_receiver() {
        if skip_without_multicast() {
            return;
        }
        let mut endpoints = build_udp_fabric(2).unwrap();
        let b = endpoints.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let r = b.recv_timeout(0, Tag::app(0), Duration::from_secs(5));
            b.shutdown();
            r
        });
        std::thread::sleep(Duration::from_millis(30));
        endpoints[0].shutdown();
        drop(endpoints);
        let result = handle.join().unwrap();
        assert!(
            matches!(
                result,
                Err(NetError::Disconnected { .. }) | Err(NetError::Timeout { .. })
            ),
            "got {result:?}"
        );
    }
}
