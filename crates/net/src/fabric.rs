//! Shuffle-fabric selection: how one logical multicast becomes wire traffic.
//!
//! The paper's `MPI_Bcast` runs on EC2, which offers no network-layer
//! multicast (§I), so every coded packet is really pushed point-to-point.
//! This module names the three ways the substrate can realize a
//! one-to-many transfer, so engines, benches, and the performance model
//! can compare them under one vocabulary:
//!
//! | fabric | egress frames per group send | copies overlap? | emulates |
//! |---|---|---|---|
//! | [`SerialUnicast`](ShuffleFabric::SerialUnicast) | `m` (receiver count) | no — back-to-back blocking sends | the pre-async `tcp.rs` behavior; worst case |
//! | [`Fanout`](ShuffleFabric::Fanout) | `m` | yes — non-blocking writes interleave across sockets | `MPI_Bcast` over unicast links (what the paper ran) |
//! | [`Multicast`](ShuffleFabric::Multicast) | 1 | n/a — one transmission serves all receivers | network-layer multicast (zero-copy shared buffer / overlapped TCP writes charged once) |
//! | [`UdpMulticast`](ShuffleFabric::UdpMulticast) | 1 | n/a — one **physical** IP-multicast datagram stream | nothing: it *is* network-layer multicast ([`udp`](crate::udp)) |
//!
//! [`ShuffleFabric::wire_copies`] is the per-fabric egress frame count the
//! trace records and the rate emulation charges; the netsim oracle
//! (`cts-netsim::serial::serial_fabric_makespan` and
//! `cts-netsim::fluid::predict_fabric_shuffle_s`) predicts shuffle time
//! from exactly the same quantity.
//!
//! ```
//! use cts_net::fabric::ShuffleFabric;
//!
//! // A multicast group of 4 members has fanout 3 at each sender's turn.
//! assert_eq!(ShuffleFabric::SerialUnicast.wire_copies(3), 3);
//! assert_eq!(ShuffleFabric::Fanout.wire_copies(3), 3);
//! assert_eq!(ShuffleFabric::Multicast.wire_copies(3), 1);
//! // Fabrics parse from CLI / env spellings.
//! assert_eq!("serial-unicast".parse(), Ok(ShuffleFabric::SerialUnicast));
//! assert_eq!("multicast".parse(), Ok(ShuffleFabric::Multicast));
//! ```

use std::fmt;
use std::str::FromStr;

/// How the communicator realizes a one-to-many (multicast group) transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ShuffleFabric {
    /// One blocking unicast per receiver, back to back. The payload crosses
    /// the sender's egress `m` times and nothing overlaps — the behavior of
    /// the original thread-per-rank fabric, kept as the ablation baseline.
    SerialUnicast,
    /// One copy per receiver, but the copies are written concurrently:
    /// non-blocking sends interleave chunks across destination sockets, so
    /// per-transfer setup overheads and receiver-side drains overlap. Still
    /// `m` egress crossings.
    Fanout,
    /// A genuine one-to-many primitive: the payload leaves the sender once
    /// and every receiver gets it. The in-memory fabric delivers one shared
    /// buffer (zero-copy); the TCP fabric approximates it with overlapped
    /// writes while the trace and the NIC emulation charge the single
    /// crossing that a network-layer multicast would cost.
    #[default]
    Multicast,
    /// Physical IP multicast: every coded packet becomes one stream of UDP
    /// datagrams addressed to a per-group multicast address
    /// ([`udp`](crate::udp)), so the single-egress-frame semantics of
    /// [`Multicast`](ShuffleFabric::Multicast) is realized by the kernel's
    /// network stack instead of being emulated. Selecting this fabric
    /// switches the cluster onto the UDP transport (TCP remains as the
    /// control/unicast channel carrying NACK-based loss recovery).
    UdpMulticast,
}

impl ShuffleFabric {
    /// The three *emulated* fabrics, in the fixed comparison order benches
    /// and tests use. They run on any transport, so sweeps over this set
    /// never depend on kernel multicast support; add
    /// [`UdpMulticast`](ShuffleFabric::UdpMulticast) via
    /// [`ALL_WITH_UDP`](ShuffleFabric::ALL_WITH_UDP) when the caller can
    /// skip gracefully where IP-multicast membership is denied.
    pub const ALL: [ShuffleFabric; 3] = [
        ShuffleFabric::SerialUnicast,
        ShuffleFabric::Fanout,
        ShuffleFabric::Multicast,
    ];

    /// Every fabric including the physical UDP one (which requires kernel
    /// multicast support — see [`udp::multicast_available`](crate::udp::multicast_available)).
    pub const ALL_WITH_UDP: [ShuffleFabric; 4] = [
        ShuffleFabric::SerialUnicast,
        ShuffleFabric::Fanout,
        ShuffleFabric::Multicast,
        ShuffleFabric::UdpMulticast,
    ];

    /// How many times a payload multicast to `fanout` receivers crosses the
    /// sender's egress under this fabric.
    pub fn wire_copies(self, fanout: usize) -> usize {
        match self {
            ShuffleFabric::SerialUnicast | ShuffleFabric::Fanout => fanout,
            ShuffleFabric::Multicast | ShuffleFabric::UdpMulticast => 1.min(fanout),
        }
    }

    /// The canonical CLI / display spelling.
    pub fn label(self) -> &'static str {
        match self {
            ShuffleFabric::SerialUnicast => "serial-unicast",
            ShuffleFabric::Fanout => "fanout",
            ShuffleFabric::Multicast => "multicast",
            ShuffleFabric::UdpMulticast => "udp-multicast",
        }
    }
}

impl fmt::Display for ShuffleFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ShuffleFabric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial-unicast" | "serial" | "unicast" => Ok(ShuffleFabric::SerialUnicast),
            "fanout" => Ok(ShuffleFabric::Fanout),
            "multicast" | "mcast" => Ok(ShuffleFabric::Multicast),
            "udp-multicast" | "udp" => Ok(ShuffleFabric::UdpMulticast),
            other => Err(format!(
                "unknown fabric {other:?} (expected serial-unicast | fanout | multicast | udp-multicast)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_copies_match_the_decision_table() {
        assert_eq!(ShuffleFabric::SerialUnicast.wire_copies(5), 5);
        assert_eq!(ShuffleFabric::Fanout.wire_copies(5), 5);
        assert_eq!(ShuffleFabric::Multicast.wire_copies(5), 1);
        assert_eq!(ShuffleFabric::UdpMulticast.wire_copies(5), 1);
        // Degenerate empty group costs nothing anywhere.
        for f in ShuffleFabric::ALL_WITH_UDP {
            assert_eq!(f.wire_copies(0), 0);
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for f in ShuffleFabric::ALL_WITH_UDP {
            assert_eq!(f.label().parse::<ShuffleFabric>(), Ok(f));
            assert_eq!(f.to_string(), f.label());
        }
        assert_eq!("udp".parse(), Ok(ShuffleFabric::UdpMulticast));
        assert!("tachyon".parse::<ShuffleFabric>().is_err());
    }

    #[test]
    fn default_is_multicast() {
        assert_eq!(ShuffleFabric::default(), ShuffleFabric::Multicast);
    }
}
