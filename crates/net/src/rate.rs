//! Real-time NIC emulation: token-bucket egress shaping plus per-transfer
//! pacing.
//!
//! The paper caps every EC2 instance at 100 Mbps with `tc` (§V-B, footnote
//! 5). [`TokenBucket`] reproduces that in *real time*: a transport wrapped
//! with a bucket sleeps long enough that sustained egress never exceeds the
//! configured rate. [`NicProfile`] extends the emulation with the other two
//! parameters of the netsim network model — a fixed per-transfer setup
//! latency and the logarithmic software-multicast penalty `α` — so
//! *measured* shuffle wall-clock under a rate-limited run can be compared
//! against the *modeled* time from `cts-netsim` for the same trace: the
//! fabric-ablation bench's validation oracle. The table benchmarks still
//! use the virtual-time model, which is exact and doesn't burn wall-clock
//! seconds.
//!
//! ```
//! use cts_net::rate::{Nic, NicProfile};
//!
//! // 1 MB/s egress, 0.1 ms per transfer, α = 0.3 — an emulated paper NIC.
//! let profile = NicProfile::rate_limited(8e6)
//!     .with_latency_s(1e-4)
//!     .with_multicast_alpha(0.3);
//! let nic = Nic::new(profile);
//! nic.pace_transfer(); // one transfer's setup cost (~0.1 ms)
//! nic.charge(512);     // 512 payload bytes through the shaped egress
//! assert!(profile.multicast_penalty(4) > 1.0);
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use cts_core::metrics::{Counter, Histogram};
use parking_lot::Mutex;

struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// A classic token bucket: `rate` tokens (bytes) per second, holding at most
/// `burst` tokens.
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A bucket replenishing `rate_bytes_per_sec`, with a burst allowance of
    /// `burst_bytes`.
    ///
    /// # Panics
    /// Panics if `rate_bytes_per_sec <= 0` or `burst_bytes <= 0`.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        assert!(burst_bytes > 0.0, "burst must be positive");
        TokenBucket {
            rate: rate_bytes_per_sec,
            burst: burst_bytes,
            state: Mutex::new(BucketState {
                tokens: burst_bytes,
                last_refill: Instant::now(),
            }),
        }
    }

    /// A bucket shaped like the paper's setup: 100 Mbps with a burst of one
    /// MTU-ish 64 KiB.
    pub fn paper_100mbps() -> Self {
        TokenBucket::new(100e6 / 8.0, 64.0 * 1024.0)
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Blocks until `n` bytes worth of tokens are available, then consumes
    /// them. Requests larger than the burst size are admitted by letting the
    /// token count go negative (debt), which delays subsequent senders —
    /// this keeps long-run throughput exact for arbitrarily large messages.
    ///
    /// Returns how long the caller was stalled (`Duration::ZERO` when the
    /// burst absorbed the request) — the raw signal behind the
    /// per-job NIC-wait metrics.
    pub fn acquire(&self, n: u64) -> Duration {
        let needed = n as f64;
        let wait = {
            let mut st = self.state.lock();
            let now = Instant::now();
            let elapsed = now.duration_since(st.last_refill).as_secs_f64();
            st.tokens = (st.tokens + elapsed * self.rate).min(self.burst);
            st.last_refill = now;
            st.tokens -= needed;
            if st.tokens >= 0.0 {
                None
            } else {
                Some(Duration::from_secs_f64(-st.tokens / self.rate))
            }
        };
        match wait {
            Some(d) => {
                std::thread::sleep(d);
                d
            }
            None => Duration::ZERO,
        }
    }
}

/// Per-NIC observability sink: totals of token-bucket stalls, owned by
/// whoever built the NIC (the shared fabric keeps one per job so `cts
/// stats` can attribute egress backpressure to tenants). Plain atomics —
/// recording allocates nothing.
#[derive(Debug, Default)]
pub struct NicMeter {
    /// Nanoseconds spent stalled in the token bucket.
    pub wait_ns: Counter,
    /// Number of sends that stalled (zero-wait sends are not counted).
    pub waits: Counter,
}

impl NicMeter {
    /// A zeroed meter.
    pub fn new() -> NicMeter {
        NicMeter::default()
    }
}

/// Parameters of one emulated NIC, mirroring the netsim network model
/// (`rate`, per-transfer latency, multicast penalty `α`) so measured and
/// modeled shuffle times describe the same machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicProfile {
    /// Sustained egress rate in bytes/second; `None` leaves egress
    /// unshaped (memory/loopback speed).
    pub rate_bytes_per_sec: Option<f64>,
    /// Token-bucket burst allowance in bytes.
    pub burst_bytes: f64,
    /// Fixed setup cost per transfer, seconds (connection/envelope
    /// overhead — the model's `per_transfer_latency_s`).
    pub latency_s: f64,
    /// Software-multicast penalty coefficient: one native multicast to `m`
    /// receivers occupies the egress for `1 + α·log2(m)` times the unicast
    /// duration of the same bytes.
    pub multicast_alpha: f64,
}

impl Default for NicProfile {
    fn default() -> Self {
        NicProfile::unlimited()
    }
}

impl NicProfile {
    /// No shaping at all: memory/loopback speed, zero latency.
    pub fn unlimited() -> Self {
        NicProfile {
            rate_bytes_per_sec: None,
            burst_bytes: 64.0 * 1024.0,
            latency_s: 0.0,
            multicast_alpha: 0.0,
        }
    }

    /// Egress capped at `rate_bytes_per_sec` with a 64 KiB burst.
    pub fn rate_limited(rate_bytes_per_sec: f64) -> Self {
        NicProfile {
            rate_bytes_per_sec: Some(rate_bytes_per_sec),
            ..NicProfile::unlimited()
        }
    }

    /// The paper's emulated NIC: 100 Mbps `tc` cap, 0.1 ms per transfer,
    /// `α = 0.30` — the same constants the calibrated netsim model uses.
    pub fn paper_100mbps() -> Self {
        NicProfile::rate_limited(100e6 / 8.0)
            .with_latency_s(1e-4)
            .with_multicast_alpha(0.30)
    }

    /// Sets the per-transfer setup latency.
    pub fn with_latency_s(mut self, latency_s: f64) -> Self {
        self.latency_s = latency_s;
        self
    }

    /// Sets the software-multicast penalty coefficient.
    pub fn with_multicast_alpha(mut self, alpha: f64) -> Self {
        self.multicast_alpha = alpha;
        self
    }

    /// The multicast slowdown factor for `fanout` receivers
    /// (`1 + α·log2(fanout)`), matching the netsim model's formula.
    pub fn multicast_penalty(&self, fanout: u32) -> f64 {
        if fanout <= 1 {
            1.0
        } else {
            1.0 + self.multicast_alpha * (fanout as f64).log2()
        }
    }
}

/// A live emulated NIC built from a [`NicProfile`]: one per rank, shared by
/// that rank's communicator.
pub struct Nic {
    profile: NicProfile,
    bucket: Option<TokenBucket>,
    meter: Option<Arc<NicMeter>>,
    wait_hist: Option<Arc<Histogram>>,
}

impl Nic {
    /// Instantiates the NIC (allocating the token bucket if shaped).
    pub fn new(profile: NicProfile) -> Self {
        Nic {
            bucket: profile
                .rate_bytes_per_sec
                .map(|rate| TokenBucket::new(rate, profile.burst_bytes)),
            profile,
            meter: None,
            wait_hist: None,
        }
    }

    /// Attaches a per-job wait meter (totals) and an optional shared
    /// histogram (distribution of individual stall durations, ns).
    pub fn with_meter(mut self, meter: Arc<NicMeter>, hist: Option<Arc<Histogram>>) -> Self {
        self.meter = Some(meter);
        self.wait_hist = hist;
        self
    }

    /// The attached meter, if any.
    pub fn meter(&self) -> Option<&Arc<NicMeter>> {
        self.meter.as_ref()
    }

    fn note_wait(&self, waited: Duration) {
        if waited.is_zero() {
            return;
        }
        let ns = waited.as_nanos() as u64;
        if let Some(m) = &self.meter {
            m.wait_ns.add(ns);
            m.waits.inc();
        }
        if let Some(h) = &self.wait_hist {
            h.record(ns);
        }
    }

    /// The profile this NIC was built from.
    pub fn profile(&self) -> &NicProfile {
        &self.profile
    }

    /// Pays one transfer's fixed setup latency (no-op at zero latency).
    /// Short waits are spun for accuracy; longer ones sleep.
    pub fn pace_transfer(&self) {
        let latency = self.profile.latency_s;
        if latency <= 0.0 {
            return;
        }
        precise_wait(Duration::from_secs_f64(latency));
    }

    /// Pushes `bytes` through the shaped egress (blocking as needed).
    pub fn charge(&self, bytes: u64) {
        if let Some(bucket) = &self.bucket {
            self.note_wait(bucket.acquire(bytes));
        }
    }

    /// Pushes `bytes × factor` through the shaped egress — the multicast
    /// penalty path (`factor = multicast_penalty(fanout)`).
    pub fn charge_scaled(&self, bytes: u64, factor: f64) {
        if let Some(bucket) = &self.bucket {
            self.note_wait(bucket.acquire((bytes as f64 * factor).round() as u64));
        }
    }
}

/// Waits `d` with much better accuracy than `thread::sleep` for
/// sub-millisecond durations: spin below 200 µs (sleep granularity would
/// otherwise inflate short NIC latencies several-fold), sleep above.
fn precise_wait(d: Duration) {
    if d >= Duration::from_micros(200) {
        std::thread::sleep(d);
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_free() {
        let bucket = TokenBucket::new(1000.0, 1000.0);
        let start = Instant::now();
        bucket.acquire(1000);
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // 100 KB/s, send 10 KB beyond the 1 KB burst → ~100 ms.
        let bucket = TokenBucket::new(100_000.0, 1_000.0);
        let start = Instant::now();
        for _ in 0..11 {
            bucket.acquire(1_000);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(80),
            "rate limit not enforced: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(500),
            "rate limit too aggressive: {elapsed:?}"
        );
    }

    #[test]
    fn oversized_request_goes_into_debt() {
        let bucket = TokenBucket::new(1_000_000.0, 1_000.0);
        let start = Instant::now();
        bucket.acquire(100_000); // 100 KB at 1 MB/s ≈ 100 ms of debt
        bucket.acquire(1);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(80), "{elapsed:?}");
    }

    #[test]
    fn concurrent_acquires_share_the_rate() {
        use std::sync::Arc;
        let bucket = Arc::new(TokenBucket::new(200_000.0, 1_000.0));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&bucket);
                s.spawn(move || {
                    for _ in 0..5 {
                        b.acquire(1_000);
                    }
                });
            }
        });
        // 20 KB total at 200 KB/s ≈ 100 ms (minus 1 KB burst).
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(70), "{elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    fn unlimited_nic_is_free() {
        let nic = Nic::new(NicProfile::unlimited());
        let start = Instant::now();
        nic.pace_transfer();
        nic.charge(100_000_000);
        nic.charge_scaled(100_000_000, 3.0);
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn nic_latency_paces_transfers() {
        let nic = Nic::new(NicProfile::unlimited().with_latency_s(2e-3));
        let start = Instant::now();
        for _ in 0..5 {
            nic.pace_transfer();
        }
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn nic_charge_scaled_applies_penalty() {
        // 1 MB/s, 1 KB burst: 100 KB at factor 2 ≈ 200 ms.
        let nic = Nic::new(NicProfile {
            rate_bytes_per_sec: Some(1_000_000.0),
            burst_bytes: 1_000.0,
            latency_s: 0.0,
            multicast_alpha: 1.0,
        });
        let start = Instant::now();
        nic.charge_scaled(100_000, 2.0);
        nic.charge(1);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
    }

    #[test]
    fn multicast_penalty_formula_matches_model() {
        let p = NicProfile::unlimited().with_multicast_alpha(0.5);
        assert_eq!(p.multicast_penalty(1), 1.0);
        assert!((p.multicast_penalty(4) - 2.0).abs() < 1e-12);
        assert_eq!(NicProfile::unlimited().multicast_penalty(8), 1.0);
    }

    #[test]
    fn meter_counts_stalls_and_reports_wait_time() {
        // 1 MB/s, 1 KB burst: the second 100 KB charge must stall ~100 ms.
        let meter = Arc::new(NicMeter::new());
        let hist = Arc::new(Histogram::new());
        let nic = Nic::new(NicProfile::rate_limited(1_000_000.0))
            .with_meter(Arc::clone(&meter), Some(Arc::clone(&hist)));
        nic.charge(100_000);
        nic.charge(100_000);
        assert!(meter.waits.get() >= 1, "stall not counted");
        assert!(
            meter.wait_ns.get() >= 50_000_000,
            "wait_ns {} too small",
            meter.wait_ns.get()
        );
        assert_eq!(hist.count(), meter.waits.get());
        // An unshaped NIC never stalls, metered or not.
        let free_meter = Arc::new(NicMeter::new());
        let free = Nic::new(NicProfile::unlimited()).with_meter(Arc::clone(&free_meter), None);
        free.charge(10_000_000);
        assert_eq!(free_meter.waits.get(), 0);
    }

    #[test]
    fn paper_profile_matches_calibration() {
        let p = NicProfile::paper_100mbps();
        assert_eq!(p.rate_bytes_per_sec, Some(12.5e6));
        assert!((p.latency_s - 1e-4).abs() < 1e-12);
        assert!((p.multicast_alpha - 0.30).abs() < 1e-12);
    }
}
