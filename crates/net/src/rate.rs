//! Token-bucket egress rate limiting.
//!
//! The paper caps every EC2 instance at 100 Mbps with `tc` (§V-B, footnote
//! 5). [`TokenBucket`] reproduces that in *real time*: a transport wrapped
//! with a bucket sleeps long enough that sustained egress never exceeds the
//! configured rate. Used by the real-time demo modes; the table benchmarks
//! use the virtual-time model in `cts-netsim` instead, which is exact and
//! doesn't burn wall-clock seconds.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// A classic token bucket: `rate` tokens (bytes) per second, holding at most
/// `burst` tokens.
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A bucket replenishing `rate_bytes_per_sec`, with a burst allowance of
    /// `burst_bytes`.
    ///
    /// # Panics
    /// Panics if `rate_bytes_per_sec <= 0` or `burst_bytes <= 0`.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        assert!(burst_bytes > 0.0, "burst must be positive");
        TokenBucket {
            rate: rate_bytes_per_sec,
            burst: burst_bytes,
            state: Mutex::new(BucketState {
                tokens: burst_bytes,
                last_refill: Instant::now(),
            }),
        }
    }

    /// A bucket shaped like the paper's setup: 100 Mbps with a burst of one
    /// MTU-ish 64 KiB.
    pub fn paper_100mbps() -> Self {
        TokenBucket::new(100e6 / 8.0, 64.0 * 1024.0)
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Blocks until `n` bytes worth of tokens are available, then consumes
    /// them. Requests larger than the burst size are admitted by letting the
    /// token count go negative (debt), which delays subsequent senders —
    /// this keeps long-run throughput exact for arbitrarily large messages.
    pub fn acquire(&self, n: u64) {
        let needed = n as f64;
        let wait = {
            let mut st = self.state.lock();
            let now = Instant::now();
            let elapsed = now.duration_since(st.last_refill).as_secs_f64();
            st.tokens = (st.tokens + elapsed * self.rate).min(self.burst);
            st.last_refill = now;
            st.tokens -= needed;
            if st.tokens >= 0.0 {
                None
            } else {
                Some(Duration::from_secs_f64(-st.tokens / self.rate))
            }
        };
        if let Some(d) = wait {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_free() {
        let bucket = TokenBucket::new(1000.0, 1000.0);
        let start = Instant::now();
        bucket.acquire(1000);
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // 100 KB/s, send 10 KB beyond the 1 KB burst → ~100 ms.
        let bucket = TokenBucket::new(100_000.0, 1_000.0);
        let start = Instant::now();
        for _ in 0..11 {
            bucket.acquire(1_000);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(80),
            "rate limit not enforced: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(500),
            "rate limit too aggressive: {elapsed:?}"
        );
    }

    #[test]
    fn oversized_request_goes_into_debt() {
        let bucket = TokenBucket::new(1_000_000.0, 1_000.0);
        let start = Instant::now();
        bucket.acquire(100_000); // 100 KB at 1 MB/s ≈ 100 ms of debt
        bucket.acquire(1);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(80), "{elapsed:?}");
    }

    #[test]
    fn concurrent_acquires_share_the_rate() {
        use std::sync::Arc;
        let bucket = Arc::new(TokenBucket::new(200_000.0, 1_000.0));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&bucket);
                s.spawn(move || {
                    for _ in 0..5 {
                        b.acquire(1_000);
                    }
                });
            }
        });
        // 20 KB total at 200 KB/s ≈ 100 ms (minus 1 KB burst).
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(70), "{elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0, 1.0);
    }
}
