//! The per-node communicator: point-to-point sends plus MPI-style
//! collectives (barrier, broadcast, gather, scatter) with transfer tracing
//! and optional egress rate limiting.
//!
//! One `Communicator` is handed to each SPMD node closure by the
//! [`cluster`](crate::cluster) runner. It mirrors the Open MPI surface the
//! paper's C++ implementation uses: `MPI_Send`/`MPI_Recv`,
//! `MPI_Bcast` within a multicast group (binomial tree, like Open MPI's
//! default for small groups), and `MPI_Barrier` between stages.

use std::sync::atomic::{AtomicU16, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::error::{NetError, Result};
use crate::message::Tag;
use crate::rate::TokenBucket;
use crate::trace::{EventKind, TraceCollector};
use crate::transport::Transport;

/// Which broadcast algorithm multicasts use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BcastAlgorithm {
    /// Root sends to every member back-to-back (`r` serial unicasts).
    Flat,
    /// Binomial tree (MPICH/Open MPI style): `⌈log2 m⌉` rounds, relays
    /// forward as they receive.
    #[default]
    BinomialTree,
}

/// Per-node handle for all communication.
pub struct Communicator {
    transport: Arc<dyn Transport>,
    trace: Arc<TraceCollector>,
    rate: Option<Arc<TokenBucket>>,
    bcast_algo: BcastAlgorithm,
    stage: AtomicU16,
    barrier_epoch: AtomicU32,
    bcast_epoch: AtomicU32,
}

impl Communicator {
    /// Wires a communicator over `transport`, recording into `trace`,
    /// optionally shaping egress with `rate`.
    pub fn new(
        transport: Arc<dyn Transport>,
        trace: Arc<TraceCollector>,
        rate: Option<Arc<TokenBucket>>,
        bcast_algo: BcastAlgorithm,
    ) -> Self {
        let stage = trace.intern("init");
        Communicator {
            transport,
            trace,
            rate,
            bcast_algo,
            stage: AtomicU16::new(stage),
            barrier_epoch: AtomicU32::new(0),
            bcast_epoch: AtomicU32::new(0),
        }
    }

    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of nodes in the fabric.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// Labels subsequent traffic with a stage name ("Map", "Shuffle", …).
    pub fn set_stage(&self, name: &str) {
        self.stage.store(self.trace.intern(name), Ordering::Relaxed);
    }

    /// The underlying transport (for tests and wrappers).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    fn shape(&self, bytes: usize) {
        if let Some(rate) = &self.rate {
            rate.acquire(bytes as u64);
        }
    }

    /// Application point-to-point send (recorded as shuffle traffic).
    pub fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        self.trace.record(
            self.stage.load(Ordering::Relaxed),
            self.rank(),
            1u64 << dst,
            payload.len() as u64,
            EventKind::AppUnicast,
        );
        self.shape(payload.len());
        self.transport.send(dst, tag, payload)
    }

    /// Substrate-internal send (control traffic, tree relays) — excluded
    /// from communication-load accounting.
    fn send_internal(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        self.send_internal_oh(dst, tag, payload, 0)
    }

    /// Internal send carrying an explicit protocol-overhead byte count
    /// (tree relays of a coded packet inherit the packet's header size).
    fn send_internal_oh(&self, dst: usize, tag: Tag, payload: Bytes, overhead: u64) -> Result<()> {
        self.trace.record_with_overhead(
            self.stage.load(Ordering::Relaxed),
            self.rank(),
            1u64 << dst,
            payload.len() as u64,
            overhead,
            EventKind::Internal,
        );
        self.shape(payload.len());
        self.transport.send(dst, tag, payload)
    }

    /// Blocking receive matched on `(src, tag)`.
    pub fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        self.transport.recv(src, tag)
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        self.transport.recv_timeout(src, tag, timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        self.transport.try_recv(src, tag)
    }

    /// Global barrier across all ranks (flat coordinator pattern through
    /// rank 0, like the paper's synchronous stage transitions).
    pub fn barrier(&self) -> Result<()> {
        let epoch = self.barrier_epoch.fetch_add(1, Ordering::Relaxed);
        let tag = Tag::new(Tag::BARRIER, epoch & 0x00FF_FFFF);
        let k = self.world_size();
        if k == 1 {
            return Ok(());
        }
        if self.rank() == 0 {
            for src in 1..k {
                self.transport.recv(src, tag)?;
            }
            for dst in 1..k {
                self.send_internal(dst, tag, Bytes::new())?;
            }
        } else {
            self.send_internal(0, tag, Bytes::new())?;
            self.transport.recv(0, tag)?;
        }
        Ok(())
    }

    /// Multicast within a member group — the `MPI_Bcast` equivalent.
    ///
    /// `members` must be sorted ascending, contain both `root` and the
    /// caller, and every member must call `broadcast` with the same
    /// arguments (SPMD). The root passes `Some(payload)`, others `None`;
    /// everyone returns the payload.
    ///
    /// The trace records **one** `Multicast` event at the root (bytes
    /// counted once — the paper's communication-load convention) plus the
    /// underlying tree/flat unicasts as `Internal` events.
    pub fn broadcast(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        self.broadcast_with_overhead(root, members, tag, data, 0)
    }

    /// [`broadcast`](Self::broadcast) with an explicit protocol-overhead
    /// byte count recorded on the multicast trace event. The coded engine
    /// passes its packet-header size so the performance model can scale
    /// payload and overhead separately.
    pub fn broadcast_with_overhead(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Option<Bytes>,
        overhead: u64,
    ) -> Result<Bytes> {
        let m = members.len();
        if m == 0 || members.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NetError::CollectiveMisuse {
                what: "members must be non-empty, sorted, unique".into(),
            });
        }
        let my_pos =
            members
                .binary_search(&self.rank())
                .map_err(|_| NetError::CollectiveMisuse {
                    what: format!("caller {} not in group", self.rank()),
                })?;
        let root_pos = members
            .binary_search(&root)
            .map_err(|_| NetError::CollectiveMisuse {
                what: format!("root {root} not in group"),
            })?;
        let is_root = self.rank() == root;
        if is_root && data.is_none() {
            return Err(NetError::CollectiveMisuse {
                what: "root must supply the payload".into(),
            });
        }

        if is_root {
            let dsts = members
                .iter()
                .filter(|&&n| n != root)
                .fold(0u64, |acc, &n| acc | (1u64 << n));
            self.trace.record_with_overhead(
                self.stage.load(Ordering::Relaxed),
                self.rank(),
                dsts,
                data.as_ref().map(|d| d.len()).unwrap_or(0) as u64,
                overhead,
                EventKind::Multicast,
            );
        }
        if m == 1 {
            return Ok(data.unwrap());
        }

        match self.bcast_algo {
            BcastAlgorithm::Flat => {
                if is_root {
                    let payload = data.unwrap();
                    for &dst in members.iter().filter(|&&n| n != root) {
                        self.send_internal_oh(dst, tag, payload.clone(), overhead)?;
                    }
                    Ok(payload)
                } else {
                    self.transport.recv(root, tag)
                }
            }
            BcastAlgorithm::BinomialTree => {
                let vrank = (my_pos + m - root_pos) % m;
                let actual = |v: usize| members[(v + root_pos) % m];
                let mut payload = data;
                let mut mask = 1usize;
                while mask < m {
                    if vrank & mask != 0 {
                        let parent = actual(vrank - mask);
                        payload = Some(self.transport.recv(parent, tag)?);
                        break;
                    }
                    mask <<= 1;
                }
                let payload = payload.expect("binomial bcast: payload after recv phase");
                mask >>= 1;
                while mask > 0 {
                    if vrank + mask < m {
                        self.send_internal_oh(
                            actual(vrank + mask),
                            tag,
                            payload.clone(),
                            overhead,
                        )?;
                    }
                    mask >>= 1;
                }
                Ok(payload)
            }
        }
    }

    /// Broadcast with an automatically assigned group-unique tag, for use
    /// when the same group multicasts repeatedly (serial multicast shuffle).
    /// All members' epochs advance in lockstep because the call pattern is
    /// SPMD-deterministic.
    pub fn broadcast_auto(
        &self,
        root: usize,
        members: &[usize],
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        let epoch = self.bcast_epoch.fetch_add(1, Ordering::Relaxed);
        let tag = Tag::new(Tag::BCAST, epoch & 0x00FF_FFFF);
        self.broadcast(root, members, tag, data)
    }

    /// Gathers one payload from every member at `root` (member order).
    /// Returns `Some(payloads)` at the root, `None` elsewhere. Recorded as
    /// internal control traffic.
    pub fn gather(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Bytes,
    ) -> Result<Option<Vec<Bytes>>> {
        if !members.contains(&self.rank()) || !members.contains(&root) {
            return Err(NetError::CollectiveMisuse {
                what: "gather: caller and root must both be members".into(),
            });
        }
        if self.rank() == root {
            let mut out = Vec::with_capacity(members.len());
            for &m in members {
                if m == root {
                    out.push(data.clone());
                } else {
                    out.push(self.transport.recv(m, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send_internal(root, tag, data)?;
            Ok(None)
        }
    }

    /// Scatters `chunks[i]` to `members[i]` from `root`; returns the
    /// caller's chunk. The coordinator's file-placement path (paper Fig. 8).
    pub fn scatter(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        chunks: Option<Vec<Bytes>>,
    ) -> Result<Bytes> {
        if !members.contains(&self.rank()) || !members.contains(&root) {
            return Err(NetError::CollectiveMisuse {
                what: "scatter: caller and root must both be members".into(),
            });
        }
        if self.rank() == root {
            let chunks = chunks.ok_or_else(|| NetError::CollectiveMisuse {
                what: "scatter: root must supply chunks".into(),
            })?;
            if chunks.len() != members.len() {
                return Err(NetError::CollectiveMisuse {
                    what: format!(
                        "scatter: {} chunks for {} members",
                        chunks.len(),
                        members.len()
                    ),
                });
            }
            let mut own = None;
            for (&m, chunk) in members.iter().zip(chunks) {
                if m == root {
                    own = Some(chunk);
                } else {
                    self.send_internal(m, tag, chunk)?;
                }
            }
            Ok(own.expect("root is a member"))
        } else {
            self.transport.recv(root, tag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;

    fn comms(k: usize, algo: BcastAlgorithm) -> Vec<Communicator> {
        let fabric = LocalFabric::new(k);
        let trace = Arc::new(TraceCollector::new(true));
        (0..k)
            .map(|r| {
                Communicator::new(Arc::new(fabric.endpoint(r)), Arc::clone(&trace), None, algo)
            })
            .collect()
    }

    fn run_spmd<R: Send>(comms: &[Communicator], f: impl Fn(&Communicator) -> R + Sync) -> Vec<R> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms.iter().map(|c| scope.spawn(|| f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let comms = comms(4, BcastAlgorithm::default());
        let counter = AtomicUsize::new(0);
        run_spmd(&comms, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // After the barrier, everyone must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            c.barrier().unwrap();
        });
    }

    #[test]
    fn broadcast_binomial_reaches_all() {
        let comms = comms(6, BcastAlgorithm::BinomialTree);
        let members = [0usize, 2, 3, 5];
        let results = run_spmd(&comms, |c| {
            if members.contains(&c.rank()) {
                let data = (c.rank() == 3).then(|| Bytes::from_static(b"tree!"));
                Some(
                    c.broadcast(3, &members, Tag::new(Tag::BCAST, 1), data)
                        .unwrap(),
                )
            } else {
                None
            }
        });
        for (rank, res) in results.iter().enumerate() {
            if members.contains(&rank) {
                assert_eq!(res.as_ref().unwrap(), "tree!");
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn broadcast_flat_reaches_all() {
        let comms = comms(5, BcastAlgorithm::Flat);
        let members = [1usize, 2, 4];
        let results = run_spmd(&comms, |c| {
            if members.contains(&c.rank()) {
                let data = (c.rank() == 1).then(|| Bytes::from_static(b"flat"));
                Some(
                    c.broadcast(1, &members, Tag::new(Tag::BCAST, 9), data)
                        .unwrap(),
                )
            } else {
                None
            }
        });
        assert_eq!(results[2].as_ref().unwrap(), "flat");
        assert_eq!(results[4].as_ref().unwrap(), "flat");
    }

    #[test]
    fn broadcast_records_one_multicast_event() {
        let fabric = LocalFabric::new(3);
        let trace = Arc::new(TraceCollector::new(true));
        let comms: Vec<Communicator> = (0..3)
            .map(|r| {
                Communicator::new(
                    Arc::new(fabric.endpoint(r)),
                    Arc::clone(&trace),
                    None,
                    BcastAlgorithm::BinomialTree,
                )
            })
            .collect();
        run_spmd(&comms, |c| {
            c.set_stage("Shuffle");
            let data = (c.rank() == 0).then(|| Bytes::from(vec![0u8; 100]));
            c.broadcast(0, &[0, 1, 2], Tag::new(Tag::BCAST, 0), data)
                .unwrap();
        });
        let t = trace.snapshot();
        let multicasts: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .collect();
        assert_eq!(multicasts.len(), 1);
        assert_eq!(multicasts[0].bytes, 100);
        assert_eq!(multicasts[0].fanout(), 2);
        // Bytes counted once despite 2 receivers.
        assert_eq!(t.stage_bytes("Shuffle"), 100);
        assert_eq!(t.stage_bytes_unicast_equivalent("Shuffle"), 200);
    }

    #[test]
    fn broadcast_rejects_outsider_and_bad_members() {
        let comms = comms(3, BcastAlgorithm::default());
        // Caller not in group.
        let err = comms[2]
            .broadcast(0, &[0, 1], Tag::new(Tag::BCAST, 0), None)
            .unwrap_err();
        assert!(matches!(err, NetError::CollectiveMisuse { .. }));
        // Unsorted member list.
        let err = comms[0]
            .broadcast(0, &[1, 0], Tag::new(Tag::BCAST, 0), Some(Bytes::new()))
            .unwrap_err();
        assert!(matches!(err, NetError::CollectiveMisuse { .. }));
        // Root missing payload.
        let err = comms[0]
            .broadcast(0, &[0, 1], Tag::new(Tag::BCAST, 0), None)
            .unwrap_err();
        assert!(matches!(err, NetError::CollectiveMisuse { .. }));
    }

    #[test]
    fn gather_collects_in_member_order() {
        let comms = comms(4, BcastAlgorithm::default());
        let members = [0usize, 1, 3];
        let results = run_spmd(&comms, |c| {
            if !members.contains(&c.rank()) {
                return None;
            }
            c.gather(
                1,
                &members,
                Tag::new(Tag::GATHER, 0),
                Bytes::copy_from_slice(&[c.rank() as u8]),
            )
            .unwrap()
        });
        let gathered = results[1].as_ref().unwrap();
        let got: Vec<u8> = gathered.iter().map(|b| b[0]).collect();
        assert_eq!(got, vec![0, 1, 3]);
        assert!(results[0].is_none());
        assert!(results[3].is_none());
    }

    #[test]
    fn scatter_distributes_by_member_order() {
        let comms = comms(3, BcastAlgorithm::default());
        let members = [0usize, 1, 2];
        let results = run_spmd(&comms, |c| {
            let chunks = (c.rank() == 0).then(|| {
                vec![
                    Bytes::from_static(b"zero"),
                    Bytes::from_static(b"one"),
                    Bytes::from_static(b"two"),
                ]
            });
            c.scatter(0, &members, Tag::new(Tag::SCATTER, 0), chunks)
                .unwrap()
        });
        assert_eq!(results[0], "zero");
        assert_eq!(results[1], "one");
        assert_eq!(results[2], "two");
    }

    #[test]
    fn broadcast_auto_serializes_repeated_groups() {
        let comms = comms(3, BcastAlgorithm::BinomialTree);
        let members = [0usize, 1, 2];
        let results = run_spmd(&comms, |c| {
            let mut got = Vec::new();
            for round in 0..10u8 {
                for &root in &members {
                    let data =
                        (c.rank() == root).then(|| Bytes::copy_from_slice(&[root as u8, round]));
                    got.push(c.broadcast_auto(root, &members, data).unwrap());
                }
            }
            got
        });
        for r in results {
            assert_eq!(r.len(), 30);
            for (i, payload) in r.iter().enumerate() {
                assert_eq!(payload[0] as usize, i % 3);
                assert_eq!(payload[1] as usize, i / 3);
            }
        }
    }

    #[test]
    fn single_member_broadcast_is_identity() {
        let comms = comms(2, BcastAlgorithm::default());
        let out = comms[0]
            .broadcast(
                0,
                &[0],
                Tag::new(Tag::BCAST, 0),
                Some(Bytes::from_static(b"me")),
            )
            .unwrap();
        assert_eq!(out, "me");
    }
}
