//! The per-node communicator: point-to-point sends plus MPI-style
//! collectives (barrier, broadcast, multicast, gather, scatter) with
//! transfer tracing and optional NIC emulation.
//!
//! One `Communicator` is handed to each SPMD node closure by the
//! [`cluster`](crate::cluster) runner. It mirrors the Open MPI surface the
//! paper's C++ implementation uses: `MPI_Send`/`MPI_Recv`, `MPI_Bcast`
//! within a multicast group, and `MPI_Barrier` between stages. Two
//! group-cast paths exist:
//!
//! * [`broadcast`](Communicator::broadcast) — the legacy software
//!   collective (flat or binomial tree over point-to-point hops), kept for
//!   the tree-cost ablation;
//! * [`multicast`](Communicator::multicast) — the fabric-aware path the
//!   coded shuffle uses: dispatching on the configured
//!   [`ShuffleFabric`], it sends serial unicasts, overlapped fanout
//!   copies, or one native multicast, charges the emulated NIC
//!   accordingly, and records the per-fabric egress count in the trace.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::cluster::{run_spmd, ClusterConfig};
//! use cts_net::fabric::ShuffleFabric;
//! use cts_net::message::Tag;
//!
//! let cfg = ClusterConfig::local(3).with_fabric(ShuffleFabric::Multicast);
//! let run = run_spmd(&cfg, |comm| {
//!     comm.set_stage("Shuffle");
//!     let data = (comm.rank() == 1).then(|| Bytes::from_static(b"pkt"));
//!     comm.multicast(1, &[0, 1, 2], Tag::new(Tag::BCAST, 0), data).unwrap()
//! })
//! .unwrap();
//! assert!(run.results.iter().all(|r| r == "pkt"));
//! // Native multicast: the packet crossed the sender's egress once.
//! assert_eq!(run.trace.stage_wire_sends("Shuffle"), 1);
//! ```

use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use cts_core::metrics::MetricsHub;

use crate::error::{NetError, Result};
use crate::fabric::ShuffleFabric;
use crate::message::Tag;
use crate::rate::Nic;
use crate::span::SpanCollector;
use crate::trace::{EventKind, TraceCollector};
use crate::transport::Transport;

/// Which broadcast algorithm multicasts use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BcastAlgorithm {
    /// Root sends to every member back-to-back (`r` serial unicasts).
    Flat,
    /// Binomial tree (MPICH/Open MPI style): `⌈log2 m⌉` rounds, relays
    /// forward as they receive.
    #[default]
    BinomialTree,
}

/// The receiver bitmask of a group cast: every member except the root.
fn group_mask(members: &[usize], root: usize) -> u128 {
    members
        .iter()
        .filter(|&&n| n != root)
        .fold(0u128, |acc, &n| acc | (1u128 << n))
}

/// Per-node handle for all communication.
pub struct Communicator {
    transport: Arc<dyn Transport>,
    trace: Arc<TraceCollector>,
    nic: Option<Arc<Nic>>,
    bcast_algo: BcastAlgorithm,
    fabric: ShuffleFabric,
    stage: AtomicU16,
    barrier_epoch: AtomicU32,
    bcast_epoch: AtomicU32,
    /// Job slot scoped into every tag (0 = exclusive, tags unchanged).
    job_slot: u8,
    /// Job id stamped on every trace event.
    job_id: u32,
    /// Stage-span sink, attached by the shared fabric. Each `set_stage`
    /// closes the rank's open span and opens the next.
    spans: Option<Arc<SpanCollector>>,
    /// The open span's interned stage (`u16::MAX` = none open).
    span_stage: AtomicU16,
    /// The open span's start, ns on the collector's clock.
    span_start: AtomicU64,
    /// The owning runtime's metric registry, attached by the shared
    /// fabric so engines can register job-level instruments (heartbeat
    /// transitions, decode progress) without new plumbing.
    metrics: Option<Arc<MetricsHub>>,
}

impl Communicator {
    /// Wires a communicator over `transport`, recording into `trace`,
    /// optionally pacing egress through an emulated `nic`. The shuffle
    /// fabric defaults to [`ShuffleFabric::Multicast`]; override it with
    /// [`with_fabric`](Self::with_fabric).
    pub fn new(
        transport: Arc<dyn Transport>,
        trace: Arc<TraceCollector>,
        nic: Option<Arc<Nic>>,
        bcast_algo: BcastAlgorithm,
    ) -> Self {
        let stage = trace.intern("init");
        Communicator {
            transport,
            trace,
            nic,
            bcast_algo,
            fabric: ShuffleFabric::default(),
            stage: AtomicU16::new(stage),
            barrier_epoch: AtomicU32::new(0),
            bcast_epoch: AtomicU32::new(0),
            job_slot: 0,
            job_id: 0,
            spans: None,
            span_stage: AtomicU16::new(u16::MAX),
            span_start: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Attaches a stage-span collector: from now on every
    /// [`set_stage`](Self::set_stage) brackets wall-clock time per stage
    /// (closed by the next `set_stage` or [`finish_spans`](Self::finish_spans)).
    pub fn with_spans(mut self, spans: Arc<SpanCollector>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Attaches the runtime's metric registry (builder-style).
    pub fn with_metrics(mut self, metrics: Arc<MetricsHub>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The runtime's metric registry, when this communicator belongs to a
    /// metrics-bearing fabric. Engines use this to register job-level
    /// instruments lazily; standalone communicators return `None`.
    pub fn metrics(&self) -> Option<&Arc<MetricsHub>> {
        self.metrics.as_ref()
    }

    /// Selects how [`multicast`](Self::multicast) realizes group sends.
    pub fn with_fabric(mut self, fabric: ShuffleFabric) -> Self {
        self.fabric = fabric;
        self
    }

    /// Scopes this communicator to a job: every tag passing through any
    /// public method is rewritten into `slot`'s namespace (see
    /// [`Tag::scoped`]) and every trace event is stamped with `id`, so
    /// concurrent jobs on one shared fabric neither cross-match messages
    /// nor blur each other's traces. Slot 0 (the default) leaves tags
    /// byte-identical to an unscoped communicator — the exclusive one-shot
    /// path. Scoping is applied exactly once, here at the API boundary;
    /// raw [`transport`](Self::transport) users (the health/recovery
    /// layer) bypass it and therefore require an exclusive fabric.
    pub fn with_job(mut self, slot: u8, id: u32) -> Self {
        assert!(
            slot <= Tag::MAX_JOB_SLOT,
            "job slot {slot} exceeds {}",
            Tag::MAX_JOB_SLOT
        );
        self.job_slot = slot;
        self.job_id = id;
        self
    }

    /// The `(slot, id)` of the job this communicator is scoped to.
    pub fn job(&self) -> (u8, u32) {
        (self.job_slot, self.job_id)
    }

    /// Applies the job-slot namespace to a caller-supplied tag.
    #[inline]
    fn scope(&self, tag: Tag) -> Tag {
        tag.scoped(self.job_slot)
    }

    /// The epoch mask for internally generated tags: job-scoped
    /// communicators must leave room for the slot bits.
    #[inline]
    fn epoch_mask(&self) -> u32 {
        if self.job_slot == 0 {
            0x00FF_FFFF
        } else {
            (1 << Tag::JOB_SEQ_BITS) - 1
        }
    }

    /// The shuffle fabric in effect.
    pub fn fabric(&self) -> ShuffleFabric {
        self.fabric
    }

    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of nodes in the fabric.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// Labels subsequent traffic with a stage name ("Map", "Shuffle", …).
    ///
    /// When a span collector is attached this also closes the rank's open
    /// stage span and opens one for `name` — the engines' existing stage
    /// annotations double as the timing brackets behind `cts stats` and
    /// `--timeline`, with no extra calls in the engine.
    pub fn set_stage(&self, name: &str) {
        self.stage.store(self.trace.intern(name), Ordering::Relaxed);
        if let Some(spans) = &self.spans {
            if spans.enabled() {
                let now = spans.now_ns();
                self.close_open_span(spans, now);
                self.span_stage.store(spans.intern(name), Ordering::Relaxed);
                self.span_start.store(now, Ordering::Relaxed);
            }
        }
    }

    /// Closes the open stage span, if any (idempotent). The shared fabric
    /// calls this when the rank's job closure returns, so the final stage
    /// is bracketed too.
    pub fn finish_spans(&self) {
        if let Some(spans) = &self.spans {
            if spans.enabled() {
                let now = spans.now_ns();
                self.close_open_span(spans, now);
            }
        }
    }

    fn close_open_span(&self, spans: &Arc<SpanCollector>, now: u64) {
        let stage = self.span_stage.swap(u16::MAX, Ordering::Relaxed);
        if stage != u16::MAX {
            spans.record(crate::span::StageSpan {
                job: self.job_id,
                rank: self.transport.rank() as u16,
                stage,
                start_ns: self.span_start.load(Ordering::Relaxed),
                end_ns: now,
            });
        }
    }

    /// The underlying transport (for tests and wrappers).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    fn shape(&self, bytes: usize) {
        if let Some(nic) = &self.nic {
            nic.charge(bytes as u64);
        }
    }

    /// Application point-to-point send (recorded as shuffle traffic).
    ///
    /// NIC emulation is *asynchronous with backpressure*: the payload is
    /// handed to the fabric immediately and the sender then blocks for the
    /// transfer's setup latency plus the payload's egress drain time, so a
    /// node's shuffle wall-clock reflects exactly how long its emulated NIC
    /// was occupied — the quantity the shuffle fabrics differ in.
    pub fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        // Bound-check before the trace mask shift (`1u128 << dst`) so an
        // out-of-range destination errors instead of overflowing.
        if dst >= self.world_size() {
            return Err(NetError::InvalidRank {
                rank: dst,
                world: self.world_size(),
            });
        }
        let bytes = payload.len() as u64;
        self.transport.send(dst, self.scope(tag), payload)?;
        // Recorded only after the fabric accepted the payload, so a failed
        // send leaves no phantom traffic in the trace (the multicast path
        // keeps the same invariant).
        self.trace.record_transfer_for(
            self.job_id,
            self.stage.load(Ordering::Relaxed),
            self.rank(),
            1u128 << dst,
            bytes,
            0,
            1,
            EventKind::AppUnicast,
        );
        if let Some(nic) = &self.nic {
            nic.pace_transfer();
            nic.charge(bytes);
        }
        Ok(())
    }

    /// Substrate-internal send (control traffic, tree relays) — excluded
    /// from communication-load accounting. Deliberately pays egress bytes
    /// but *not* the per-transfer NIC latency: barrier/collective control
    /// messages would otherwise distort strict-serial schedules, and the
    /// legacy tree-broadcast path keeps its pre-NIC-emulation timing. The
    /// fabric-aware [`multicast`](Self::multicast) is the path whose
    /// wall-clock mirrors the model.
    fn send_internal(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        self.send_internal_oh(dst, tag, payload, 0)
    }

    /// Internal send carrying an explicit protocol-overhead byte count
    /// (tree relays of a coded packet inherit the packet's header size).
    /// Callers pass an already-scoped tag (collectives scope at entry).
    fn send_internal_oh(&self, dst: usize, tag: Tag, payload: Bytes, overhead: u64) -> Result<()> {
        self.trace.record_transfer_for(
            self.job_id,
            self.stage.load(Ordering::Relaxed),
            self.rank(),
            1u128 << dst,
            payload.len() as u64,
            overhead,
            1,
            EventKind::Internal,
        );
        self.shape(payload.len());
        self.transport.send(dst, tag, payload)
    }

    /// Blocking receive matched on `(src, tag)`.
    pub fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        self.transport.recv(src, self.scope(tag))
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        self.transport.recv_timeout(src, self.scope(tag), timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        self.transport.try_recv(src, self.scope(tag))
    }

    /// Global barrier across all ranks (flat coordinator pattern through
    /// rank 0, like the paper's synchronous stage transitions).
    pub fn barrier(&self) -> Result<()> {
        let epoch = self.barrier_epoch.fetch_add(1, Ordering::Relaxed);
        let tag = self.scope(Tag::new(Tag::BARRIER, epoch & self.epoch_mask()));
        let k = self.world_size();
        if k == 1 {
            return Ok(());
        }
        if self.rank() == 0 {
            for src in 1..k {
                self.transport.recv(src, tag)?;
            }
            for dst in 1..k {
                self.send_internal(dst, tag, Bytes::new())?;
            }
        } else {
            self.send_internal(0, tag, Bytes::new())?;
            self.transport.recv(0, tag)?;
        }
        Ok(())
    }

    /// Multicast within a member group — the `MPI_Bcast` equivalent.
    ///
    /// `members` must be sorted ascending, contain both `root` and the
    /// caller, and every member must call `broadcast` with the same
    /// arguments (SPMD). The root passes `Some(payload)`, others `None`;
    /// everyone returns the payload.
    ///
    /// The trace records **one** `Multicast` event at the root (bytes
    /// counted once — the paper's communication-load convention) plus the
    /// underlying tree/flat unicasts as `Internal` events.
    pub fn broadcast(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        self.broadcast_with_overhead(root, members, tag, data, 0)
    }

    /// [`broadcast`](Self::broadcast) with an explicit protocol-overhead
    /// byte count recorded on the multicast trace event. The coded engine
    /// passes its packet-header size so the performance model can scale
    /// payload and overhead separately.
    pub fn broadcast_with_overhead(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Option<Bytes>,
        overhead: u64,
    ) -> Result<Bytes> {
        let tag = self.scope(tag);
        let m = members.len();
        let (my_pos, root_pos) = self.validate_group(root, members, &data)?;
        let is_root = self.rank() == root;

        if is_root {
            // A *logical* multicast record: bytes counted once, and zero
            // wire copies of its own — the constituent hops are traced as
            // `Internal` events below (the tree-cost ablation reads them).
            self.trace.record_transfer_for(
                self.job_id,
                self.stage.load(Ordering::Relaxed),
                self.rank(),
                group_mask(members, root),
                data.as_ref().map(|d| d.len()).unwrap_or(0) as u64,
                overhead,
                0,
                EventKind::Multicast,
            );
        }
        if m == 1 {
            return Ok(data.unwrap());
        }

        match self.bcast_algo {
            BcastAlgorithm::Flat => {
                if is_root {
                    let payload = data.unwrap();
                    for &dst in members.iter().filter(|&&n| n != root) {
                        self.send_internal_oh(dst, tag, payload.clone(), overhead)?;
                    }
                    Ok(payload)
                } else {
                    self.transport.recv(root, tag)
                }
            }
            BcastAlgorithm::BinomialTree => {
                let vrank = (my_pos + m - root_pos) % m;
                let actual = |v: usize| members[(v + root_pos) % m];
                let mut payload = data;
                let mut mask = 1usize;
                while mask < m {
                    if vrank & mask != 0 {
                        let parent = actual(vrank - mask);
                        payload = Some(self.transport.recv(parent, tag)?);
                        break;
                    }
                    mask <<= 1;
                }
                let payload = payload.expect("binomial bcast: payload after recv phase");
                mask >>= 1;
                while mask > 0 {
                    if vrank + mask < m {
                        self.send_internal_oh(
                            actual(vrank + mask),
                            tag,
                            payload.clone(),
                            overhead,
                        )?;
                    }
                    mask >>= 1;
                }
                Ok(payload)
            }
        }
    }

    /// Broadcast with an automatically assigned group-unique tag, for use
    /// when the same group multicasts repeatedly (serial multicast shuffle).
    /// All members' epochs advance in lockstep because the call pattern is
    /// SPMD-deterministic.
    pub fn broadcast_auto(
        &self,
        root: usize,
        members: &[usize],
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        let epoch = self.bcast_epoch.fetch_add(1, Ordering::Relaxed);
        let tag = Tag::new(Tag::BCAST, epoch & self.epoch_mask());
        self.broadcast(root, members, tag, data)
    }

    /// Shared SPMD group validation: members sorted/unique, caller and root
    /// both present, root supplies the payload. Returns the caller's and
    /// the root's positions in `members`.
    fn validate_group(
        &self,
        root: usize,
        members: &[usize],
        data: &Option<Bytes>,
    ) -> Result<(usize, usize)> {
        if members.is_empty() || members.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NetError::CollectiveMisuse {
                what: "members must be non-empty, sorted, unique".into(),
            });
        }
        // Sorted, so the last member bounds them all — keeps the trace
        // mask shifts (`1u128 << rank`) in range.
        let highest = *members.last().expect("non-empty");
        if highest >= self.world_size() {
            return Err(NetError::InvalidRank {
                rank: highest,
                world: self.world_size(),
            });
        }
        let my_pos =
            members
                .binary_search(&self.rank())
                .map_err(|_| NetError::CollectiveMisuse {
                    what: format!("caller {} not in group", self.rank()),
                })?;
        let root_pos = members
            .binary_search(&root)
            .map_err(|_| NetError::CollectiveMisuse {
                what: format!("root {root} not in group"),
            })?;
        if self.rank() == root && data.is_none() {
            return Err(NetError::CollectiveMisuse {
                what: "root must supply the payload".into(),
            });
        }
        Ok((my_pos, root_pos))
    }

    /// Multicast within a member group over the configured
    /// [`ShuffleFabric`] — the path the coded shuffle takes.
    ///
    /// Same SPMD contract as [`broadcast`](Self::broadcast): `members`
    /// sorted and containing both `root` and the caller, every member
    /// calling with the same arguments, the root passing `Some(payload)`.
    /// All receivers get the payload directly from the root (no relaying),
    /// so the receive path is fabric-independent; what changes per fabric
    /// is how the root's copies leave the machine:
    ///
    /// * `SerialUnicast` — one blocking unicast per receiver, each paying
    ///   its own NIC latency and egress bytes;
    /// * `Fanout` — one paced transfer whose `m` copies stream through
    ///   [`Transport::multicast`] concurrently (egress still moves
    ///   `m × bytes`);
    /// * `Multicast` — one paced transfer charged `bytes × (1 + α·log2 m)`
    ///   once: genuine one-to-many;
    /// * `UdpMulticast` — identical accounting to `Multicast`, but the
    ///   transport underneath sends one physical IP-multicast datagram
    ///   stream per packet ([`udp`](crate::udp)) instead of emulating the
    ///   single egress crossing.
    ///
    /// The trace records **one** `Multicast` event (bytes counted once —
    /// the paper's communication-load convention) whose
    /// [`wire_copies`](crate::trace::TraceEvent::wire_copies) is the
    /// fabric's egress frame count.
    pub fn multicast(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        self.multicast_with_overhead(root, members, tag, data, 0)
    }

    /// [`multicast`](Self::multicast) with an explicit protocol-overhead
    /// byte count recorded on the trace event (coded-packet headers).
    pub fn multicast_with_overhead(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Option<Bytes>,
        overhead: u64,
    ) -> Result<Bytes> {
        let tag = self.scope(tag);
        self.validate_group(root, members, &data)?;
        if self.rank() != root {
            return self.transport.recv(root, tag);
        }
        let payload = data.expect("validated: root supplies payload");
        let dsts: Vec<usize> = members.iter().copied().filter(|&n| n != root).collect();
        let fanout = dsts.len();
        // The trace event is recorded only after the fabric accepted every
        // copy, so a failed dispatch leaves no phantom traffic behind for
        // the accounting and the netsim oracle.
        let record = |comm: &Self| {
            comm.trace.record_transfer_for(
                comm.job_id,
                comm.stage.load(Ordering::Relaxed),
                comm.rank(),
                group_mask(members, root),
                payload.len() as u64,
                overhead,
                comm.fabric.wire_copies(fanout) as u16,
                EventKind::Multicast,
            );
        };
        if fanout == 0 {
            record(self);
            return Ok(payload);
        }
        // NIC pacing is asynchronous-with-backpressure (see `send`): copies
        // reach the fabric first, then the sender blocks for as long as its
        // emulated NIC stays occupied under this fabric —
        // `m·(L + B/rate)` serial, `L + m·B/rate` fanout,
        // `L + B·(1 + α·log2 m)/rate` native multicast — mirroring
        // `cts-netsim`'s per-fabric model term for term.
        let bytes = payload.len() as u64;
        match self.fabric {
            ShuffleFabric::SerialUnicast => {
                for &dst in &dsts {
                    self.transport.send(dst, tag, payload.clone())?;
                    if let Some(nic) = &self.nic {
                        nic.pace_transfer();
                        nic.charge(bytes);
                    }
                }
            }
            ShuffleFabric::Fanout => {
                self.transport.multicast(&dsts, tag, payload.clone())?;
                if let Some(nic) = &self.nic {
                    nic.pace_transfer();
                    nic.charge(bytes.saturating_mul(fanout as u64));
                }
            }
            // The native and physical multicast fabrics share one
            // accounting arm: the payload is charged once (with the
            // α-penalty) and traced with `wire_copies == 1` — for
            // `UdpMulticast` the single egress crossing is what the
            // socket actually does rather than an emulation convention;
            // only the substrate underneath differs.
            ShuffleFabric::Multicast | ShuffleFabric::UdpMulticast => {
                self.transport.multicast(&dsts, tag, payload.clone())?;
                if let Some(nic) = &self.nic {
                    nic.pace_transfer();
                    nic.charge_scaled(bytes, nic.profile().multicast_penalty(fanout as u32));
                }
            }
        }
        record(self);
        Ok(payload)
    }

    /// Gathers one payload from every member at `root` (member order).
    /// Returns `Some(payloads)` at the root, `None` elsewhere. Recorded as
    /// internal control traffic.
    pub fn gather(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        data: Bytes,
    ) -> Result<Option<Vec<Bytes>>> {
        let tag = self.scope(tag);
        if !members.contains(&self.rank()) || !members.contains(&root) {
            return Err(NetError::CollectiveMisuse {
                what: "gather: caller and root must both be members".into(),
            });
        }
        if let Some(&bad) = members.iter().find(|&&m| m >= self.world_size()) {
            return Err(NetError::InvalidRank {
                rank: bad,
                world: self.world_size(),
            });
        }
        if self.rank() == root {
            let mut out = Vec::with_capacity(members.len());
            for &m in members {
                if m == root {
                    out.push(data.clone());
                } else {
                    out.push(self.transport.recv(m, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send_internal(root, tag, data)?;
            Ok(None)
        }
    }

    /// Scatters `chunks[i]` to `members[i]` from `root`; returns the
    /// caller's chunk. The coordinator's file-placement path (paper Fig. 8).
    pub fn scatter(
        &self,
        root: usize,
        members: &[usize],
        tag: Tag,
        chunks: Option<Vec<Bytes>>,
    ) -> Result<Bytes> {
        let tag = self.scope(tag);
        if !members.contains(&self.rank()) || !members.contains(&root) {
            return Err(NetError::CollectiveMisuse {
                what: "scatter: caller and root must both be members".into(),
            });
        }
        if let Some(&bad) = members.iter().find(|&&m| m >= self.world_size()) {
            return Err(NetError::InvalidRank {
                rank: bad,
                world: self.world_size(),
            });
        }
        if self.rank() == root {
            let chunks = chunks.ok_or_else(|| NetError::CollectiveMisuse {
                what: "scatter: root must supply chunks".into(),
            })?;
            if chunks.len() != members.len() {
                return Err(NetError::CollectiveMisuse {
                    what: format!(
                        "scatter: {} chunks for {} members",
                        chunks.len(),
                        members.len()
                    ),
                });
            }
            let mut own = None;
            for (&m, chunk) in members.iter().zip(chunks) {
                if m == root {
                    own = Some(chunk);
                } else {
                    self.send_internal(m, tag, chunk)?;
                }
            }
            Ok(own.expect("root is a member"))
        } else {
            self.transport.recv(root, tag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;

    fn comms(k: usize, algo: BcastAlgorithm) -> Vec<Communicator> {
        let fabric = LocalFabric::new(k);
        let trace = Arc::new(TraceCollector::new(true));
        (0..k)
            .map(|r| {
                Communicator::new(Arc::new(fabric.endpoint(r)), Arc::clone(&trace), None, algo)
            })
            .collect()
    }

    fn run_spmd<R: Send>(comms: &[Communicator], f: impl Fn(&Communicator) -> R + Sync) -> Vec<R> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms.iter().map(|c| scope.spawn(|| f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let comms = comms(4, BcastAlgorithm::default());
        let counter = AtomicUsize::new(0);
        run_spmd(&comms, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // After the barrier, everyone must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            c.barrier().unwrap();
        });
    }

    #[test]
    fn broadcast_binomial_reaches_all() {
        let comms = comms(6, BcastAlgorithm::BinomialTree);
        let members = [0usize, 2, 3, 5];
        let results = run_spmd(&comms, |c| {
            if members.contains(&c.rank()) {
                let data = (c.rank() == 3).then(|| Bytes::from_static(b"tree!"));
                Some(
                    c.broadcast(3, &members, Tag::new(Tag::BCAST, 1), data)
                        .unwrap(),
                )
            } else {
                None
            }
        });
        for (rank, res) in results.iter().enumerate() {
            if members.contains(&rank) {
                assert_eq!(res.as_ref().unwrap(), "tree!");
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn broadcast_flat_reaches_all() {
        let comms = comms(5, BcastAlgorithm::Flat);
        let members = [1usize, 2, 4];
        let results = run_spmd(&comms, |c| {
            if members.contains(&c.rank()) {
                let data = (c.rank() == 1).then(|| Bytes::from_static(b"flat"));
                Some(
                    c.broadcast(1, &members, Tag::new(Tag::BCAST, 9), data)
                        .unwrap(),
                )
            } else {
                None
            }
        });
        assert_eq!(results[2].as_ref().unwrap(), "flat");
        assert_eq!(results[4].as_ref().unwrap(), "flat");
    }

    #[test]
    fn broadcast_records_one_multicast_event() {
        let fabric = LocalFabric::new(3);
        let trace = Arc::new(TraceCollector::new(true));
        let comms: Vec<Communicator> = (0..3)
            .map(|r| {
                Communicator::new(
                    Arc::new(fabric.endpoint(r)),
                    Arc::clone(&trace),
                    None,
                    BcastAlgorithm::BinomialTree,
                )
            })
            .collect();
        run_spmd(&comms, |c| {
            c.set_stage("Shuffle");
            let data = (c.rank() == 0).then(|| Bytes::from(vec![0u8; 100]));
            c.broadcast(0, &[0, 1, 2], Tag::new(Tag::BCAST, 0), data)
                .unwrap();
        });
        let t = trace.snapshot();
        let multicasts: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .collect();
        assert_eq!(multicasts.len(), 1);
        assert_eq!(multicasts[0].bytes, 100);
        assert_eq!(multicasts[0].fanout(), 2);
        // Bytes counted once despite 2 receivers.
        assert_eq!(t.stage_bytes("Shuffle"), 100);
        assert_eq!(t.stage_bytes_unicast_equivalent("Shuffle"), 200);
    }

    fn fabric_comms(k: usize, fabric: ShuffleFabric) -> (Vec<Communicator>, Arc<TraceCollector>) {
        let fab = LocalFabric::new(k);
        let trace = Arc::new(TraceCollector::new(true));
        let comms = (0..k)
            .map(|r| {
                Communicator::new(
                    Arc::new(fab.endpoint(r)),
                    Arc::clone(&trace),
                    None,
                    BcastAlgorithm::default(),
                )
                .with_fabric(fabric)
            })
            .collect();
        (comms, trace)
    }

    #[test]
    fn multicast_delivers_on_every_fabric() {
        for fabric in ShuffleFabric::ALL {
            let (comms, _) = fabric_comms(5, fabric);
            let members = [0usize, 2, 3, 4];
            let results = run_spmd(&comms, |c| {
                if !members.contains(&c.rank()) {
                    return None;
                }
                let data = (c.rank() == 2).then(|| Bytes::from_static(b"fabric!"));
                Some(
                    c.multicast(2, &members, Tag::new(Tag::BCAST, 4), data)
                        .unwrap(),
                )
            });
            for (rank, res) in results.iter().enumerate() {
                if members.contains(&rank) {
                    assert_eq!(res.as_ref().unwrap(), "fabric!", "{fabric} rank {rank}");
                } else {
                    assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn multicast_trace_counts_wire_copies_per_fabric() {
        for (fabric, expected_copies) in [
            (ShuffleFabric::SerialUnicast, 3u64),
            (ShuffleFabric::Fanout, 3),
            (ShuffleFabric::Multicast, 1),
            // The accounting arm of the physical fabric is exercised here
            // over the in-memory transport: the trace must charge exactly
            // one egress crossing whatever substrate realizes it.
            (ShuffleFabric::UdpMulticast, 1),
        ] {
            let (comms, trace) = fabric_comms(4, fabric);
            run_spmd(&comms, |c| {
                c.set_stage("Shuffle");
                let data = (c.rank() == 0).then(|| Bytes::from(vec![1u8; 200]));
                c.multicast(0, &[0, 1, 2, 3], Tag::new(Tag::BCAST, 0), data)
                    .unwrap();
            });
            let t = trace.snapshot();
            let events: Vec<_> = t
                .events
                .iter()
                .filter(|e| e.kind == EventKind::Multicast)
                .collect();
            assert_eq!(events.len(), 1, "{fabric}");
            assert_eq!(events[0].fanout(), 3, "{fabric}");
            // Bytes counted once regardless of fabric; copies differ.
            assert_eq!(t.stage_bytes("Shuffle"), 200, "{fabric}");
            assert_eq!(t.stage_wire_sends("Shuffle"), expected_copies, "{fabric}");
            // No internal relay traffic on the fabric path.
            assert_eq!(
                t.stage_events("Shuffle")
                    .filter(|e| e.kind == EventKind::Internal)
                    .count(),
                0
            );
        }
    }

    #[test]
    fn multicast_validates_like_broadcast() {
        let (comms, _) = fabric_comms(3, ShuffleFabric::Multicast);
        assert!(matches!(
            comms[2].multicast(0, &[0, 1], Tag::new(Tag::BCAST, 0), None),
            Err(NetError::CollectiveMisuse { .. })
        ));
        assert!(matches!(
            comms[0].multicast(0, &[0, 1], Tag::new(Tag::BCAST, 0), None),
            Err(NetError::CollectiveMisuse { .. })
        ));
    }

    #[test]
    fn out_of_range_ranks_error_instead_of_overflowing_masks() {
        // Ranks ≥ world (even ≥ 128, past the u128 trace-mask width) must
        // surface InvalidRank, not a shift overflow.
        let (comms, _) = fabric_comms(3, ShuffleFabric::Multicast);
        assert!(matches!(
            comms[0].send(200, Tag::app(0), Bytes::new()),
            Err(NetError::InvalidRank { rank: 200, .. })
        ));
        assert!(matches!(
            comms[0].multicast(
                0,
                &[0, 200],
                Tag::new(Tag::BCAST, 0),
                Some(Bytes::from_static(b"x"))
            ),
            Err(NetError::InvalidRank { rank: 200, .. })
        ));
        assert!(matches!(
            comms[0].broadcast(
                0,
                &[0, 200],
                Tag::new(Tag::BCAST, 0),
                Some(Bytes::from_static(b"x"))
            ),
            Err(NetError::InvalidRank { rank: 200, .. })
        ));
        assert!(matches!(
            comms[0].gather(0, &[0, 200], Tag::new(Tag::GATHER, 0), Bytes::new()),
            Err(NetError::InvalidRank { rank: 200, .. })
        ));
    }

    #[test]
    fn single_member_multicast_is_identity() {
        let (comms, _) = fabric_comms(2, ShuffleFabric::Multicast);
        let out = comms[0]
            .multicast(
                0,
                &[0],
                Tag::new(Tag::BCAST, 0),
                Some(Bytes::from_static(b"me")),
            )
            .unwrap();
        assert_eq!(out, "me");
    }

    #[test]
    fn broadcast_rejects_outsider_and_bad_members() {
        let comms = comms(3, BcastAlgorithm::default());
        // Caller not in group.
        let err = comms[2]
            .broadcast(0, &[0, 1], Tag::new(Tag::BCAST, 0), None)
            .unwrap_err();
        assert!(matches!(err, NetError::CollectiveMisuse { .. }));
        // Unsorted member list.
        let err = comms[0]
            .broadcast(0, &[1, 0], Tag::new(Tag::BCAST, 0), Some(Bytes::new()))
            .unwrap_err();
        assert!(matches!(err, NetError::CollectiveMisuse { .. }));
        // Root missing payload.
        let err = comms[0]
            .broadcast(0, &[0, 1], Tag::new(Tag::BCAST, 0), None)
            .unwrap_err();
        assert!(matches!(err, NetError::CollectiveMisuse { .. }));
    }

    #[test]
    fn gather_collects_in_member_order() {
        let comms = comms(4, BcastAlgorithm::default());
        let members = [0usize, 1, 3];
        let results = run_spmd(&comms, |c| {
            if !members.contains(&c.rank()) {
                return None;
            }
            c.gather(
                1,
                &members,
                Tag::new(Tag::GATHER, 0),
                Bytes::copy_from_slice(&[c.rank() as u8]),
            )
            .unwrap()
        });
        let gathered = results[1].as_ref().unwrap();
        let got: Vec<u8> = gathered.iter().map(|b| b[0]).collect();
        assert_eq!(got, vec![0, 1, 3]);
        assert!(results[0].is_none());
        assert!(results[3].is_none());
    }

    #[test]
    fn scatter_distributes_by_member_order() {
        let comms = comms(3, BcastAlgorithm::default());
        let members = [0usize, 1, 2];
        let results = run_spmd(&comms, |c| {
            let chunks = (c.rank() == 0).then(|| {
                vec![
                    Bytes::from_static(b"zero"),
                    Bytes::from_static(b"one"),
                    Bytes::from_static(b"two"),
                ]
            });
            c.scatter(0, &members, Tag::new(Tag::SCATTER, 0), chunks)
                .unwrap()
        });
        assert_eq!(results[0], "zero");
        assert_eq!(results[1], "one");
        assert_eq!(results[2], "two");
    }

    #[test]
    fn broadcast_auto_serializes_repeated_groups() {
        let comms = comms(3, BcastAlgorithm::BinomialTree);
        let members = [0usize, 1, 2];
        let results = run_spmd(&comms, |c| {
            let mut got = Vec::new();
            for round in 0..10u8 {
                for &root in &members {
                    let data =
                        (c.rank() == root).then(|| Bytes::copy_from_slice(&[root as u8, round]));
                    got.push(c.broadcast_auto(root, &members, data).unwrap());
                }
            }
            got
        });
        for r in results {
            assert_eq!(r.len(), 30);
            for (i, payload) in r.iter().enumerate() {
                assert_eq!(payload[0] as usize, i % 3);
                assert_eq!(payload[1] as usize, i / 3);
            }
        }
    }

    #[test]
    fn job_scoping_isolates_identical_tags_on_one_fabric() {
        // Two "jobs" share one fabric and both use Tag::app(7). Without
        // scoping the receives could match either sender's payload; with
        // per-job slots each job sees exactly its own bytes.
        let fabric = LocalFabric::new(2);
        let trace = Arc::new(TraceCollector::new(true));
        let comm_for = |rank: usize, slot: u8, id: u32| {
            Communicator::new(
                Arc::new(fabric.endpoint(rank)),
                Arc::clone(&trace),
                None,
                BcastAlgorithm::default(),
            )
            .with_job(slot, id)
        };
        let (a0, a1) = (comm_for(0, 1, 101), comm_for(1, 1, 101));
        let (b0, b1) = (comm_for(0, 2, 202), comm_for(1, 2, 202));
        // Job B's payload is already queued when job A sends on the same
        // logical (src, tag); A must still receive A's payload.
        b0.send(1, Tag::app(7), Bytes::from_static(b"job-b"))
            .unwrap();
        a0.send(1, Tag::app(7), Bytes::from_static(b"job-a"))
            .unwrap();
        assert_eq!(a1.recv(0, Tag::app(7)).unwrap(), "job-a");
        assert_eq!(b1.recv(0, Tag::app(7)).unwrap(), "job-b");
        // The shared trace separates per job id.
        let t = trace.snapshot();
        assert_eq!(t.jobs(), vec![101, 202]);
        assert_eq!(t.for_job(101).total_bytes(), 5);
        assert_eq!(t.for_job(202).total_bytes(), 5);
    }

    #[test]
    fn job_scoped_collectives_do_not_cross_jobs() {
        let fabric = LocalFabric::new(3);
        let trace = Arc::new(TraceCollector::new(false));
        let job_comms = |slot: u8| -> Vec<Communicator> {
            (0..3)
                .map(|r| {
                    Communicator::new(
                        Arc::new(fabric.endpoint(r)),
                        Arc::clone(&trace),
                        None,
                        BcastAlgorithm::default(),
                    )
                    .with_job(slot, slot as u32)
                })
                .collect()
        };
        let a = job_comms(1);
        let b = job_comms(2);
        // Run both jobs' broadcasts concurrently over the same endpoints
        // with the same tag; payloads must stay within their job.
        std::thread::scope(|s| {
            for comms in [&a, &b] {
                for c in comms.iter() {
                    s.spawn(move || {
                        let (_, id) = c.job();
                        let data = (c.rank() == 0).then(|| Bytes::from(vec![id as u8; 8]));
                        let got = c
                            .multicast(0, &[0, 1, 2], Tag::new(Tag::BCAST, 3), data)
                            .unwrap();
                        assert_eq!(got, Bytes::from(vec![id as u8; 8]), "job {id}");
                        c.barrier().unwrap();
                    });
                }
            }
        });
    }

    #[test]
    fn single_member_broadcast_is_identity() {
        let comms = comms(2, BcastAlgorithm::default());
        let out = comms[0]
            .broadcast(
                0,
                &[0],
                Tag::new(Tag::BCAST, 0),
                Some(Bytes::from_static(b"me")),
            )
            .unwrap();
        assert_eq!(out, "me");
    }
}
