//! The rank registry: who is rank `i` and how to reach them.
//!
//! The paper's deployment fixes a coordinator plus `K` workers whose MPI
//! ranks are known up front (Fig. 8). [`RankRegistry`] is that membership
//! map for the socket fabric: it binds one loopback listener per rank and
//! records every rank's address. The [`tcp`](crate::tcp) endpoints bring
//! links up **lazily** — a directed link is dialed on the first send that
//! needs it, the dialer introducing itself with a 4-byte hello — so sparse
//! communication patterns open only the file descriptors they use.
//! [`connect_mesh`] remains as the eager bring-up (every pair connected up
//! front, higher rank dials lower) for diagnostics and tests that want the
//! whole `K(K−1)/2` mesh established before traffic flows.
//!
//! [`UdpGroupPlan`] extends the registry to the [`udp`](crate::udp)
//! fabric: it deterministically allocates a multicast group address for
//! every multicast *set* (receiver bitmask) from a small address pool, so
//! each endpoint joins `pool_size` groups once at bring-up — Linux caps
//! IGMP memberships per socket (`igmp_max_memberships`, default 20), which
//! rules out one membership per `C(K, r+1)` group at paper scale.
//!
//! ```
//! use cts_net::registry::RankRegistry;
//!
//! let (registry, listeners) = RankRegistry::bind_loopback(3).unwrap();
//! assert_eq!(registry.world_size(), 3);
//! assert_eq!(listeners.len(), 3);
//! // Every rank has a distinct loopback address.
//! assert_ne!(registry.addr(0).unwrap(), registry.addr(1).unwrap());
//! assert!(registry.addr(7).is_none());
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};

use crate::error::{NetError, Result};

/// Highest world size the fabrics support: receiver sets are traced as
/// `u128` bitmasks.
pub const MAX_WORLD: usize = 128;

/// Rank → socket address membership for one fabric.
#[derive(Clone, Debug)]
pub struct RankRegistry {
    addrs: Vec<SocketAddr>,
}

impl RankRegistry {
    /// How many times a single listener bind is retried before the error
    /// propagates. Ephemeral-port allocation (`127.0.0.1:0`) cannot collide
    /// with another bound socket, but under rapid-sequence cluster churn
    /// the kernel can still transiently refuse (ephemeral range pressure,
    /// `TIME_WAIT` buildup at high fabric turnover); a short bounded retry
    /// with linear backoff absorbs that without masking real failures.
    pub const BIND_RETRIES: usize = 8;

    /// Binds `k` loopback listeners and records their addresses. Returns
    /// the registry plus the listeners (in rank order) to pass to
    /// [`connect_mesh`].
    ///
    /// Ports are always kernel-assigned ephemerals (never fixed offsets),
    /// so any number of clusters can come up concurrently in one process
    /// or in rapid sequence without port collisions. Rust's std sets
    /// `SO_REUSEADDR` on listeners on Unix, so a recycled address in
    /// `TIME_WAIT` does not block a fresh bind; transient refusals are
    /// retried up to [`BIND_RETRIES`](Self::BIND_RETRIES) times.
    ///
    /// # Errors
    /// I/O errors from binding (after retries); `InvalidRank` if `k` is 0
    /// or exceeds [`MAX_WORLD`].
    pub fn bind_loopback(k: usize) -> Result<(RankRegistry, Vec<TcpListener>)> {
        if k == 0 || k > MAX_WORLD {
            return Err(NetError::InvalidRank {
                rank: k,
                world: MAX_WORLD,
            });
        }
        let mut listeners = Vec::with_capacity(k);
        let mut addrs = Vec::with_capacity(k);
        for _ in 0..k {
            let listener = Self::bind_one_with_retry()?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        Ok((RankRegistry { addrs }, listeners))
    }

    fn bind_one_with_retry() -> Result<TcpListener> {
        let mut last_err = None;
        for attempt in 0..Self::BIND_RETRIES {
            match TcpListener::bind("127.0.0.1:0") {
                Ok(listener) => return Ok(listener),
                Err(e) => {
                    last_err = Some(e);
                    // Linear backoff: 1, 2, 3, … ms. Total worst case stays
                    // well under 50 ms for BIND_RETRIES = 8.
                    std::thread::sleep(std::time::Duration::from_millis(attempt as u64 + 1));
                }
            }
        }
        Err(last_err.expect("at least one bind attempt").into())
    }

    /// Number of registered ranks.
    pub fn world_size(&self) -> usize {
        self.addrs.len()
    }

    /// The address of `rank`, if registered.
    pub fn addr(&self, rank: usize) -> Option<SocketAddr> {
        self.addrs.get(rank).copied()
    }

    /// All addresses, rank order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The membership view of this registry's world under a dead-mask from
    /// the health layer: who is still in, and who deterministically adopts
    /// each dead rank's responsibilities.
    pub fn membership(&self, dead_mask: u128) -> MembershipView {
        MembershipView::new(self.world_size(), dead_mask)
    }
}

/// A point-in-time membership view: the registry's world filtered by the
/// health layer's dead-mask. Successor choice is deterministic (next
/// surviving rank, cyclically), so every survivor computes the same
/// adoption plan without further coordination.
///
/// ```
/// use cts_net::registry::MembershipView;
///
/// let view = MembershipView::new(4, 0b0100); // rank 2 is dead
/// assert!(view.is_alive(1) && !view.is_alive(2));
/// assert_eq!(view.alive_ranks(), vec![0, 1, 3]);
/// assert_eq!(view.successor_of(2), Some(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipView {
    world: usize,
    dead_mask: u128,
}

impl MembershipView {
    /// A view over `world` ranks with the given dead-mask (bit `i` set =
    /// rank `i` is dead). Bits at or above `world` are ignored.
    pub fn new(world: usize, dead_mask: u128) -> Self {
        let keep = if world >= 128 {
            u128::MAX
        } else {
            (1u128 << world) - 1
        };
        MembershipView {
            world,
            dead_mask: dead_mask & keep,
        }
    }

    /// The registered world size (alive and dead).
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// True if `rank` has not been declared dead.
    pub fn is_alive(&self, rank: usize) -> bool {
        rank < self.world && self.dead_mask & (1u128 << rank) == 0
    }

    /// The dead-mask this view was built from.
    pub fn dead_mask(&self) -> u128 {
        self.dead_mask
    }

    /// Surviving ranks, ascending.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.world).filter(|&r| self.is_alive(r)).collect()
    }

    /// Dead ranks, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.world).filter(|&r| !self.is_alive(r)).collect()
    }

    /// The deterministic successor of `rank`: the next surviving rank
    /// cyclically after it. `None` if nobody survives.
    pub fn successor_of(&self, rank: usize) -> Option<usize> {
        (1..=self.world)
            .map(|step| (rank + step) % self.world)
            .find(|&r| self.is_alive(r))
    }
}

/// Deterministic multicast-group addressing for the UDP fabric.
///
/// Every multicast *set* (a receiver bitmask over ranks) maps to one
/// administratively scoped group address (`239.195.77.x`, RFC 2365) drawn
/// from a pool of `pool_size` addresses, all sharing one UDP `port`. The
/// mapping is a pure hash of the mask, so every rank computes the same
/// address for the same set without coordination, and receivers join the
/// whole (small) pool once at bring-up — receiver-mask filtering in the
/// datagram header handles pool collisions and over-delivery, exactly like
/// coarse IGMP snooping on a real switch.
///
/// ```
/// use cts_net::registry::UdpGroupPlan;
///
/// let plan = UdpGroupPlan::new(4000, 8);
/// // Same set → same group address, on every rank.
/// assert_eq!(plan.addr_for(0b0110), plan.addr_for(0b0110));
/// assert_eq!(plan.pool().len(), 8);
/// assert!(plan.pool().contains(plan.addr_for(0b0110).ip()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpGroupPlan {
    port: u16,
    pool_size: u8,
}

impl UdpGroupPlan {
    /// Default pool size: well under Linux's per-socket IGMP membership
    /// cap (`igmp_max_memberships`, typically 20).
    pub const DEFAULT_POOL: u8 = 8;

    /// A plan over `pool_size` group addresses (clamped to at least 1) on
    /// the given UDP port.
    pub fn new(port: u16, pool_size: u8) -> Self {
        UdpGroupPlan {
            port,
            pool_size: pool_size.max(1),
        }
    }

    /// The shared UDP port every group of this plan uses.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// All group addresses of the pool, in join order.
    pub fn pool(&self) -> Vec<Ipv4Addr> {
        (0..self.pool_size)
            .map(|i| Ipv4Addr::new(239, 195, 77, i + 1))
            .collect()
    }

    /// The group socket address allocated to the multicast set `mask`.
    pub fn addr_for(&self, mask: u128) -> SocketAddrV4 {
        // Fibonacci-hash the folded mask so adjacent receiver sets spread
        // over the pool instead of clustering on one address.
        let folded = (mask as u64) ^ ((mask >> 64) as u64);
        let h = folded.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let slot = (h % self.pool_size as u64) as u8;
        SocketAddrV4::new(Ipv4Addr::new(239, 195, 77, slot + 1), self.port)
    }
}

/// Establishes the full mesh over a freshly bound registry: rank `j` dials
/// every lower rank `i < j` (loopback connects to a bound listener succeed
/// from the backlog without a concurrent accept, so the serial sweep cannot
/// deadlock) and introduces itself with a 4-byte little-endian hello.
/// Returns, per rank, the map of peer rank → connected stream.
///
/// # Errors
/// Propagates I/O failures; `Io` if a hello announces an out-of-range rank.
pub fn connect_mesh(
    registry: &RankRegistry,
    listeners: Vec<TcpListener>,
) -> Result<Vec<HashMap<usize, TcpStream>>> {
    let k = registry.world_size();
    assert_eq!(listeners.len(), k, "one listener per registered rank");
    let mut streams: Vec<HashMap<usize, TcpStream>> = (0..k).map(|_| HashMap::new()).collect();

    for i in 0..k {
        for (j, peer_streams) in streams.iter_mut().enumerate().skip(i + 1) {
            let stream = TcpStream::connect(registry.addrs[i])?;
            stream.set_nodelay(true)?;
            let mut s = stream.try_clone()?;
            s.write_all(&(j as u32).to_le_bytes())?;
            peer_streams.insert(i, stream);
        }
        // Accept the k-1-i inbound connections for listener i.
        for _ in (i + 1)..k {
            let (mut stream, _) = listeners[i].accept()?;
            stream.set_nodelay(true)?;
            let mut hello = [0u8; 4];
            stream.read_exact(&mut hello)?;
            let peer = u32::from_le_bytes(hello) as usize;
            if peer <= i || peer >= k {
                return Err(NetError::Io {
                    what: format!("unexpected hello rank {peer} on listener {i}"),
                });
            }
            streams[i].insert(peer, stream);
        }
    }
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_is_fully_connected() {
        let (registry, listeners) = RankRegistry::bind_loopback(4).unwrap();
        let meshes = connect_mesh(&registry, listeners).unwrap();
        assert_eq!(meshes.len(), 4);
        for (rank, peers) in meshes.iter().enumerate() {
            assert_eq!(peers.len(), 3, "rank {rank}");
            for peer in 0..4 {
                assert_eq!(peers.contains_key(&peer), peer != rank);
            }
        }
    }

    #[test]
    fn zero_and_oversized_worlds_are_rejected() {
        assert!(matches!(
            RankRegistry::bind_loopback(0),
            Err(NetError::InvalidRank { .. })
        ));
        assert!(matches!(
            RankRegistry::bind_loopback(MAX_WORLD + 1),
            Err(NetError::InvalidRank { .. })
        ));
    }

    #[test]
    fn group_plan_is_deterministic_and_pool_bounded() {
        let plan = UdpGroupPlan::new(4100, 4);
        let pool = plan.pool();
        assert_eq!(pool.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for mask in [0b11u128, 0b101, 0b1110, 1u128 << 127 | 1, u128::MAX] {
            let addr = plan.addr_for(mask);
            assert_eq!(addr, plan.addr_for(mask), "stable for {mask:#x}");
            assert_eq!(addr.port(), 4100);
            assert!(pool.contains(addr.ip()), "in pool for {mask:#x}");
            seen.insert(*addr.ip());
        }
        // The hash actually spreads sets over more than one address.
        assert!(seen.len() > 1, "all masks collapsed onto one group");
        // Degenerate pool of one still works.
        assert_eq!(UdpGroupPlan::new(1, 0).pool().len(), 1);
    }

    #[test]
    fn membership_views_pick_deterministic_successors() {
        let view = MembershipView::new(5, 0);
        assert_eq!(view.alive_ranks(), vec![0, 1, 2, 3, 4]);
        assert_eq!(view.successor_of(4), Some(0), "succession wraps");

        let holey = MembershipView::new(5, 0b11000); // 3 and 4 dead
        assert_eq!(holey.dead_ranks(), vec![3, 4]);
        assert_eq!(holey.successor_of(3), Some(0), "skips dead 4, wraps");
        assert_eq!(holey.successor_of(2), Some(0));

        // Out-of-world bits are masked off; a fully dead world has no
        // successor.
        assert_eq!(MembershipView::new(3, !0b111).dead_mask(), 0);
        assert_eq!(MembershipView::new(3, 0b111).successor_of(0), None);
    }

    #[test]
    fn registry_surfaces_membership() {
        let (registry, _listeners) = RankRegistry::bind_loopback(3).unwrap();
        let view = registry.membership(0b010);
        assert_eq!(view.world_size(), 3);
        assert_eq!(view.alive_ranks(), vec![0, 2]);
        assert_eq!(view.successor_of(1), Some(2));
    }

    #[test]
    fn rapid_sequence_and_concurrent_bringup_never_collides() {
        // Rapid-sequence churn: bring whole worlds up and down back to
        // back. Ephemeral ports + SO_REUSEADDR mean no run may fail.
        for _ in 0..20 {
            let (registry, listeners) = RankRegistry::bind_loopback(8).unwrap();
            assert_eq!(registry.world_size(), 8);
            drop(listeners);
        }
        // Concurrent bring-up: several clusters binding simultaneously in
        // one process must each get disjoint address sets.
        let registries: Vec<RankRegistry> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| s.spawn(|| RankRegistry::bind_loopback(6).unwrap().0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all_addrs = std::collections::HashSet::new();
        for registry in &registries {
            for addr in registry.addrs() {
                assert!(all_addrs.insert(*addr), "duplicate bound addr {addr}");
            }
        }
        assert_eq!(all_addrs.len(), 6 * 6);
    }

    #[test]
    fn single_rank_world_has_no_links() {
        let (registry, listeners) = RankRegistry::bind_loopback(1).unwrap();
        let meshes = connect_mesh(&registry, listeners).unwrap();
        assert_eq!(meshes.len(), 1);
        assert!(meshes[0].is_empty());
    }
}
