//! The rank registry: who is rank `i` and how to reach them.
//!
//! The paper's deployment fixes a coordinator plus `K` workers whose MPI
//! ranks are known up front (Fig. 8). [`RankRegistry`] is that membership
//! map for the socket fabric: it binds one loopback listener per rank,
//! records every rank's address, and [`connect_mesh`] turns it into a fully
//! connected mesh with a deterministic dial direction (higher rank dials
//! lower, introducing itself with a 4-byte hello), so `K(K−1)/2` sockets
//! come up without races or deadlocks. With the single-reactor endpoints in
//! [`tcp`](crate::tcp) this scales single-host emulation to `K = 128`
//! (≈ 16 k file descriptors, two threads per rank).
//!
//! ```
//! use cts_net::registry::RankRegistry;
//!
//! let (registry, listeners) = RankRegistry::bind_loopback(3).unwrap();
//! assert_eq!(registry.world_size(), 3);
//! assert_eq!(listeners.len(), 3);
//! // Every rank has a distinct loopback address.
//! assert_ne!(registry.addr(0).unwrap(), registry.addr(1).unwrap());
//! assert!(registry.addr(7).is_none());
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::error::{NetError, Result};

/// Highest world size the fabrics support: receiver sets are traced as
/// `u128` bitmasks.
pub const MAX_WORLD: usize = 128;

/// Rank → socket address membership for one fabric.
#[derive(Clone, Debug)]
pub struct RankRegistry {
    addrs: Vec<SocketAddr>,
}

impl RankRegistry {
    /// Binds `k` loopback listeners and records their addresses. Returns
    /// the registry plus the listeners (in rank order) to pass to
    /// [`connect_mesh`].
    ///
    /// # Errors
    /// I/O errors from binding; `InvalidRank` if `k` is 0 or exceeds
    /// [`MAX_WORLD`].
    pub fn bind_loopback(k: usize) -> Result<(RankRegistry, Vec<TcpListener>)> {
        if k == 0 || k > MAX_WORLD {
            return Err(NetError::InvalidRank {
                rank: k,
                world: MAX_WORLD,
            });
        }
        let mut listeners = Vec::with_capacity(k);
        let mut addrs = Vec::with_capacity(k);
        for _ in 0..k {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        Ok((RankRegistry { addrs }, listeners))
    }

    /// Number of registered ranks.
    pub fn world_size(&self) -> usize {
        self.addrs.len()
    }

    /// The address of `rank`, if registered.
    pub fn addr(&self, rank: usize) -> Option<SocketAddr> {
        self.addrs.get(rank).copied()
    }

    /// All addresses, rank order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

/// Establishes the full mesh over a freshly bound registry: rank `j` dials
/// every lower rank `i < j` (loopback connects to a bound listener succeed
/// from the backlog without a concurrent accept, so the serial sweep cannot
/// deadlock) and introduces itself with a 4-byte little-endian hello.
/// Returns, per rank, the map of peer rank → connected stream.
///
/// # Errors
/// Propagates I/O failures; `Io` if a hello announces an out-of-range rank.
pub fn connect_mesh(
    registry: &RankRegistry,
    listeners: Vec<TcpListener>,
) -> Result<Vec<HashMap<usize, TcpStream>>> {
    let k = registry.world_size();
    assert_eq!(listeners.len(), k, "one listener per registered rank");
    let mut streams: Vec<HashMap<usize, TcpStream>> = (0..k).map(|_| HashMap::new()).collect();

    for i in 0..k {
        for (j, peer_streams) in streams.iter_mut().enumerate().skip(i + 1) {
            let stream = TcpStream::connect(registry.addrs[i])?;
            stream.set_nodelay(true)?;
            let mut s = stream.try_clone()?;
            s.write_all(&(j as u32).to_le_bytes())?;
            peer_streams.insert(i, stream);
        }
        // Accept the k-1-i inbound connections for listener i.
        for _ in (i + 1)..k {
            let (mut stream, _) = listeners[i].accept()?;
            stream.set_nodelay(true)?;
            let mut hello = [0u8; 4];
            stream.read_exact(&mut hello)?;
            let peer = u32::from_le_bytes(hello) as usize;
            if peer <= i || peer >= k {
                return Err(NetError::Io {
                    what: format!("unexpected hello rank {peer} on listener {i}"),
                });
            }
            streams[i].insert(peer, stream);
        }
    }
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_is_fully_connected() {
        let (registry, listeners) = RankRegistry::bind_loopback(4).unwrap();
        let meshes = connect_mesh(&registry, listeners).unwrap();
        assert_eq!(meshes.len(), 4);
        for (rank, peers) in meshes.iter().enumerate() {
            assert_eq!(peers.len(), 3, "rank {rank}");
            for peer in 0..4 {
                assert_eq!(peers.contains_key(&peer), peer != rank);
            }
        }
    }

    #[test]
    fn zero_and_oversized_worlds_are_rejected() {
        assert!(matches!(
            RankRegistry::bind_loopback(0),
            Err(NetError::InvalidRank { .. })
        ));
        assert!(matches!(
            RankRegistry::bind_loopback(MAX_WORLD + 1),
            Err(NetError::InvalidRank { .. })
        ));
    }

    #[test]
    fn single_rank_world_has_no_links() {
        let (registry, listeners) = RankRegistry::bind_loopback(1).unwrap();
        let meshes = connect_mesh(&registry, listeners).unwrap();
        assert_eq!(meshes.len(), 1);
        assert!(meshes[0].is_empty());
    }
}
