//! Transfer tracing.
//!
//! Every communicator records its traffic into a shared [`TraceCollector`].
//! The resulting [`Trace`] — stage-labelled unicast and multicast events in
//! global order — is what `cts-netsim` replays under a network model to
//! produce the paper's stage timings, and what the Fig. 9 timeline renderer
//! draws.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What kind of transfer an event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An application point-to-point send (TeraSort's unicast shuffle, or
    /// any engine `send`).
    AppUnicast,
    /// A logical multicast: one coded packet delivered to a receiver set
    /// (recorded once, at the root, regardless of the tree used).
    Multicast,
    /// Substrate-internal traffic: barrier control messages and the
    /// point-to-point hops a tree broadcast decomposes into. Network models
    /// for the paper's schedules ignore these; the tree-cost ablation uses
    /// them.
    Internal,
}

/// One recorded transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global record order (monotonic across all nodes).
    pub seq: u64,
    /// Index into [`Trace::stages`].
    pub stage: u16,
    /// Sender rank.
    pub src: u16,
    /// Receiver set as a bitmask (single bit for unicasts).
    pub dsts: u64,
    /// Total bytes on the wire (payload + protocol overhead).
    pub bytes: u64,
    /// The fixed protocol-overhead portion of `bytes` (coded-packet
    /// headers). When a scaled run is projected to a larger input, only
    /// `bytes - overhead` scales — headers are per-packet constants.
    pub overhead: u64,
    /// Transfer kind.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Number of receivers.
    pub fn fanout(&self) -> u32 {
        self.dsts.count_ones()
    }
}

/// A completed trace: interned stage names plus events in record order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Stage names, indexed by [`TraceEvent::stage`].
    pub stages: Vec<String>,
    /// All recorded events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// The stage index for `name`, if any events used it.
    pub fn stage_index(&self, name: &str) -> Option<u16> {
        self.stages.iter().position(|s| s == name).map(|i| i as u16)
    }

    /// Iterates events belonging to the named stage.
    pub fn stage_events<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a TraceEvent> {
        let idx = self.stage_index(name);
        self.events.iter().filter(move |e| Some(e.stage) == idx)
    }

    /// Total payload bytes sent in the named stage, counting a multicast
    /// once (the paper's communication-load convention: a coded packet costs
    /// its length, however many nodes hear it).
    pub fn stage_bytes(&self, name: &str) -> u64 {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total bytes if every multicast were replaced by per-receiver
    /// unicasts — the uncoded-equivalent volume.
    pub fn stage_bytes_unicast_equivalent(&self, name: &str) -> u64 {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.bytes * e.fanout() as u64)
            .sum()
    }

    /// Count of non-internal events in the named stage.
    pub fn stage_transfer_count(&self, name: &str) -> usize {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .count()
    }

    /// Total non-internal bytes across all stages.
    pub fn total_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.bytes)
            .sum()
    }
}

#[derive(Default)]
struct CollectorInner {
    stage_index: HashMap<String, u16>,
    stages: Vec<String>,
    events: Vec<TraceEvent>,
    seq: u64,
}

/// Thread-safe trace accumulator shared by all communicators of a fabric.
pub struct TraceCollector {
    enabled: bool,
    inner: Mutex<CollectorInner>,
}

impl TraceCollector {
    /// Creates a collector; a disabled collector records nothing (zero
    /// overhead beyond an atomic check).
    pub fn new(enabled: bool) -> Self {
        TraceCollector {
            enabled,
            inner: Mutex::new(CollectorInner::default()),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Interns a stage name, returning its index.
    pub fn intern(&self, name: &str) -> u16 {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.stage_index.get(name) {
            return idx;
        }
        let idx = inner.stages.len() as u16;
        inner.stages.push(name.to_string());
        inner.stage_index.insert(name.to_string(), idx);
        idx
    }

    /// Records one event (no-op when disabled).
    pub fn record(&self, stage: u16, src: usize, dsts: u64, bytes: u64, kind: EventKind) {
        self.record_with_overhead(stage, src, dsts, bytes, 0, kind);
    }

    /// Records one event with an explicit protocol-overhead byte count.
    pub fn record_with_overhead(
        &self,
        stage: u16,
        src: usize,
        dsts: u64,
        bytes: u64,
        overhead: u64,
        kind: EventKind,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(overhead <= bytes, "overhead cannot exceed total bytes");
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push(TraceEvent {
            seq,
            stage,
            src: src as u16,
            dsts,
            bytes,
            overhead,
            kind,
        });
    }

    /// Takes a snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock();
        Trace {
            stages: inner.stages.clone(),
            events: inner.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let c = TraceCollector::new(true);
        let a = c.intern("Map");
        let b = c.intern("Shuffle");
        assert_ne!(a, b);
        assert_eq!(c.intern("Map"), a);
    }

    #[test]
    fn record_and_snapshot() {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        c.record(s, 0, 0b0010, 100, EventKind::AppUnicast);
        c.record(s, 1, 0b1101, 40, EventKind::Multicast);
        let t = c.snapshot();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].seq, 0);
        assert_eq!(t.events[1].seq, 1);
        assert_eq!(t.events[1].fanout(), 3);
        assert_eq!(t.stage_bytes("Shuffle"), 140);
        assert_eq!(t.stage_bytes_unicast_equivalent("Shuffle"), 100 + 120);
        assert_eq!(t.stage_transfer_count("Shuffle"), 2);
    }

    #[test]
    fn internal_events_excluded_from_byte_counts() {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        c.record(s, 0, 0b10, 1000, EventKind::Internal);
        c.record(s, 0, 0b10, 7, EventKind::AppUnicast);
        let t = c.snapshot();
        assert_eq!(t.stage_bytes("Shuffle"), 7);
        assert_eq!(t.total_bytes(), 7);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = TraceCollector::new(false);
        let s = c.intern("Map");
        c.record(s, 0, 1, 10, EventKind::AppUnicast);
        assert!(c.snapshot().events.is_empty());
    }

    #[test]
    fn unknown_stage_queries_are_empty() {
        let t = Trace::default();
        assert_eq!(t.stage_bytes("Nope"), 0);
        assert_eq!(t.stage_events("Nope").count(), 0);
        assert_eq!(t.stage_index("Nope"), None);
    }
}
