//! Transfer tracing.
//!
//! Every communicator records its traffic into a shared [`TraceCollector`].
//! The resulting [`Trace`] — stage-labelled unicast and multicast events in
//! global order — is what `cts-netsim` replays under a network model to
//! produce the paper's stage timings, and what the Fig. 9 timeline renderer
//! draws.
//!
//! Since the async-fabric refactor every event also carries
//! [`wire_copies`](TraceEvent::wire_copies): how many separate egress
//! transmissions the payload made at the sender under the shuffle fabric in
//! effect. [`Trace::stage_wire_sends`] sums them, which is how the
//! fabric-equivalence tests check that a native multicast really sends
//! `r×` fewer frames than serial-unicast emulation.
//!
//! ```
//! use cts_net::trace::{EventKind, TraceCollector};
//!
//! let collector = TraceCollector::new(true);
//! let stage = collector.intern("Shuffle");
//! // One unicast, then one native multicast to ranks 1 and 2.
//! collector.record(stage, 0, 0b010, 64, EventKind::AppUnicast);
//! collector.record_transfer(stage, 0, 0b110, 100, 0, 1, EventKind::Multicast);
//! let trace = collector.snapshot();
//! assert_eq!(trace.stage_bytes("Shuffle"), 164);
//! assert_eq!(trace.stage_wire_sends("Shuffle"), 2); // 1 unicast + 1 native multicast
//! ```

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What kind of transfer an event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An application point-to-point send (TeraSort's unicast shuffle, or
    /// any engine `send`).
    AppUnicast,
    /// A logical multicast: one coded packet delivered to a receiver set
    /// (recorded once, at the root, regardless of the tree used).
    Multicast,
    /// Substrate-internal traffic: barrier control messages and the
    /// point-to-point hops a tree broadcast decomposes into. Network models
    /// for the paper's schedules ignore these; the tree-cost ablation uses
    /// them.
    Internal,
}

/// One recorded transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global record order (monotonic across all nodes).
    pub seq: u64,
    /// Index into [`Trace::stages`].
    pub stage: u16,
    /// The job this transfer belongs to (0 for exclusive/one-shot runs).
    /// Concurrent jobs on a shared fabric interleave in one collector;
    /// [`Trace::for_job`] separates them.
    pub job: u32,
    /// Sender rank.
    pub src: u16,
    /// Receiver set as a bitmask (single bit for unicasts). `u128` so
    /// fabrics can address worlds of up to 128 ranks.
    pub dsts: u128,
    /// Total bytes on the wire (payload + protocol overhead).
    pub bytes: u64,
    /// The fixed protocol-overhead portion of `bytes` (coded-packet
    /// headers). When a scaled run is projected to a larger input, only
    /// `bytes - overhead` scales — headers are per-packet constants.
    pub overhead: u64,
    /// How many separate egress transmissions this payload made at the
    /// sender: 1 for unicasts and native multicasts, the fanout for
    /// serial-unicast / fanout multicast emulation, and 0 for *logical*
    /// multicast records whose constituent hops are traced separately as
    /// [`EventKind::Internal`] events (the legacy tree-broadcast path).
    pub wire_copies: u16,
    /// Transfer kind.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Number of receivers.
    pub fn fanout(&self) -> u32 {
        self.dsts.count_ones()
    }
}

/// A completed trace: interned stage names plus events in record order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Stage names, indexed by [`TraceEvent::stage`].
    pub stages: Vec<String>,
    /// All recorded events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// The stage index for `name`, if any events used it.
    pub fn stage_index(&self, name: &str) -> Option<u16> {
        self.stages.iter().position(|s| s == name).map(|i| i as u16)
    }

    /// Iterates events belonging to the named stage.
    pub fn stage_events<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a TraceEvent> {
        let idx = self.stage_index(name);
        self.events.iter().filter(move |e| Some(e.stage) == idx)
    }

    /// Total payload bytes sent in the named stage, counting a multicast
    /// once (the paper's communication-load convention: a coded packet costs
    /// its length, however many nodes hear it).
    pub fn stage_bytes(&self, name: &str) -> u64 {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total bytes if every multicast were replaced by per-receiver
    /// unicasts — the uncoded-equivalent volume.
    pub fn stage_bytes_unicast_equivalent(&self, name: &str) -> u64 {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.bytes * e.fanout() as u64)
            .sum()
    }

    /// Count of non-internal events in the named stage.
    pub fn stage_transfer_count(&self, name: &str) -> usize {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .count()
    }

    /// Data-plane egress transmissions in the named stage: the sum of
    /// [`TraceEvent::wire_copies`] over non-internal events. A serial or
    /// fanout shuffle sends `fanout` frames per multicast group turn; a
    /// native multicast sends one — this is the per-fabric send count the
    /// equivalence tests assert on.
    pub fn stage_wire_sends(&self, name: &str) -> u64 {
        self.stage_events(name)
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.wire_copies as u64)
            .sum()
    }

    /// Total non-internal bytes across all stages.
    pub fn total_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind != EventKind::Internal)
            .map(|e| e.bytes)
            .sum()
    }

    /// The trace restricted to one job's transfers (stage table shared).
    /// Event order — including [`TraceEvent::seq`] gaps where other jobs'
    /// transfers interleaved — is preserved.
    pub fn for_job(&self, job: u32) -> Trace {
        Trace {
            stages: self.stages.clone(),
            events: self
                .events
                .iter()
                .filter(|e| e.job == job)
                .copied()
                .collect(),
        }
    }

    /// Distinct job ids present, ascending.
    pub fn jobs(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.events.iter().map(|e| e.job).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[derive(Default)]
struct CollectorInner {
    stage_index: HashMap<String, u16>,
    stages: Vec<String>,
    events: Vec<TraceEvent>,
    seq: u64,
}

/// Thread-safe trace accumulator shared by all communicators of a fabric.
pub struct TraceCollector {
    enabled: bool,
    inner: Mutex<CollectorInner>,
}

impl TraceCollector {
    /// Creates a collector; a disabled collector records nothing (zero
    /// overhead beyond an atomic check).
    pub fn new(enabled: bool) -> Self {
        TraceCollector {
            enabled,
            inner: Mutex::new(CollectorInner::default()),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Interns a stage name, returning its index.
    ///
    /// Disabled collectors return 0 without touching the lock or
    /// allocating — stage labels are meaningless when nothing records, and
    /// the engine calls this once per stage per rank on the hot path
    /// (`tests/alloc_free.rs` pins the disabled path at zero allocations).
    pub fn intern(&self, name: &str) -> u16 {
        if !self.enabled {
            return 0;
        }
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.stage_index.get(name) {
            return idx;
        }
        let idx = inner.stages.len() as u16;
        inner.stages.push(name.to_string());
        inner.stage_index.insert(name.to_string(), idx);
        idx
    }

    /// Records one event with one egress transmission (no-op when disabled).
    pub fn record(&self, stage: u16, src: usize, dsts: u128, bytes: u64, kind: EventKind) {
        self.record_transfer(stage, src, dsts, bytes, 0, 1, kind);
    }

    /// Records one single-transmission event with an explicit
    /// protocol-overhead byte count.
    pub fn record_with_overhead(
        &self,
        stage: u16,
        src: usize,
        dsts: u128,
        bytes: u64,
        overhead: u64,
        kind: EventKind,
    ) {
        self.record_transfer(stage, src, dsts, bytes, overhead, 1, kind);
    }

    /// Records one event with an explicit egress-transmission count (see
    /// [`TraceEvent::wire_copies`]), attributed to job 0.
    #[allow(clippy::too_many_arguments)]
    pub fn record_transfer(
        &self,
        stage: u16,
        src: usize,
        dsts: u128,
        bytes: u64,
        overhead: u64,
        wire_copies: u16,
        kind: EventKind,
    ) {
        self.record_transfer_for(0, stage, src, dsts, bytes, overhead, wire_copies, kind);
    }

    /// Records one event attributed to `job` — the variant communicators on
    /// a shared multi-job fabric use so traces stay separable per job.
    // One flat call per recorded field keeps the hot recording path free of
    // intermediate structs; the argument list mirrors `TraceEvent` exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn record_transfer_for(
        &self,
        job: u32,
        stage: u16,
        src: usize,
        dsts: u128,
        bytes: u64,
        overhead: u64,
        wire_copies: u16,
        kind: EventKind,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(overhead <= bytes, "overhead cannot exceed total bytes");
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push(TraceEvent {
            seq,
            stage,
            job,
            src: src as u16,
            dsts,
            bytes,
            overhead,
            wire_copies,
            kind,
        });
    }

    /// Takes a snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock();
        Trace {
            stages: inner.stages.clone(),
            events: inner.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let c = TraceCollector::new(true);
        let a = c.intern("Map");
        let b = c.intern("Shuffle");
        assert_ne!(a, b);
        assert_eq!(c.intern("Map"), a);
    }

    #[test]
    fn record_and_snapshot() {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        c.record(s, 0, 0b0010, 100, EventKind::AppUnicast);
        c.record(s, 1, 0b1101, 40, EventKind::Multicast);
        let t = c.snapshot();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].seq, 0);
        assert_eq!(t.events[1].seq, 1);
        assert_eq!(t.events[1].fanout(), 3);
        assert_eq!(t.stage_bytes("Shuffle"), 140);
        assert_eq!(t.stage_bytes_unicast_equivalent("Shuffle"), 100 + 120);
        assert_eq!(t.stage_transfer_count("Shuffle"), 2);
    }

    #[test]
    fn internal_events_excluded_from_byte_counts() {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        c.record(s, 0, 0b10, 1000, EventKind::Internal);
        c.record(s, 0, 0b10, 7, EventKind::AppUnicast);
        let t = c.snapshot();
        assert_eq!(t.stage_bytes("Shuffle"), 7);
        assert_eq!(t.total_bytes(), 7);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = TraceCollector::new(false);
        let s = c.intern("Map");
        c.record(s, 0, 1, 10, EventKind::AppUnicast);
        assert!(c.snapshot().events.is_empty());
    }

    #[test]
    fn disabled_intern_returns_zero_without_interning() {
        let c = TraceCollector::new(false);
        assert_eq!(c.intern("Map"), 0);
        assert_eq!(c.intern("Shuffle"), 0);
        // No stage table was built behind the scenes.
        assert!(c.snapshot().stages.is_empty());
    }

    #[test]
    fn wire_sends_count_per_fabric_copies() {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        // Serial-unicast emulation: 3 copies; native multicast: 1.
        c.record_transfer(s, 0, 0b1110, 50, 0, 3, EventKind::Multicast);
        c.record_transfer(s, 1, 0b1101, 50, 0, 1, EventKind::Multicast);
        c.record(s, 2, 0b0001, 9, EventKind::AppUnicast);
        // Internal control traffic never counts.
        c.record(s, 0, 0b0010, 1, EventKind::Internal);
        let t = c.snapshot();
        assert_eq!(t.stage_wire_sends("Shuffle"), 3 + 1 + 1);
    }

    #[test]
    fn unknown_stage_queries_are_empty() {
        let t = Trace::default();
        assert_eq!(t.stage_bytes("Nope"), 0);
        assert_eq!(t.stage_events("Nope").count(), 0);
        assert_eq!(t.stage_index("Nope"), None);
    }

    #[test]
    fn job_filter_separates_interleaved_jobs() {
        let c = TraceCollector::new(true);
        let s = c.intern("Shuffle");
        c.record_transfer_for(1, s, 0, 0b10, 100, 0, 1, EventKind::AppUnicast);
        c.record_transfer_for(2, s, 1, 0b01, 40, 0, 1, EventKind::AppUnicast);
        c.record_transfer_for(1, s, 1, 0b01, 60, 0, 1, EventKind::AppUnicast);
        let t = c.snapshot();
        assert_eq!(t.jobs(), vec![1, 2]);
        let j1 = t.for_job(1);
        assert_eq!(j1.events.len(), 2);
        assert_eq!(j1.stage_bytes("Shuffle"), 160);
        // Global sequence numbers survive the filter (order evidence).
        assert_eq!(j1.events[0].seq, 0);
        assert_eq!(j1.events[1].seq, 2);
        assert_eq!(t.for_job(2).stage_bytes("Shuffle"), 40);
        assert!(t.for_job(9).events.is_empty());
    }
}
