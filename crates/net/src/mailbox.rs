//! Tag-matched mailboxes.
//!
//! Each endpoint owns one [`Mailbox`]. Incoming messages are queued by
//! `(source, tag)`; `recv(src, tag)` blocks until a matching message is
//! available, preserving FIFO order per `(source, tag)` pair — the same
//! matching semantics as MPI's `MPI_Recv` with an explicit source and tag.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::mailbox::Mailbox;
//! use cts_net::message::{Message, Tag};
//!
//! let mb = Mailbox::new(0);
//! mb.deliver(Message { src: 2, tag: Tag::app(7), payload: Bytes::from_static(b"hi") });
//! // Matching is on exact (source, tag); other keys stay queued.
//! assert_eq!(mb.try_recv(1, Tag::app(7)), None);
//! assert_eq!(mb.recv(2, Tag::app(7)).unwrap(), "hi");
//! ```

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::error::{NetError, Result};
use crate::message::{Message, Tag};

#[derive(Default)]
struct Inner {
    queues: HashMap<(usize, u32), VecDeque<Bytes>>,
    closed: bool,
    /// Per-source disconnect bits (bit `s` set = no further messages will
    /// ever arrive from source `s`; world sizes are ≤ 128).
    gone: u128,
    /// Per-source death bits set by the health layer: like `gone`, but the
    /// receiver learns *which* peer failed via `PeerDead` instead of the
    /// anonymous `Disconnected`.
    dead: u128,
}

/// A blocking, tag-matched message queue for one endpoint.
pub struct Mailbox {
    rank: usize,
    inner: Mutex<Inner>,
    available: Condvar,
}

impl Mailbox {
    /// Creates the mailbox for endpoint `rank`.
    pub fn new(rank: usize) -> Self {
        Mailbox {
            rank,
            inner: Mutex::new(Inner::default()),
            available: Condvar::new(),
        }
    }

    /// The owner's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Enqueues a message (called by the transport's delivery path).
    ///
    /// Delivery to a closed mailbox is silently dropped — the owner has
    /// already stopped receiving.
    pub fn deliver(&self, msg: Message) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner
            .queues
            .entry((msg.src, msg.tag.0))
            .or_default()
            .push_back(msg.payload);
        drop(inner);
        self.available.notify_all();
    }

    /// Blocks until a message from `(src, tag)` is available and returns it.
    ///
    /// # Errors
    /// `Disconnected` if the mailbox is closed while waiting (or already
    /// closed and empty for this key).
    pub fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(q) = inner.queues.get_mut(&(src, tag.0)) {
                if let Some(payload) = q.pop_front() {
                    return Ok(payload);
                }
            }
            if src < 128 && inner.dead & (1u128 << src) != 0 {
                return Err(NetError::PeerDead {
                    rank: self.rank,
                    peer: src,
                });
            }
            if inner.closed || (src < 128 && inner.gone & (1u128 << src) != 0) {
                return Err(NetError::Disconnected { rank: self.rank });
            }
            self.available.wait(&mut inner);
        }
    }

    /// Like [`recv`](Self::recv) with a deadline.
    ///
    /// # Errors
    /// `Timeout` if the deadline passes, `Disconnected` if closed.
    pub fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(q) = inner.queues.get_mut(&(src, tag.0)) {
                if let Some(payload) = q.pop_front() {
                    return Ok(payload);
                }
            }
            if src < 128 && inner.dead & (1u128 << src) != 0 {
                return Err(NetError::PeerDead {
                    rank: self.rank,
                    peer: src,
                });
            }
            if inner.closed || (src < 128 && inner.gone & (1u128 << src) != 0) {
                return Err(NetError::Disconnected { rank: self.rank });
            }
            if self.available.wait_until(&mut inner, deadline).timed_out() {
                return Err(NetError::Timeout { src, tag: tag.0 });
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, src: usize, tag: Tag) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        inner
            .queues
            .get_mut(&(src, tag.0))
            .and_then(|q| q.pop_front())
    }

    /// Non-blocking receive that also reports terminal states. A queued
    /// message always drains first; with nothing queued, a source the
    /// health layer declared dead surfaces as `PeerDead` and a closed
    /// mailbox (or per-source disconnect) as `Disconnected` — so polling
    /// loops fail fast on teardown instead of spinning `Ok(None)` until
    /// an idle deadline expires.
    pub fn try_recv_checked(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        let mut inner = self.inner.lock();
        if let Some(payload) = inner
            .queues
            .get_mut(&(src, tag.0))
            .and_then(|q| q.pop_front())
        {
            return Ok(Some(payload));
        }
        if src < 128 && inner.dead & (1u128 << src) != 0 {
            return Err(NetError::PeerDead {
                rank: self.rank,
                peer: src,
            });
        }
        if inner.closed || (src < 128 && inner.gone & (1u128 << src) != 0) {
            return Err(NetError::Disconnected { rank: self.rank });
        }
        Ok(None)
    }

    /// Total queued messages (diagnostics).
    pub fn queued(&self) -> usize {
        let inner = self.inner.lock();
        inner.queues.values().map(|q| q.len()).sum()
    }

    /// Closes the mailbox: queued messages remain readable via
    /// [`try_recv`](Self::try_recv), but blocked and future `recv`s fail
    /// with `Disconnected`.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }

    /// Marks one source as disconnected: already-queued messages from it
    /// remain receivable, but once its queues drain, blocked and future
    /// `recv`s matching that source fail with `Disconnected`. Other sources
    /// are unaffected — the lazy TCP mesh calls this when a single peer's
    /// link EOFs, where closing the whole mailbox would wrongly unblock
    /// receives from still-healthy peers.
    pub fn disconnect_src(&self, src: usize) {
        if src >= 128 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.gone |= 1u128 << src;
        drop(inner);
        self.available.notify_all();
    }

    /// Marks one source as *dead* (declared by the health layer): queued
    /// messages from it still drain, then blocked and future `recv`s
    /// matching that source fail with the typed `PeerDead` error — the
    /// receiver learns exactly which peer will never speak again instead
    /// of blocking until a generic timeout.
    pub fn mark_dead(&self, src: usize) {
        if src >= 128 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.dead |= 1u128 << src;
        drop(inner);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn msg(src: usize, tag: Tag, bytes: &'static [u8]) -> Message {
        Message {
            src,
            tag,
            payload: Bytes::from_static(bytes),
        }
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let mb = Mailbox::new(0);
        mb.deliver(msg(1, Tag::app(0), b"first"));
        mb.deliver(msg(1, Tag::app(0), b"second"));
        assert_eq!(mb.recv(1, Tag::app(0)).unwrap(), "first");
        assert_eq!(mb.recv(1, Tag::app(0)).unwrap(), "second");
    }

    #[test]
    fn matching_is_keyed_on_src_and_tag() {
        let mb = Mailbox::new(0);
        mb.deliver(msg(2, Tag::app(7), b"from-2"));
        mb.deliver(msg(1, Tag::app(7), b"from-1"));
        mb.deliver(msg(1, Tag::app(9), b"tag-9"));
        // Out-of-order matching works regardless of arrival order.
        assert_eq!(mb.recv(1, Tag::app(9)).unwrap(), "tag-9");
        assert_eq!(mb.recv(1, Tag::app(7)).unwrap(), "from-1");
        assert_eq!(mb.recv(2, Tag::app(7)).unwrap(), "from-2");
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new(3));
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(0, Tag::app(1)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(msg(0, Tag::app(1), b"late"));
        assert_eq!(handle.join().unwrap(), "late");
    }

    #[test]
    fn recv_timeout_expires() {
        let mb = Mailbox::new(0);
        let err = mb
            .recv_timeout(1, Tag::app(0), Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { src: 1, .. }));
    }

    #[test]
    fn recv_timeout_succeeds_when_present() {
        let mb = Mailbox::new(0);
        mb.deliver(msg(1, Tag::app(0), b"x"));
        let got = mb
            .recv_timeout(1, Tag::app(0), Duration::from_millis(10))
            .unwrap();
        assert_eq!(got, "x");
    }

    #[test]
    fn close_wakes_blocked_receivers() {
        let mb = Arc::new(Mailbox::new(5));
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(0, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        assert!(matches!(
            handle.join().unwrap(),
            Err(NetError::Disconnected { rank: 5 })
        ));
    }

    #[test]
    fn disconnect_src_is_per_source() {
        let mb = Arc::new(Mailbox::new(1));
        mb.deliver(msg(0, Tag::app(0), b"queued"));
        mb.disconnect_src(0);
        // Queued messages from the gone source still drain …
        assert_eq!(mb.recv(0, Tag::app(0)).unwrap(), "queued");
        // … then the source reads as disconnected.
        assert!(matches!(
            mb.recv(0, Tag::app(0)),
            Err(NetError::Disconnected { rank: 1 })
        ));
        // Other sources are unaffected (blocked recv wakes on delivery).
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(2, Tag::app(0)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(msg(2, Tag::app(0), b"alive"));
        assert_eq!(handle.join().unwrap(), "alive");
    }

    #[test]
    fn disconnect_src_wakes_blocked_receiver() {
        let mb = Arc::new(Mailbox::new(4));
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(0, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        mb.disconnect_src(0);
        assert!(matches!(
            handle.join().unwrap(),
            Err(NetError::Disconnected { rank: 4 })
        ));
    }

    #[test]
    fn mark_dead_surfaces_typed_peer_death_after_drain() {
        let mb = Arc::new(Mailbox::new(2));
        mb.deliver(msg(0, Tag::app(0), b"queued"));
        mb.mark_dead(0);
        // Already-queued traffic from the dead peer still drains …
        assert_eq!(mb.recv(0, Tag::app(0)).unwrap(), "queued");
        // … then the death is typed, naming the peer.
        assert!(matches!(
            mb.recv(0, Tag::app(0)),
            Err(NetError::PeerDead { rank: 2, peer: 0 })
        ));
        assert!(matches!(
            mb.recv_timeout(0, Tag::app(0), Duration::from_millis(5)),
            Err(NetError::PeerDead { rank: 2, peer: 0 })
        ));
        // Other sources are unaffected.
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(1, Tag::app(0)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(msg(1, Tag::app(0), b"alive"));
        assert_eq!(handle.join().unwrap(), "alive");
    }

    #[test]
    fn mark_dead_wakes_blocked_receiver() {
        let mb = Arc::new(Mailbox::new(6));
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(3, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        mb.mark_dead(3);
        assert!(matches!(
            handle.join().unwrap(),
            Err(NetError::PeerDead { rank: 6, peer: 3 })
        ));
    }

    #[test]
    fn close_drops_future_deliveries() {
        let mb = Mailbox::new(0);
        mb.close();
        mb.deliver(msg(1, Tag::app(0), b"ghost"));
        assert_eq!(mb.try_recv(1, Tag::app(0)), None);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let mb = Mailbox::new(0);
        assert_eq!(mb.try_recv(1, Tag::app(0)), None);
        mb.deliver(msg(1, Tag::app(0), b"now"));
        assert_eq!(mb.try_recv(1, Tag::app(0)).unwrap(), "now");
        assert_eq!(mb.queued(), 0);
    }

    #[test]
    fn checked_try_recv_drains_then_reports_terminal_states() {
        let mb = Mailbox::new(3);
        assert_eq!(mb.try_recv_checked(1, Tag::app(0)).unwrap(), None);
        // Queued traffic drains even after the terminal mark …
        mb.deliver(msg(1, Tag::app(0), b"last-words"));
        mb.mark_dead(1);
        assert_eq!(
            mb.try_recv_checked(1, Tag::app(0)).unwrap().unwrap(),
            "last-words"
        );
        // … then the death is typed, while other sources stay pollable.
        assert!(matches!(
            mb.try_recv_checked(1, Tag::app(0)),
            Err(NetError::PeerDead { rank: 3, peer: 1 })
        ));
        assert_eq!(mb.try_recv_checked(2, Tag::app(0)).unwrap(), None);
        // Closure fails every source fast — the poll loop cannot spin.
        mb.close();
        assert!(matches!(
            mb.try_recv_checked(2, Tag::app(0)),
            Err(NetError::Disconnected { rank: 3 })
        ));
    }

    #[test]
    fn queued_counts_all_keys() {
        let mb = Mailbox::new(0);
        mb.deliver(msg(1, Tag::app(0), b"a"));
        mb.deliver(msg(2, Tag::app(1), b"b"));
        mb.deliver(msg(2, Tag::app(1), b"c"));
        assert_eq!(mb.queued(), 3);
    }

    #[test]
    fn many_concurrent_receivers() {
        let mb = Arc::new(Mailbox::new(0));
        let mut handles = Vec::new();
        for src in 0..8usize {
            let mb = Arc::clone(&mb);
            handles.push(std::thread::spawn(move || {
                mb.recv(src, Tag::app(src as u32)).unwrap()
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        for src in (0..8usize).rev() {
            mb.deliver(Message {
                src,
                tag: Tag::app(src as u32),
                payload: Bytes::copy_from_slice(&[src as u8]),
            });
        }
        for (src, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap()[0] as usize, src);
        }
    }
}
