//! The point-to-point transport abstraction.

use std::time::Duration;

use bytes::Bytes;

use crate::error::Result;
use crate::message::Tag;

/// A point-to-point message transport for one endpoint of a fabric.
///
/// Implementations: [`local::LocalEndpoint`](crate::local::LocalEndpoint)
/// (in-process, channel-backed), [`tcp::TcpEndpoint`](crate::tcp::TcpEndpoint)
/// (real sockets), and [`fault::FaultyTransport`](crate::fault::FaultyTransport)
/// (failure injection for tests).
///
/// Semantics mirror MPI's point-to-point layer:
/// * `send` is asynchronous and never blocks on the receiver (buffered);
/// * `recv(src, tag)` matches on exact source *and* tag;
/// * messages between one `(src, dst, tag)` triple arrive in send order.
pub trait Transport: Send + Sync {
    /// This endpoint's rank in `0..world_size`.
    fn rank(&self) -> usize;

    /// Number of endpoints in the fabric.
    fn world_size(&self) -> usize;

    /// Sends `payload` to `dst` under `tag`.
    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()>;

    /// Blocks until a message from `(src, tag)` arrives.
    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes>;

    /// Blocking receive with a deadline.
    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes>;

    /// Non-blocking receive.
    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>>;

    /// Tears down this endpoint: wakes blocked receivers with
    /// `Disconnected`. Used for orderly shutdown and for aborting a fabric
    /// when a peer panics.
    fn shutdown(&self);
}
