//! The transport abstraction: point-to-point sends plus native multicast.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::local::LocalFabric;
//! use cts_net::message::Tag;
//! use cts_net::transport::Transport;
//!
//! let fabric = LocalFabric::new(3);
//! let sender = fabric.endpoint(0);
//! // One native multicast serves both receivers from a single buffer.
//! sender
//!     .multicast(&[1, 2], Tag::app(0), Bytes::from_static(b"pkt"))
//!     .unwrap();
//! assert_eq!(fabric.endpoint(1).recv(0, Tag::app(0)).unwrap(), "pkt");
//! assert_eq!(fabric.endpoint(2).recv(0, Tag::app(0)).unwrap(), "pkt");
//! ```

use std::time::Duration;

use bytes::Bytes;

use crate::error::Result;
use crate::message::Tag;

/// A message transport for one endpoint of a fabric.
///
/// Implementations: [`local::LocalEndpoint`](crate::local::LocalEndpoint)
/// (in-process, channel-backed), [`tcp::TcpEndpoint`](crate::tcp::TcpEndpoint)
/// (real sockets), and [`fault::FaultyTransport`](crate::fault::FaultyTransport)
/// (failure injection for tests).
///
/// Semantics mirror MPI's point-to-point layer:
/// * `send` is asynchronous and never blocks on the receiver (buffered);
/// * `recv(src, tag)` matches on exact source *and* tag;
/// * messages between one `(src, dst, tag)` triple arrive in send order;
/// * `multicast` delivers one payload to a destination set, overlapping the
///   copies where the fabric can (shared buffer in memory, interleaved
///   non-blocking writes on TCP).
pub trait Transport: Send + Sync {
    /// This endpoint's rank in `0..world_size`.
    fn rank(&self) -> usize;

    /// Number of endpoints in the fabric.
    fn world_size(&self) -> usize;

    /// Sends `payload` to `dst` under `tag`.
    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()>;

    /// Delivers `payload` to every rank in `dsts` under `tag` — the
    /// one-to-many primitive of the coded shuffle.
    ///
    /// `dsts` is a destination *set*: duplicate entries receive a single
    /// copy. The default implementation is serial-unicast emulation (one
    /// `send` per distinct destination, back to back); fabrics with a
    /// genuine concurrent path override it:
    /// [`LocalEndpoint`](crate::local::LocalEndpoint) delivers one shared
    /// buffer, [`TcpEndpoint`](crate::tcp::TcpEndpoint) interleaves
    /// non-blocking writes across the destination sockets.
    fn multicast(&self, dsts: &[usize], tag: Tag, payload: Bytes) -> Result<()> {
        let mut seen = vec![false; self.world_size()];
        for &dst in dsts {
            if let Some(flag) = seen.get_mut(dst) {
                if std::mem::replace(flag, true) {
                    continue;
                }
            }
            // Out-of-range destinations fall through for `send` to reject.
            self.send(dst, tag, payload.clone())?;
        }
        Ok(())
    }

    /// Blocks until a message from `(src, tag)` arrives.
    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes>;

    /// Blocking receive with a deadline.
    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes>;

    /// Non-blocking receive.
    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>>;

    /// Tears down this endpoint: wakes blocked receivers with
    /// `Disconnected`. Used for orderly shutdown and for aborting a fabric
    /// when a peer panics.
    fn shutdown(&self);

    /// Records that `peer` has been declared dead by the health layer:
    /// receives matching that source fail with the typed
    /// [`PeerDead`](crate::error::NetError::PeerDead) once its queued
    /// traffic drains, instead of blocking until a generic timeout.
    /// Default: no-op, for transports without a per-source wait path.
    fn mark_peer_dead(&self, _peer: usize) {}
}
