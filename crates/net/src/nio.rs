//! Non-blocking I/O building blocks for the async TCP fabric.
//!
//! `std` offers no `epoll` wrapper and this tree takes no external
//! dependencies, so readiness is driven cooperatively: sockets are switched
//! to non-blocking mode and polled by [`FrameReader`] (incremental framed
//! reads, used by the per-endpoint reactor thread) and [`FrameWrite`]
//! (incremental framed writes). [`drive_writes`] is the lightweight
//! executor that interleaves several `FrameWrite`s round-robin — that
//! chunked interleaving is what makes the fanout fabric's copies *overlap*
//! instead of completing one socket at a time. [`Backoff`] keeps the polling
//! loops from burning a core while idle: a short spin-with-yield phase, then
//! exponentially longer parks capped at one millisecond.
//!
//! Frame format (shared with [`tcp`](crate::tcp)):
//! `[tag: u32 LE][len: u32 LE][payload]`.
//!
//! ```
//! use std::io::Write;
//! use cts_net::nio::{Backoff, FrameReader, ReadStatus};
//!
//! // FrameReader parses frames from any byte stream, however fragmented.
//! let mut frame = Vec::new();
//! frame.extend_from_slice(&7u32.to_le_bytes()); // tag
//! frame.extend_from_slice(&5u32.to_le_bytes()); // len
//! frame.extend_from_slice(b"hello");
//! let mut reader = FrameReader::new();
//! let mut out = Vec::new();
//! // Feed the frame in two arbitrary fragments.
//! assert!(matches!(reader.poll(&mut &frame[..6], &mut out), ReadStatus::Progress));
//! assert!(matches!(reader.poll(&mut &frame[6..], &mut out), ReadStatus::Progress));
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].0, 7);
//! assert_eq!(&out[0].1[..], b"hello");
//! let mut backoff = Backoff::new();
//! backoff.wait(); // first waits are plain yields
//! ```

use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

use bytes::Bytes;

/// Upper bound on a single frame's payload (1 GiB) — a sanity check against
/// corrupted length headers.
pub const MAX_FRAME: u32 = 1 << 30;

/// How many bytes one [`FrameWrite::poll`] pushes at most before yielding
/// the turn to the next destination — the interleaving grain of the fanout
/// fabric.
pub const WRITE_CHUNK: usize = 64 * 1024;

const READ_CHUNK: usize = 64 * 1024;

/// Completion state of an incremental operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// The operation finished.
    Done,
    /// The operation made no (or partial) progress and should be polled
    /// again.
    Pending,
}

/// Outcome of one [`FrameReader::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadStatus {
    /// Bytes were consumed (complete frames, if any, were appended).
    Progress,
    /// The stream had nothing to read right now.
    WouldBlock,
    /// EOF, a fatal I/O error, or a corrupt frame header: the peer is gone.
    Closed,
}

/// Adaptive wait for cooperative polling loops: yields first, then parks
/// with exponential backoff up to 1 ms. Call [`Backoff::reset`] whenever
/// progress happens.
#[derive(Debug)]
pub struct Backoff {
    idle_rounds: u32,
    max_park_us: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

impl Backoff {
    /// A fresh backoff in the spinning phase, parking at most 1 ms — the
    /// right cap for write loops, where the peer is actively draining.
    pub fn new() -> Self {
        Backoff {
            idle_rounds: 0,
            max_park_us: 1000,
        }
    }

    /// A backoff that keeps escalating to `max_park_us` after sustained
    /// idleness. Reactor threads use a higher cap (e.g. 5 ms) so K idle
    /// endpoints don't wake `K−1` read syscalls every millisecond through
    /// long compute stages.
    pub fn with_max_park_us(max_park_us: u64) -> Self {
        Backoff {
            idle_rounds: 0,
            max_park_us: max_park_us.max(10),
        }
    }

    /// Re-enters the spinning phase (progress was made).
    pub fn reset(&mut self) {
        self.idle_rounds = 0;
    }

    /// Waits an amount appropriate to how long the loop has been idle.
    pub fn wait(&mut self) {
        self.idle_rounds = self.idle_rounds.saturating_add(1);
        if self.idle_rounds <= 16 {
            std::thread::yield_now();
        } else {
            // 10 µs, 20 µs, … doubling up to the configured cap.
            let exp = u32::min(self.idle_rounds - 16, 16);
            let us = 10u64.saturating_mul(1 << exp);
            std::thread::park_timeout(Duration::from_micros(us.min(self.max_park_us)));
        }
    }
}

/// An incremental framed write: header then payload, resumable across
/// `WouldBlock`s, at most [`WRITE_CHUNK`] bytes per poll.
pub struct FrameWrite<'a, W: Write> {
    stream: W,
    header: [u8; 8],
    payload: &'a [u8],
    /// Progress through `header ++ payload`.
    pos: usize,
}

impl<'a, W: Write> FrameWrite<'a, W> {
    /// Prepares a frame of `payload` under `tag` for `stream`.
    pub fn new(stream: W, tag: u32, payload: &'a [u8]) -> Self {
        let mut header = [0u8; 8];
        header[0..4].copy_from_slice(&tag.to_le_bytes());
        header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        FrameWrite {
            stream,
            header,
            payload,
            pos: 0,
        }
    }

    /// Pushes up to [`WRITE_CHUNK`] more bytes. Returns `Pending` on partial
    /// progress or `WouldBlock`; I/O errors other than `WouldBlock` and
    /// `Interrupted` propagate.
    pub fn poll(&mut self) -> std::io::Result<Progress> {
        let total = self.header.len() + self.payload.len();
        let mut budget = WRITE_CHUNK;
        while self.pos < total && budget > 0 {
            let chunk: &[u8] = if self.pos < self.header.len() {
                &self.header[self.pos..]
            } else {
                let off = self.pos - self.header.len();
                let end = (off + budget).min(self.payload.len());
                &self.payload[off..end]
            };
            match self.stream.write(chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket wrote zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(Progress::Pending),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.pos >= total {
            Ok(Progress::Done)
        } else {
            Ok(Progress::Pending)
        }
    }

    /// Whether the whole frame has been written.
    pub fn is_done(&self) -> bool {
        self.pos >= self.header.len() + self.payload.len()
    }
}

/// Drives several [`FrameWrite`]s to completion round-robin — the
/// lightweight executor behind the fanout/multicast TCP send path. Chunks
/// interleave across destinations so all receivers drain concurrently
/// instead of strictly one after another.
///
/// A destination that errors is abandoned, but the *other* frames are
/// still driven to completion before the first error is returned — healthy
/// streams never end up with a truncated frame that would desynchronize
/// their framing.
pub fn drive_writes<W: Write>(ops: &mut [FrameWrite<'_, W>]) -> std::io::Result<()> {
    let mut backoff = Backoff::new();
    let mut first_err: Option<std::io::Error> = None;
    let mut failed = vec![false; ops.len()];
    loop {
        let mut all_done = true;
        let mut progressed = false;
        for (i, op) in ops.iter_mut().enumerate() {
            if failed[i] || op.is_done() {
                continue;
            }
            let before = op.pos;
            match op.poll() {
                Ok(Progress::Done) => progressed = true,
                Ok(Progress::Pending) => {
                    all_done = false;
                    progressed |= op.pos > before;
                }
                Err(e) => {
                    failed[i] = true;
                    first_err.get_or_insert(e);
                }
            }
        }
        if all_done {
            return match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            };
        }
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }
}

/// Writes one whole frame to a (possibly non-blocking) stream, waiting out
/// `WouldBlock`s with [`Backoff`].
pub fn write_frame<W: Write>(stream: W, tag: u32, payload: &[u8]) -> std::io::Result<()> {
    let mut op = FrameWrite::new(stream, tag, payload);
    let mut backoff = Backoff::new();
    loop {
        let before = op.pos;
        match op.poll()? {
            Progress::Done => return Ok(()),
            Progress::Pending => {
                if op.pos > before {
                    backoff.reset();
                } else {
                    backoff.wait();
                }
            }
        }
    }
}

/// An incremental frame parser for one peer stream: buffers fragments
/// across polls and emits complete `(tag, payload)` frames.
pub struct FrameReader {
    buf: Vec<u8>,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// An empty parser.
    pub fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    /// Reads once from `stream` and appends every completed frame to `out`.
    pub fn poll<R: Read>(&mut self, mut stream: R, out: &mut Vec<(u32, Bytes)>) -> ReadStatus {
        let mut scratch = [0u8; READ_CHUNK];
        let n = loop {
            match stream.read(&mut scratch) {
                Ok(0) => return ReadStatus::Closed,
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadStatus::WouldBlock,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ReadStatus::Closed,
            }
        };
        self.buf.extend_from_slice(&scratch[..n]);
        let mut consumed = 0usize;
        while self.buf.len() - consumed >= 8 {
            let h = &self.buf[consumed..consumed + 8];
            let tag = u32::from_le_bytes(h[0..4].try_into().expect("4 bytes"));
            let len = u32::from_le_bytes(h[4..8].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME as usize {
                return ReadStatus::Closed; // corrupted header; treat as disconnect
            }
            if self.buf.len() - consumed - 8 < len {
                break; // frame not complete yet
            }
            let start = consumed + 8;
            out.push((tag, Bytes::copy_from_slice(&self.buf[start..start + len])));
            consumed = start + len;
        }
        if consumed > 0 {
            self.buf.drain(..consumed);
        }
        ReadStatus::Progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_reader() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 42, b"payload").unwrap();
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        assert_eq!(reader.poll(&wire[..], &mut out), ReadStatus::Progress);
        assert_eq!(out, vec![(42u32, Bytes::from_static(b"payload"))]);
    }

    #[test]
    fn reader_handles_fragmented_and_batched_frames() {
        let mut wire = Vec::new();
        for i in 0..5u32 {
            write_frame(&mut wire, i, &vec![i as u8; 100 * (i as usize + 1)]).unwrap();
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        // Feed one byte at a time: every frame must still come out intact.
        for b in &wire {
            reader.poll(std::slice::from_ref(b), &mut out);
        }
        assert_eq!(out.len(), 5);
        for (i, (tag, payload)) in out.iter().enumerate() {
            assert_eq!(*tag, i as u32);
            assert_eq!(payload.len(), 100 * (i + 1));
            assert!(payload.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn oversized_header_is_a_disconnect() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        assert_eq!(reader.poll(&wire[..], &mut out), ReadStatus::Closed);
        assert!(out.is_empty());
    }

    #[test]
    fn drive_writes_interleaves_to_completion() {
        // Three in-memory sinks; all frames complete regardless of order.
        let payload = vec![7u8; 200_000];
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut ops: Vec<FrameWrite<'_, &mut Vec<u8>>> = sinks
            .iter_mut()
            .map(|s| FrameWrite::new(s, 9, &payload))
            .collect();
        drive_writes(&mut ops).unwrap();
        drop(ops);
        for sink in &sinks {
            let mut reader = FrameReader::new();
            let mut out = Vec::new();
            let mut cursor = &sink[..];
            while !cursor.is_empty() {
                assert_eq!(reader.poll(&mut cursor, &mut out), ReadStatus::Progress);
            }
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].1.len(), payload.len());
        }
    }

    #[test]
    fn empty_payload_frame_works() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, b"").unwrap();
        assert_eq!(wire.len(), 8);
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        reader.poll(&wire[..], &mut out);
        assert_eq!(out, vec![(3u32, Bytes::new())]);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.wait();
        }
        assert!(b.idle_rounds == 20);
        b.reset();
        assert_eq!(b.idle_rounds, 0);
    }
}
