//! Fault injection for transport-level failure testing.
//!
//! Wraps any [`Transport`] and applies a user rule to every outgoing
//! message: deliver, drop, corrupt, or fail the send. Tests use this to
//! verify that the engines and the packet parser surface transport
//! misbehaviour as errors instead of silently producing wrong output.
//! Multicasts decompose into per-destination sends inside the wrapper, so
//! a rule sees (and can fault) each copy individually.
//!
//! ```
//! use std::sync::Arc;
//! use bytes::Bytes;
//! use cts_net::fault::{FaultAction, FaultyTransport};
//! use cts_net::local::LocalFabric;
//! use cts_net::message::Tag;
//! use cts_net::transport::Transport;
//!
//! let fabric = LocalFabric::new(2);
//! // Drop every first send, deliver the rest.
//! let faulty = FaultyTransport::new(
//!     Arc::new(fabric.endpoint(0)),
//!     Box::new(|_, _, _, idx| if idx == 0 { FaultAction::Drop } else { FaultAction::Deliver }),
//! );
//! faulty.send(1, Tag::app(0), Bytes::from_static(b"lost")).unwrap();
//! faulty.send(1, Tag::app(0), Bytes::from_static(b"kept")).unwrap();
//! assert_eq!(faulty.dropped(), 1);
//! assert_eq!(fabric.endpoint(1).recv(0, Tag::app(0)).unwrap(), "kept");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::error::{NetError, Result};
use crate::message::Tag;
use crate::transport::Transport;

/// Decision returned by a datagram-level fault rule for one outgoing UDP
/// chunk of the [`udp`](crate::udp) fabric. Unlike [`FaultAction`], there
/// is no corrupt/fail variant: a mangled datagram is indistinguishable
/// from a lost one at the reliability layer (length/offset validation
/// rejects it), so `Drop` models the whole class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatagramAction {
    /// Send the datagram normally.
    Deliver,
    /// Silently drop it before it reaches the socket — a lost frame the
    /// NACK layer must recover.
    Drop,
}

/// Rule signature for datagram fault injection:
/// `(sender rank, group mask, message seq, chunk index, per-endpoint
/// datagram index)` → action. Retransmitted chunks pass through the rule
/// again (with fresh datagram indices), so a probabilistic rule exercises
/// repeated-loss recovery too; the sender rank lets a rule black out one
/// node's egress entirely.
pub type DatagramRule = dyn Fn(usize, u128, u32, u16, u64) -> DatagramAction + Send + Sync;

/// A deterministic ~`percent`% datagram-loss rule: drops when a hash of
/// the datagram index (mixed with `seed`) lands under the threshold.
/// Deterministic per `(seed, index)`, so failing runs replay exactly.
pub fn datagram_loss_rule(percent: u32, seed: u64) -> std::sync::Arc<DatagramRule> {
    std::sync::Arc::new(move |_sender, _mask, _seq, _chunk, idx| {
        let h = (idx ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        if h % 100 < percent as u64 {
            DatagramAction::Drop
        } else {
            DatagramAction::Deliver
        }
    })
}

/// A whole-sender blackout: every datagram `victim` sends is dropped —
/// the node is alive (it receives, maps, reduces) but its egress is dead.
/// The harshest straggler: quorum decode must complete without it.
pub fn sender_blackout_rule(victim: usize) -> std::sync::Arc<DatagramRule> {
    std::sync::Arc::new(move |sender, _mask, _seq, _chunk, _idx| {
        if sender == victim {
            DatagramAction::Drop
        } else {
            DatagramAction::Deliver
        }
    })
}

/// Decision returned by a fault rule for one outgoing message.
pub enum FaultAction {
    /// Deliver unchanged.
    Deliver,
    /// Silently drop (receiver never sees it — models a lost frame).
    Drop,
    /// Deliver a corrupted payload instead.
    Corrupt(Bytes),
    /// Deliver, but only after `Duration` — a slow link or straggling
    /// sender. The `send` call itself returns immediately (the delay runs
    /// on a detached thread), modeling a node whose NIC queue drains
    /// slowly rather than one that blocks its own compute.
    Delay(Duration),
    /// Fail the `send` call itself with an error.
    FailSend,
}

/// The rule signature: `(dst, tag, payload, send_index)` → action.
pub type FaultRule = dyn Fn(usize, Tag, &Bytes, u64) -> FaultAction + Send + Sync;

/// A straggler rule: every coded-shuffle multicast this node sends
/// (purpose [`Tag::BCAST`]) is delayed by `delay`; barrier and other
/// control traffic flows normally, so stage synchronization still works —
/// the node is slow at shuffling, not partitioned.
pub fn straggler_delay_rule(delay: Duration) -> Arc<FaultRule> {
    Arc::new(move |_dst, tag: Tag, _payload: &Bytes, _idx| {
        if tag.purpose() == Tag::BCAST {
            FaultAction::Delay(delay)
        } else {
            FaultAction::Deliver
        }
    })
}

/// The `∞×` straggler: every coded-shuffle multicast this node sends is
/// silently dropped — its packets never arrive. Control traffic still
/// flows, so the node participates in barriers and keeps receiving;
/// only quorum decode can finish a shuffle with such a sender.
pub fn straggler_blackhole_rule() -> Arc<FaultRule> {
    Arc::new(move |_dst, tag: Tag, _payload: &Bytes, _idx| {
        if tag.purpose() == Tag::BCAST {
            FaultAction::Drop
        } else {
            FaultAction::Deliver
        }
    })
}

/// Where in a job's lifecycle an injected crash fires. Points map to the
/// coded engine's stage sequence; the engine checks its crash spec at each
/// one and dies there — fail-stop, never Byzantine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// After computing map outputs, before the post-Map synchronization —
    /// the rank's replicated inputs are mapped but nothing was shared.
    MidMap,
    /// After encoding coded packets, before any of them is multicast.
    MidEncode,
    /// During the shuffle, after the rank's first `n` group multicasts —
    /// peers hold a partial view of its traffic.
    AfterSends(u64),
    /// After the shuffle completes, before the rank reduces its partition.
    PreReduce,
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPoint::MidMap => write!(f, "mid-map"),
            CrashPoint::MidEncode => write!(f, "mid-encode"),
            CrashPoint::AfterSends(n) => write!(f, "after-{n}-sends"),
            CrashPoint::PreReduce => write!(f, "pre-reduce"),
        }
    }
}

/// A crash-at-point injection: `rank` dies fail-stop at `point`. The coded
/// engine interprets this spec directly (it knows where stage boundaries
/// are); [`rank_crash_rule`] is the transport-level flavor for tests that
/// only need a node's egress to go silent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank that dies.
    pub rank: usize,
    /// Where it dies.
    pub point: CrashPoint,
}

impl CrashSpec {
    /// True if this spec kills `rank` at `point`.
    pub fn fires(&self, rank: usize, point: CrashPoint) -> bool {
        self.rank == rank && self.point == point
    }
}

/// Transport-level crash rule: the node's egress dies after its first
/// `after_sends` messages — everything later is silently dropped, exactly
/// what peers of a fail-stop crash observe on the wire. Pair with
/// [`CrashSpec`] when the compute side should die too.
pub fn rank_crash_rule(after_sends: u64) -> Arc<FaultRule> {
    Arc::new(move |_dst, _tag: Tag, _payload: &Bytes, idx| {
        if idx >= after_sends {
            FaultAction::Drop
        } else {
            FaultAction::Deliver
        }
    })
}

/// A [`Transport`] wrapper that applies a [`FaultRule`] to outgoing traffic.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    rule: Box<FaultRule>,
    sends: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
}

impl FaultyTransport {
    /// Wraps `inner` with `rule`.
    pub fn new(inner: Arc<dyn Transport>, rule: Box<FaultRule>) -> Self {
        FaultyTransport {
            inner,
            rule,
            sends: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Number of messages silently dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of messages corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Number of messages delivered late so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }
}

impl Transport for FaultyTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        let idx = self.sends.fetch_add(1, Ordering::Relaxed);
        match (self.rule)(dst, tag, &payload, idx) {
            FaultAction::Deliver => self.inner.send(dst, tag, payload),
            FaultAction::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            FaultAction::Corrupt(bad) => {
                self.corrupted.fetch_add(1, Ordering::Relaxed);
                self.inner.send(dst, tag, bad)
            }
            FaultAction::Delay(d) => {
                self.delayed.fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(&self.inner);
                std::thread::spawn(move || {
                    std::thread::sleep(d);
                    // The receiver may have shut down by the time a long
                    // delay drains; a late send failing is the same
                    // observable as a drop.
                    let _ = inner.send(dst, tag, payload);
                });
                Ok(())
            }
            FaultAction::FailSend => Err(NetError::InjectedFault {
                what: format!("send #{idx} to {dst} {tag} failed by rule"),
            }),
        }
    }

    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        self.inner.recv(src, tag)
    }

    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        self.inner.recv_timeout(src, tag, timeout)
    }

    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        self.inner.try_recv(src, tag)
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }

    fn mark_peer_dead(&self, peer: usize) {
        self.inner.mark_peer_dead(peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;

    #[test]
    fn deliver_passes_through() {
        let fabric = LocalFabric::new(2);
        let faulty = FaultyTransport::new(
            Arc::new(fabric.endpoint(0)),
            Box::new(|_, _, _, _| FaultAction::Deliver),
        );
        faulty
            .send(1, Tag::app(0), Bytes::from_static(b"ok"))
            .unwrap();
        assert_eq!(fabric.endpoint(1).recv(0, Tag::app(0)).unwrap(), "ok");
    }

    #[test]
    fn drop_loses_the_message() {
        let fabric = LocalFabric::new(2);
        let faulty = FaultyTransport::new(
            Arc::new(fabric.endpoint(0)),
            Box::new(|_, _, _, idx| {
                if idx == 0 {
                    FaultAction::Drop
                } else {
                    FaultAction::Deliver
                }
            }),
        );
        faulty
            .send(1, Tag::app(0), Bytes::from_static(b"lost"))
            .unwrap();
        faulty
            .send(1, Tag::app(0), Bytes::from_static(b"kept"))
            .unwrap();
        assert_eq!(faulty.dropped(), 1);
        // The first message that arrives is the second one sent.
        assert_eq!(fabric.endpoint(1).recv(0, Tag::app(0)).unwrap(), "kept");
    }

    #[test]
    fn corrupt_replaces_payload() {
        let fabric = LocalFabric::new(2);
        let faulty = FaultyTransport::new(
            Arc::new(fabric.endpoint(0)),
            Box::new(|_, _, payload, _| {
                let mut bad = payload.to_vec();
                if !bad.is_empty() {
                    bad[0] ^= 0xFF;
                }
                FaultAction::Corrupt(Bytes::from(bad))
            }),
        );
        faulty
            .send(1, Tag::app(0), Bytes::from_static(b"abc"))
            .unwrap();
        assert_eq!(faulty.corrupted(), 1);
        let got = fabric.endpoint(1).recv(0, Tag::app(0)).unwrap();
        assert_eq!(got[0], b'a' ^ 0xFF);
        assert_eq!(&got[1..], b"bc");
    }

    #[test]
    fn datagram_loss_rule_is_deterministic_and_roughly_calibrated() {
        let rule = datagram_loss_rule(20, 7);
        let first: Vec<DatagramAction> = (0..1000).map(|i| rule(0, 0, 0, 0, i)).collect();
        let second: Vec<DatagramAction> = (0..1000).map(|i| rule(0, 0, 0, 0, i)).collect();
        assert_eq!(first, second, "rule must replay identically");
        let drops = first.iter().filter(|a| **a == DatagramAction::Drop).count();
        assert!((100..400).contains(&drops), "~20% of 1000, got {drops}");
        // 0% never drops.
        let never = datagram_loss_rule(0, 7);
        assert!((0..1000).all(|i| never(0, 0, 0, 0, i) == DatagramAction::Deliver));
    }

    #[test]
    fn sender_blackout_drops_only_the_victim() {
        let rule = sender_blackout_rule(2);
        assert_eq!(rule(2, 0, 0, 0, 0), DatagramAction::Drop);
        assert_eq!(rule(2, 5, 9, 1, 77), DatagramAction::Drop);
        assert_eq!(rule(0, 0, 0, 0, 0), DatagramAction::Deliver);
        assert_eq!(rule(3, 0, 0, 0, 0), DatagramAction::Deliver);
    }

    #[test]
    fn delay_delivers_late_and_counts() {
        let fabric = LocalFabric::new(2);
        let faulty = FaultyTransport::new(
            Arc::new(fabric.endpoint(0)),
            Box::new(|_, _, _, _| FaultAction::Delay(Duration::from_millis(30))),
        );
        let t0 = std::time::Instant::now();
        faulty
            .send(1, Tag::new(Tag::BCAST, 0), Bytes::from_static(b"late"))
            .unwrap();
        // The send itself returns immediately (detached delivery).
        assert!(t0.elapsed() < Duration::from_millis(25));
        assert_eq!(faulty.delayed(), 1);
        let got = fabric
            .endpoint(1)
            .recv_timeout(0, Tag::new(Tag::BCAST, 0), Duration::from_secs(2))
            .unwrap();
        assert_eq!(got, "late");
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn straggler_rules_spare_control_traffic() {
        let delay = straggler_delay_rule(Duration::from_millis(1));
        let hole = straggler_blackhole_rule();
        let bcast = Tag::new(Tag::BCAST, 7);
        let barrier = Tag::new(Tag::BARRIER, 0);
        assert!(matches!(
            delay(1, bcast, &Bytes::new(), 0),
            FaultAction::Delay(_)
        ));
        assert!(matches!(
            delay(1, barrier, &Bytes::new(), 0),
            FaultAction::Deliver
        ));
        assert!(matches!(
            hole(1, bcast, &Bytes::new(), 0),
            FaultAction::Drop
        ));
        assert!(matches!(
            hole(1, barrier, &Bytes::new(), 0),
            FaultAction::Deliver
        ));
        assert!(matches!(
            hole(1, Tag::app(3), &Bytes::new(), 0),
            FaultAction::Deliver
        ));
    }

    #[test]
    fn rank_crash_rule_silences_egress_after_budget() {
        let fabric = LocalFabric::new(2);
        let rule = rank_crash_rule(2);
        let faulty = FaultyTransport::new(
            Arc::new(fabric.endpoint(0)),
            Box::new(move |d, t, p, i| rule(d, t, p, i)),
        );
        for msg in [&b"one"[..], b"two", b"three", b"four"] {
            faulty
                .send(1, Tag::app(0), Bytes::copy_from_slice(msg))
                .unwrap();
        }
        assert_eq!(faulty.dropped(), 2);
        let rx = fabric.endpoint(1);
        assert_eq!(rx.recv(0, Tag::app(0)).unwrap(), "one");
        assert_eq!(rx.recv(0, Tag::app(0)).unwrap(), "two");
        assert_eq!(rx.try_recv(0, Tag::app(0)).unwrap(), None);
    }

    #[test]
    fn crash_spec_matches_rank_and_point() {
        let spec = CrashSpec {
            rank: 3,
            point: CrashPoint::MidMap,
        };
        assert!(spec.fires(3, CrashPoint::MidMap));
        assert!(!spec.fires(2, CrashPoint::MidMap));
        assert!(!spec.fires(3, CrashPoint::PreReduce));
        assert_eq!(CrashPoint::AfterSends(5).to_string(), "after-5-sends");
        assert_eq!(CrashPoint::MidEncode.to_string(), "mid-encode");
    }

    #[test]
    fn fail_send_surfaces_error() {
        let fabric = LocalFabric::new(2);
        let faulty = FaultyTransport::new(
            Arc::new(fabric.endpoint(0)),
            Box::new(|_, _, _, _| FaultAction::FailSend),
        );
        let err = faulty.send(1, Tag::app(0), Bytes::new()).unwrap_err();
        assert!(matches!(err, NetError::InjectedFault { .. }));
    }
}
