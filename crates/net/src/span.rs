//! Stage spans: wall-clock brackets around every engine stage, per job
//! and per rank.
//!
//! Where [`trace`](crate::trace) records *what moved* (bytes, receiver
//! sets, egress frames), the span layer records *where time went*: each
//! [`Communicator::set_stage`](crate::comm::Communicator::set_stage) call
//! closes the rank's open span and opens the next, so the existing
//! per-stage engine annotations double as timing brackets with no engine
//! changes. The result is the live per-job Fig. 9 breakdown a resident
//! daemon can answer `cts stats` and `--timeline` queries from.
//!
//! Recording goes into a **fixed-capacity ring** sized at construction:
//! a resident service's memory stays bounded however many jobs pass
//! through, and — the property `tests/alloc_free.rs` pins — steady-state
//! recording performs zero heap allocations. Old spans are overwritten
//! oldest-first; a job's timeline is complete as long as it is queried
//! within the last [`SpanCollector::capacity`] spans, which at seven
//! stages × K ranks per job holds thousands of recent jobs.
//!
//! ```
//! use cts_net::span::{SpanCollector, StageSpan};
//!
//! let spans = SpanCollector::new(true);
//! let map = spans.intern("Map");
//! let t0 = spans.now_ns();
//! let span = StageSpan { job: 1, rank: 0, stage: map, start_ns: t0, end_ns: t0 + 1_000 };
//! spans.record(span);
//! let log = spans.snapshot().for_job(1);
//! assert_eq!(log.spans.len(), 1);
//! assert_eq!(log.stage_name(map), "Map");
//! ```

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

/// One closed stage bracket on one rank of one job. Times are nanoseconds
/// since the owning collector's origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// The job this span belongs to (0 for exclusive/one-shot runs).
    pub job: u32,
    /// The rank whose stage this is.
    pub rank: u16,
    /// Index into the collector's interned stage names.
    pub stage: u16,
    /// Span open time (ns since collector origin).
    pub start_ns: u64,
    /// Span close time (ns since collector origin).
    pub end_ns: u64,
}

impl StageSpan {
    /// The span's duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Default ring capacity: at ~7 stages × K ranks per job this retains the
/// full timelines of the last few hundred jobs even at K = 64.
const DEFAULT_CAPACITY: usize = 1 << 16;

struct SpanInner {
    names: Vec<String>,
    index: HashMap<String, u16>,
    /// Ring storage; grows (and allocates) only until `capacity` spans
    /// have been recorded, then overwrites oldest-first.
    ring: Vec<StageSpan>,
    /// Next write position once the ring is full.
    head: usize,
    /// Total spans ever recorded (≥ `ring.len()`).
    recorded: u64,
}

/// Thread-safe span accumulator shared by all communicators of a fabric.
pub struct SpanCollector {
    enabled: bool,
    capacity: usize,
    origin: Instant,
    inner: Mutex<SpanInner>,
}

impl SpanCollector {
    /// Creates a collector with the default ring capacity. A disabled
    /// collector records nothing and its hot path neither locks nor
    /// allocates.
    pub fn new(enabled: bool) -> SpanCollector {
        SpanCollector::with_capacity(enabled, DEFAULT_CAPACITY)
    }

    /// Creates a collector retaining at most `capacity` recent spans.
    pub fn with_capacity(enabled: bool, capacity: usize) -> SpanCollector {
        SpanCollector {
            enabled,
            capacity: capacity.max(1),
            origin: Instant::now(),
            inner: Mutex::new(SpanInner {
                names: Vec::new(),
                index: HashMap::new(),
                ring: Vec::new(),
                head: 0,
                recorded: 0,
            }),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The ring capacity (retention bound in spans).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since this collector was created — the clock every
    /// span's `start_ns`/`end_ns` is expressed in.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Interns a stage name, returning its index. Disabled collectors
    /// return 0 without locking or allocating.
    pub fn intern(&self, name: &str) -> u16 {
        if !self.enabled {
            return 0;
        }
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.index.get(name) {
            return idx;
        }
        let idx = inner.names.len() as u16;
        inner.names.push(name.to_string());
        inner.index.insert(name.to_string(), idx);
        idx
    }

    /// Records one closed span (no-op when disabled). Allocation-free once
    /// the ring has filled.
    pub fn record(&self, span: StageSpan) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        inner.recorded += 1;
        if inner.ring.len() < self.capacity {
            inner.ring.push(span);
        } else {
            let head = inner.head;
            inner.ring[head] = span;
            inner.head = (head + 1) % self.capacity;
        }
    }

    /// Total spans ever recorded (including any the ring has dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Snapshot of the retained spans, oldest first.
    pub fn snapshot(&self) -> SpanLog {
        let inner = self.inner.lock();
        let mut spans = Vec::with_capacity(inner.ring.len());
        if inner.ring.len() == self.capacity {
            spans.extend_from_slice(&inner.ring[inner.head..]);
            spans.extend_from_slice(&inner.ring[..inner.head]);
        } else {
            spans.extend_from_slice(&inner.ring);
        }
        SpanLog {
            names: inner.names.clone(),
            spans,
        }
    }
}

/// A snapshot of recorded spans plus the stage-name table.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    /// Stage names, indexed by [`StageSpan::stage`].
    pub names: Vec<String>,
    /// Retained spans, oldest first.
    pub spans: Vec<StageSpan>,
}

impl SpanLog {
    /// The stage name for index `idx` (`"?"` when out of range).
    pub fn stage_name(&self, idx: u16) -> &str {
        self.names.get(idx as usize).map_or("?", |s| s.as_str())
    }

    /// The stage index for `name`, if any span used it.
    pub fn stage_index(&self, name: &str) -> Option<u16> {
        self.names.iter().position(|s| s == name).map(|i| i as u16)
    }

    /// The log restricted to one job's spans (name table shared).
    pub fn for_job(&self, job: u32) -> SpanLog {
        SpanLog {
            names: self.names.clone(),
            spans: self
                .spans
                .iter()
                .filter(|s| s.job == job)
                .copied()
                .collect(),
        }
    }

    /// Distinct job ids present, ascending.
    pub fn jobs(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.spans.iter().map(|s| s.job).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Per-rank durations (ns) of the named stage, one sample per span —
    /// the sample set `cts stats` feeds into a latency histogram.
    pub fn stage_durations_ns(&self, name: &str) -> Vec<u64> {
        let Some(idx) = self.stage_index(name) else {
            return Vec::new();
        };
        self.spans
            .iter()
            .filter(|s| s.stage == idx)
            .map(|s| s.dur_ns())
            .collect()
    }

    /// The stage's wall-clock extent across ranks: latest end minus
    /// earliest start (ns). This is the paper's per-stage breakdown
    /// convention — a stage lasts until its slowest rank finishes.
    pub fn stage_wall_ns(&self, name: &str) -> u64 {
        let Some(idx) = self.stage_index(name) else {
            return 0;
        };
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in self.spans.iter().filter(|s| s.stage == idx) {
            lo = lo.min(s.start_ns);
            hi = hi.max(s.end_ns);
        }
        hi.saturating_sub(lo)
    }

    /// Stage names in first-appearance order among the retained spans.
    pub fn stages_in_order(&self) -> Vec<&str> {
        let mut seen: Vec<u16> = Vec::new();
        for s in &self.spans {
            if !seen.contains(&s.stage) {
                seen.push(s.stage);
            }
        }
        seen.into_iter().map(|i| self.stage_name(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(job: u32, rank: u16, stage: u16, start: u64, end: u64) -> StageSpan {
        StageSpan {
            job,
            rank,
            stage,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn intern_is_stable_and_disabled_is_inert() {
        let c = SpanCollector::new(true);
        let a = c.intern("Map");
        let b = c.intern("Shuffle");
        assert_ne!(a, b);
        assert_eq!(c.intern("Map"), a);

        let off = SpanCollector::new(false);
        assert_eq!(off.intern("Map"), 0);
        off.record(span(1, 0, 0, 0, 5));
        assert!(off.snapshot().spans.is_empty());
        assert!(off.snapshot().names.is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_first() {
        let c = SpanCollector::with_capacity(true, 4);
        let st = c.intern("Map");
        for i in 0..6u64 {
            c.record(span(1, 0, st, i, i + 1));
        }
        assert_eq!(c.recorded(), 6);
        let log = c.snapshot();
        assert_eq!(log.spans.len(), 4);
        // Oldest retained first: spans 2..6.
        let starts: Vec<u64> = log.spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn job_filter_and_stage_queries() {
        let c = SpanCollector::new(true);
        let map = c.intern("Map");
        let shuffle = c.intern("Shuffle");
        c.record(span(1, 0, map, 0, 100));
        c.record(span(2, 0, map, 10, 40));
        c.record(span(1, 1, map, 5, 120));
        c.record(span(1, 0, shuffle, 120, 200));
        let log = c.snapshot();
        assert_eq!(log.jobs(), vec![1, 2]);
        let j1 = log.for_job(1);
        assert_eq!(j1.spans.len(), 3);
        assert_eq!(j1.stage_durations_ns("Map"), vec![100, 115]);
        // Wall extent: earliest Map start 0, latest Map end 120.
        assert_eq!(j1.stage_wall_ns("Map"), 120);
        assert_eq!(j1.stages_in_order(), vec!["Map", "Shuffle"]);
        assert_eq!(log.for_job(2).stage_durations_ns("Map"), vec![30]);
        assert!(log.for_job(9).spans.is_empty());
    }

    #[test]
    fn unknown_stage_queries_are_empty() {
        let log = SpanLog::default();
        assert_eq!(log.stage_wall_ns("Nope"), 0);
        assert!(log.stage_durations_ns("Nope").is_empty());
        assert_eq!(log.stage_name(7), "?");
    }

    #[test]
    fn now_ns_is_monotone() {
        let c = SpanCollector::new(true);
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
