//! In-process transport: one mailbox per node, delivery is a queue push.
//!
//! This is the default substrate for experiments — it moves real bytes
//! between real per-node state with MPI matching semantics, at memory
//! speed, and its native [`Transport::multicast`] delivers one shared
//! reference-counted buffer to every destination (zero-copy one-to-many).
//! Wall-clock realism comes either from an emulated
//! [`Nic`](crate::rate::Nic) or from replaying the recorded trace through
//! `cts-netsim`.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::local::LocalFabric;
//! use cts_net::message::Tag;
//! use cts_net::transport::Transport;
//!
//! let fabric = LocalFabric::new(2);
//! let (a, b) = (fabric.endpoint(0), fabric.endpoint(1));
//! a.send(1, Tag::app(0), Bytes::from_static(b"ping")).unwrap();
//! assert_eq!(b.recv(0, Tag::app(0)).unwrap(), "ping");
//! ```

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::error::{NetError, Result};
use crate::mailbox::Mailbox;
use crate::message::{Message, Tag};
use crate::transport::Transport;

/// The shared state of an in-process fabric.
pub struct LocalFabric {
    mailboxes: Arc<Vec<Arc<Mailbox>>>,
}

impl LocalFabric {
    /// Creates a fabric of `k` endpoints.
    pub fn new(k: usize) -> Self {
        let mailboxes = Arc::new(
            (0..k)
                .map(|r| Arc::new(Mailbox::new(r)))
                .collect::<Vec<_>>(),
        );
        LocalFabric { mailboxes }
    }

    /// Number of endpoints.
    pub fn world_size(&self) -> usize {
        self.mailboxes.len()
    }

    /// The endpoint for `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= world_size`.
    pub fn endpoint(&self, rank: usize) -> LocalEndpoint {
        assert!(rank < self.mailboxes.len(), "rank {rank} out of range");
        LocalEndpoint {
            rank,
            mailboxes: Arc::clone(&self.mailboxes),
        }
    }

    /// All endpoints, rank order.
    pub fn endpoints(&self) -> Vec<LocalEndpoint> {
        (0..self.world_size()).map(|r| self.endpoint(r)).collect()
    }

    /// Closes every mailbox, waking all blocked receivers with
    /// `Disconnected` — the abort path when one SPMD node panics.
    pub fn abort(&self) {
        for mb in self.mailboxes.iter() {
            mb.close();
        }
    }
}

/// One endpoint of a [`LocalFabric`].
#[derive(Clone)]
pub struct LocalEndpoint {
    rank: usize,
    mailboxes: Arc<Vec<Arc<Mailbox>>>,
}

impl LocalEndpoint {
    fn check(&self, rank: usize) -> Result<()> {
        if rank >= self.mailboxes.len() {
            return Err(NetError::InvalidRank {
                rank,
                world: self.mailboxes.len(),
            });
        }
        Ok(())
    }
}

impl Transport for LocalEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.mailboxes.len()
    }

    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        self.check(dst)?;
        self.mailboxes[dst].deliver(Message {
            src: self.rank,
            tag,
            payload,
        });
        Ok(())
    }

    /// Native one-to-many: every distinct destination mailbox receives a
    /// handle to the *same* buffer (`Bytes` is reference-counted), which is
    /// the in-memory analog of network-layer multicast — the payload exists
    /// once no matter how many nodes hear it.
    fn multicast(&self, dsts: &[usize], tag: Tag, payload: Bytes) -> Result<()> {
        for &dst in dsts {
            self.check(dst)?;
        }
        let mut seen = vec![false; self.mailboxes.len()];
        for &dst in dsts {
            if std::mem::replace(&mut seen[dst], true) {
                continue;
            }
            self.mailboxes[dst].deliver(Message {
                src: self.rank,
                tag,
                payload: payload.clone(),
            });
        }
        Ok(())
    }

    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        self.check(src)?;
        self.mailboxes[self.rank].recv(src, tag)
    }

    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        self.check(src)?;
        self.mailboxes[self.rank].recv_timeout(src, tag, timeout)
    }

    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        self.check(src)?;
        self.mailboxes[self.rank].try_recv_checked(src, tag)
    }

    fn shutdown(&self) {
        self.mailboxes[self.rank].close();
    }

    fn mark_peer_dead(&self, peer: usize) {
        self.mailboxes[self.rank].mark_dead(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let fabric = LocalFabric::new(2);
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        a.send(1, Tag::app(0), Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.recv(0, Tag::app(0)).unwrap(), "ping");
        b.send(0, Tag::app(0), Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.recv(1, Tag::app(0)).unwrap(), "pong");
    }

    #[test]
    fn send_to_invalid_rank_fails() {
        let fabric = LocalFabric::new(2);
        let a = fabric.endpoint(0);
        assert!(matches!(
            a.send(5, Tag::app(0), Bytes::new()),
            Err(NetError::InvalidRank { rank: 5, world: 2 })
        ));
        assert!(a
            .recv_timeout(9, Tag::app(0), Duration::from_millis(1))
            .is_err());
    }

    #[test]
    fn self_send_is_allowed() {
        let fabric = LocalFabric::new(1);
        let a = fabric.endpoint(0);
        a.send(0, Tag::app(3), Bytes::from_static(b"me")).unwrap();
        assert_eq!(a.recv(0, Tag::app(3)).unwrap(), "me");
    }

    #[test]
    fn concurrent_spmd_exchange() {
        let fabric = LocalFabric::new(4);
        let endpoints = fabric.endpoints();
        std::thread::scope(|scope| {
            for ep in endpoints {
                scope.spawn(move || {
                    let me = ep.rank();
                    let k = ep.world_size();
                    // Everyone sends its rank to everyone else …
                    for dst in (0..k).filter(|&d| d != me) {
                        ep.send(dst, Tag::app(1), Bytes::copy_from_slice(&[me as u8]))
                            .unwrap();
                    }
                    // … and receives K-1 ranks back.
                    for src in (0..k).filter(|&s| s != me) {
                        let got = ep.recv(src, Tag::app(1)).unwrap();
                        assert_eq!(got[0] as usize, src);
                    }
                });
            }
        });
    }

    #[test]
    fn abort_wakes_blocked_receivers() {
        let fabric = LocalFabric::new(2);
        let a = fabric.endpoint(0);
        let handle = std::thread::spawn(move || a.recv(1, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        fabric.abort();
        assert!(matches!(
            handle.join().unwrap(),
            Err(NetError::Disconnected { .. })
        ));
    }

    #[test]
    fn multicast_duplicates_deliver_once() {
        let fabric = LocalFabric::new(3);
        let a = fabric.endpoint(0);
        a.multicast(&[1, 2, 1], Tag::app(0), Bytes::from_static(b"set"))
            .unwrap();
        let b = fabric.endpoint(1);
        assert_eq!(b.recv(0, Tag::app(0)).unwrap(), "set");
        assert_eq!(b.try_recv(0, Tag::app(0)).unwrap(), None);
    }

    #[test]
    fn payload_sharing_is_zero_copy() {
        let fabric = LocalFabric::new(2);
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let payload = Bytes::from(vec![7u8; 1024]);
        let ptr = payload.as_ptr();
        a.send(1, Tag::app(0), payload).unwrap();
        let got = b.recv(0, Tag::app(0)).unwrap();
        assert_eq!(got.as_ptr(), ptr, "local delivery must not copy");
    }
}
