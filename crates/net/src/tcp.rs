//! Real-socket transport: an event-driven TCP mesh over localhost.
//!
//! This is the "custom networking" substrate replacing the paper's Open MPI
//! deployment. The original design ran one blocking reader thread per peer
//! (`K−1` threads per endpoint, `O(K²)` for the fabric), which capped
//! emulation around `K ≈ 20`. It is now event-driven: every socket is
//! non-blocking, each endpoint runs a **single reactor thread** that polls
//! all of its peer sockets through [`nio::FrameReader`](crate::nio), and
//! sends go through resumable [`nio::FrameWrite`](crate::nio) state
//! machines. Thread count is `O(K)` and single-host emulation scales to
//! `K = 128`.
//!
//! Mesh bring-up is **lazy** (connect-on-first-send): binding the
//! [`registry`](crate::registry) costs `K` listeners, and a directed link
//! `i → j` is dialed only when `i` first sends to `j`, introducing itself
//! with a 4-byte little-endian rank hello that keeps rank identification
//! deterministic. A fully used mesh still tops out at `K(K−1)` simplex
//! links, but sparse communication patterns — pod-partitioned engines,
//! coordinator-only barriers — open only the file descriptors they touch
//! instead of the eager `K(K−1)/2` duplex mesh that risked fd exhaustion
//! at `K = 128`.
//!
//! The endpoint also implements a real one-to-many primitive:
//! [`Transport::multicast`] interleaves chunked non-blocking writes across
//! all destination sockets ([`nio::drive_writes`]), so the copies of one
//! coded packet overlap on the wire instead of queueing behind each other —
//! the fanout/multicast fabrics of [`fabric`](crate::fabric). (For
//! *physical* one-to-many frames, see [`udp`](crate::udp), which layers
//! IP multicast over this mesh as its control channel.)
//!
//! Every byte the algorithms shuffle really crosses the kernel's TCP stack,
//! so the TCP examples and tests exercise exactly the code path an EC2
//! deployment would. Frame format per message:
//! `[tag: u32 LE][len: u32 LE][payload]`. The peer's rank is announced by
//! the dialer's hello and implicit in the connection thereafter.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::tcp::build_tcp_fabric;
//! use cts_net::message::Tag;
//! use cts_net::transport::Transport;
//!
//! let endpoints = build_tcp_fabric(3).unwrap();
//! // One native multicast: rank 0 → ranks 1 and 2, overlapped writes.
//! endpoints[0]
//!     .multicast(&[1, 2], Tag::app(0), Bytes::from_static(b"coded"))
//!     .unwrap();
//! assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "coded");
//! assert_eq!(endpoints[2].recv(0, Tag::app(0)).unwrap(), "coded");
//! // Lazy mesh: only the links that carried traffic exist.
//! assert_eq!(endpoints[0].outbound_links(), 2);
//! assert_eq!(endpoints[1].outbound_links(), 0);
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::{NetError, Result};
use crate::mailbox::Mailbox;
use crate::message::{Message, Tag};
use crate::nio::{self, Backoff, FrameReader, FrameWrite, ReadStatus};
use crate::registry::RankRegistry;
use crate::transport::Transport;

/// Builds a fully connected *capable* TCP fabric of `k` endpoints on
/// loopback: binds a [`RankRegistry`] and starts one reactor per endpoint.
/// No data links exist yet — each directed link is dialed lazily on the
/// first send crossing it. Returns the endpoints in rank order.
pub fn build_tcp_fabric(k: usize) -> Result<Vec<TcpEndpoint>> {
    let (registry, listeners) = RankRegistry::bind_loopback(k)?;
    listeners
        .into_iter()
        .enumerate()
        .map(|(rank, listener)| TcpEndpoint::start(rank, registry.clone(), listener))
        .collect()
}

/// Rejects payloads the `u32` frame-length field (and the reader's
/// [`nio::MAX_FRAME`] guard) cannot represent, before any byte is written.
fn check_frame_size(payload: &Bytes) -> Result<()> {
    if payload.len() > nio::MAX_FRAME as usize {
        return Err(NetError::Io {
            what: format!(
                "payload of {} bytes exceeds the {} byte frame limit",
                payload.len(),
                nio::MAX_FRAME
            ),
        });
    }
    Ok(())
}

struct PeerLink {
    /// Write half: a lock serializes frame writes from this endpoint's
    /// threads; the stream itself is non-blocking, so writers resume
    /// through `nio` instead of blocking in the kernel.
    writer: Mutex<TcpStream>,
    /// Kept so `shutdown()` can close the link and wake the peer's reactor
    /// with an EOF.
    raw: TcpStream,
}

/// Raw handles of reactor-owned inbound streams, shared so `shutdown()`
/// can close them from outside the reactor thread.
type InboundRaw = Arc<Mutex<Vec<TcpStream>>>;

/// One endpoint of a TCP fabric.
///
/// A single reactor thread accepts inbound connections on this rank's
/// listener and polls the accepted peer sockets, parsing frames into the
/// endpoint's [`Mailbox`]; `send` and `multicast` dial missing outbound
/// links on demand and drive non-blocking writes under a per-peer lock.
/// Dropping the endpoint shuts the sockets down and joins the reactor.
pub struct TcpEndpoint {
    rank: usize,
    registry: RankRegistry,
    mailbox: Arc<Mailbox>,
    /// Outbound simplex links, dialed on first send (peer rank → link).
    /// The map lock is held only for lookups/inserts — never across a
    /// dial — so sends to established peers don't queue behind a slow
    /// connect to someone else.
    outbound: Mutex<HashMap<usize, Arc<PeerLink>>>,
    /// Per-destination dial serialization: racing first-senders to one
    /// peer agree on a single link without blocking traffic to others.
    dial_locks: Vec<Mutex<()>>,
    inbound_raw: InboundRaw,
    inbound_count: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    reactor: Mutex<Option<JoinHandle<()>>>,
}

impl TcpEndpoint {
    fn start(rank: usize, registry: RankRegistry, listener: TcpListener) -> Result<TcpEndpoint> {
        listener.set_nonblocking(true)?;
        let mailbox = Arc::new(Mailbox::new(rank));
        let stop = Arc::new(AtomicBool::new(false));
        let inbound_raw: InboundRaw = Arc::new(Mutex::new(Vec::new()));
        let inbound_count = Arc::new(AtomicUsize::new(0));
        let world = registry.world_size();
        let reactor = {
            let mailbox = Arc::clone(&mailbox);
            let stop = Arc::clone(&stop);
            let inbound_raw = Arc::clone(&inbound_raw);
            let inbound_count = Arc::clone(&inbound_count);
            std::thread::Builder::new()
                .name(format!("cts-net-reactor-{rank}"))
                .spawn(move || {
                    reactor_loop(
                        listener,
                        world,
                        rank,
                        &mailbox,
                        &stop,
                        &inbound_raw,
                        &inbound_count,
                    )
                })
                .expect("spawn reactor thread")
        };
        Ok(TcpEndpoint {
            rank,
            registry,
            mailbox,
            outbound: Mutex::new(HashMap::new()),
            dial_locks: (0..world).map(|_| Mutex::new(())).collect(),
            inbound_raw,
            inbound_count,
            stop,
            reactor: Mutex::new(Some(reactor)),
        })
    }

    /// Number of outbound links this endpoint has dialed so far — with the
    /// lazy mesh, exactly the number of distinct peers it has sent to.
    pub fn outbound_links(&self) -> usize {
        self.outbound.lock().len()
    }

    /// Number of inbound links the reactor has accepted so far.
    pub fn inbound_links(&self) -> usize {
        self.inbound_count.load(Ordering::Relaxed)
    }

    /// Returns the link to `dst`, dialing it first if this is the first
    /// send to that peer. The dial introduces this endpoint with a 4-byte
    /// little-endian rank hello (written in blocking mode, so it cannot
    /// interleave with frames) before the socket turns non-blocking.
    fn link_to(&self, dst: usize) -> Result<Arc<PeerLink>> {
        if let Some(link) = self.outbound.lock().get(&dst) {
            return Ok(Arc::clone(link));
        }
        let addr = self.registry.addr(dst).ok_or(NetError::InvalidRank {
            rank: dst,
            world: self.registry.world_size(),
        })?;
        // Dial under the per-destination lock only: concurrent first-sends
        // to `dst` agree on one link, while traffic to other peers flows.
        let _dialing = self.dial_locks[dst].lock();
        if let Some(link) = self.outbound.lock().get(&dst) {
            return Ok(Arc::clone(link)); // raced: the other dialer won
        }
        let mut stream = dial_with_retry(self.rank, dst, addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&(self.rank as u32).to_le_bytes())?;
        stream.set_nonblocking(true)?;
        let raw = stream.try_clone()?;
        let link = Arc::new(PeerLink {
            writer: Mutex::new(stream),
            raw,
        });
        self.outbound.lock().insert(dst, Arc::clone(&link));
        Ok(link)
    }

    /// Joins the reactor after shutting the sockets down.
    fn teardown(&self) {
        self.shutdown();
        if let Some(handle) = self.reactor.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// Maximum connect attempts for one lazy dial before the typed
/// [`NetError::ConnectFailed`] surfaces.
const DIAL_ATTEMPTS: u32 = 8;
/// First retry backoff; doubles per attempt, capped at
/// [`DIAL_BACKOFF_CAP`].
const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Upper bound on a single backoff sleep.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Dials `addr` with a bounded retry budget: a peer whose listener is not
/// accepting yet (refused/reset during staggered bring-up) gets
/// exponentially backed-off retries with deterministic per-(dialer, peer,
/// attempt) jitter so simultaneous dialers decorrelate identically on
/// every run. Exhausting the budget yields the typed `ConnectFailed`
/// naming the rank and address instead of a raw I/O error.
fn dial_with_retry(me: usize, dst: usize, addr: std::net::SocketAddr) -> Result<TcpStream> {
    let mut backoff = DIAL_BACKOFF_BASE;
    let mut last = String::new();
    for attempt in 0..DIAL_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < DIAL_ATTEMPTS {
            // Deterministic jitter in [0, backoff/2): a hash of (dialer,
            // peer, attempt), not a clock or RNG, so failing bring-ups
            // replay exactly.
            let h = ((me as u64) << 24 ^ (dst as u64) << 8 ^ attempt as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 33;
            let jitter_us = if backoff.as_micros() >= 2 {
                h % (backoff.as_micros() as u64 / 2)
            } else {
                0
            };
            std::thread::sleep(backoff + Duration::from_micros(jitter_us));
            backoff = (backoff * 2).min(DIAL_BACKOFF_CAP);
        }
    }
    Err(NetError::ConnectFailed {
        rank: dst,
        addr: addr.to_string(),
        attempts: DIAL_ATTEMPTS,
        last,
    })
}

/// The per-endpoint event loop: accepts inbound connections (reading each
/// dialer's rank hello incrementally), round-robins every established peer
/// socket, feeds parsed frames into the mailbox, and backs off adaptively
/// while idle. A peer's EOF marks that source disconnected in the mailbox
/// (queued messages stay readable; fresh receives from it fail). Exits when
/// asked to stop.
#[allow(clippy::too_many_arguments)]
fn reactor_loop(
    listener: TcpListener,
    world: usize,
    rank: usize,
    mailbox: &Mailbox,
    stop: &AtomicBool,
    inbound_raw: &InboundRaw,
    inbound_count: &AtomicUsize,
) {
    struct Link {
        peer: usize,
        stream: TcpStream,
        reader: FrameReader,
        open: bool,
        /// The connection's peer address, identifying its raw clone in
        /// `inbound_raw` so the fd can be released when the link closes.
        id: Option<std::net::SocketAddr>,
    }
    /// An accepted stream whose 4-byte rank hello is still arriving.
    struct PendingHello {
        stream: TcpStream,
        hello: [u8; 4],
        got: usize,
        open: bool,
        id: Option<std::net::SocketAddr>,
    }
    /// Releases a closed connection's raw clone (and any dead strays):
    /// without this, accept churn would retain one fd per connection for
    /// the endpoint's whole lifetime.
    fn prune_inbound(inbound_raw: &InboundRaw, id: Option<std::net::SocketAddr>) {
        inbound_raw.lock().retain(|s| match s.peer_addr() {
            Ok(addr) => Some(addr) != id,
            Err(_) => false,
        });
    }
    let mut links: Vec<Link> = Vec::new();
    let mut pending: Vec<PendingHello> = Vec::new();
    let mut frames: Vec<(u32, Bytes)> = Vec::new();
    // Reactors may sit idle through whole compute stages; a higher park cap
    // keeps K idle endpoints from re-polling their sockets every
    // millisecond.
    let mut backoff = Backoff::with_max_park_us(5_000);
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let mut progressed = false;
        // Accept every connection waiting in the backlog.
        loop {
            match listener.accept() {
                Ok((stream, addr)) => {
                    progressed = true;
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    if let Ok(raw) = stream.try_clone() {
                        inbound_raw.lock().push(raw);
                    }
                    pending.push(PendingHello {
                        stream,
                        hello: [0u8; 4],
                        got: 0,
                        open: true,
                        id: Some(addr),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // listener closed or fatal: stop accepting
            }
        }
        // Drive partially read hellos forward.
        for p in pending.iter_mut() {
            loop {
                match p.stream.read(&mut p.hello[p.got..]) {
                    Ok(0) => {
                        p.open = false;
                        break;
                    }
                    Ok(n) => {
                        p.got += n;
                        progressed = true;
                        if p.got == 4 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        p.open = false;
                        break;
                    }
                }
            }
        }
        for p in pending.extract_if(.., |p| !p.open || p.got == 4) {
            if !p.open {
                prune_inbound(inbound_raw, p.id);
                continue;
            }
            let peer = u32::from_le_bytes(p.hello) as usize;
            if peer >= world || peer == rank {
                // A hello announcing an impossible rank: drop the link.
                let _ = p.stream.shutdown(std::net::Shutdown::Both);
                prune_inbound(inbound_raw, p.id);
                continue;
            }
            inbound_count.fetch_add(1, Ordering::Relaxed);
            links.push(Link {
                peer,
                stream: p.stream,
                reader: FrameReader::new(),
                open: true,
                id: p.id,
            });
        }
        // Poll established links.
        for link in links.iter_mut().filter(|l| l.open) {
            match link.reader.poll(&link.stream, &mut frames) {
                ReadStatus::Progress => progressed = true,
                ReadStatus::WouldBlock => {}
                ReadStatus::Closed => {
                    link.open = false;
                    // The dialer only closes at teardown: that peer is gone.
                    mailbox.disconnect_src(link.peer);
                    prune_inbound(inbound_raw, link.id);
                }
            }
            for (tag, payload) in frames.drain(..) {
                mailbox.deliver(Message {
                    src: link.peer,
                    tag: Tag(tag),
                    payload,
                });
            }
        }
        links.retain(|l| l.open);
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }
    // Wake pending receivers: no further messages will arrive.
    mailbox.close();
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.registry.world_size()
    }

    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        check_frame_size(&payload)?;
        if dst == self.rank {
            // Loopback without touching the wire, like MPI self-sends.
            self.mailbox.deliver(Message {
                src: self.rank,
                tag,
                payload,
            });
            return Ok(());
        }
        let link = self.link_to(dst)?;
        let writer = link.writer.lock();
        nio::write_frame(&*writer, tag.0, &payload)?;
        Ok(())
    }

    fn multicast(&self, dsts: &[usize], tag: Tag, payload: Bytes) -> Result<()> {
        check_frame_size(&payload)?;
        // Validate + dial first so no copy is sent on a bad destination
        // list. `dsts` is a set (trait contract): dedupe — a duplicate
        // would re-lock a peer's non-reentrant writer mutex — and sort, so
        // concurrent multicasts on one endpoint acquire the per-peer locks
        // in one global order (no lock-ordering deadlock).
        let mut distinct: Vec<usize> = dsts.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut links = Vec::with_capacity(distinct.len());
        for &dst in &distinct {
            if dst != self.rank {
                links.push(self.link_to(dst)?);
            }
        }
        if distinct.contains(&self.rank) {
            self.mailbox.deliver(Message {
                src: self.rank,
                tag,
                payload: payload.clone(),
            });
        }
        let guards: Vec<_> = links.iter().map(|link| link.writer.lock()).collect();
        // One resumable frame writer per destination, driven round-robin so
        // the copies overlap on the wire.
        let mut ops: Vec<FrameWrite<'_, &TcpStream>> = guards
            .iter()
            .map(|guard| FrameWrite::new(&**guard, tag.0, &payload))
            .collect();
        nio::drive_writes(&mut ops)?;
        Ok(())
    }

    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        if src >= self.world_size() {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world_size(),
            });
        }
        self.mailbox.recv(src, tag)
    }

    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        if src >= self.world_size() {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world_size(),
            });
        }
        self.mailbox.recv_timeout(src, tag, timeout)
    }

    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        if src >= self.world_size() {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world_size(),
            });
        }
        self.mailbox.try_recv_checked(src, tag)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for link in self.outbound.lock().values() {
            let _ = link.raw.shutdown(std::net::Shutdown::Both);
        }
        for raw in self.inbound_raw.lock().iter() {
            let _ = raw.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.reactor.lock().as_ref() {
            handle.thread().unpark();
        }
        self.mailbox.close();
    }

    fn mark_peer_dead(&self, peer: usize) {
        self.mailbox.mark_dead(peer);
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_ping_pong() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let (a, b) = (&endpoints[0], &endpoints[1]);
        a.send(1, Tag::app(0), Bytes::from_static(b"over tcp"))
            .unwrap();
        assert_eq!(b.recv(0, Tag::app(0)).unwrap(), "over tcp");
        b.send(0, Tag::app(1), Bytes::from_static(b"back")).unwrap();
        assert_eq!(a.recv(1, Tag::app(1)).unwrap(), "back");
    }

    #[test]
    fn self_send_loops_back() {
        let endpoints = build_tcp_fabric(1).unwrap();
        endpoints[0]
            .send(0, Tag::app(0), Bytes::from_static(b"self"))
            .unwrap();
        assert_eq!(endpoints[0].recv(0, Tag::app(0)).unwrap(), "self");
    }

    #[test]
    fn large_payload_crosses_intact() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let big: Vec<u8> = (0..1_000_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        endpoints[0]
            .send(1, Tag::app(5), Bytes::from(big.clone()))
            .unwrap();
        let got = endpoints[1].recv(0, Tag::app(5)).unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..], &big[..]);
    }

    #[test]
    fn four_node_all_to_all() {
        let endpoints = build_tcp_fabric(4).unwrap();
        std::thread::scope(|scope| {
            for ep in &endpoints {
                scope.spawn(move || {
                    let me = ep.rank();
                    for dst in (0..4).filter(|&d| d != me) {
                        ep.send(
                            dst,
                            Tag::app(0),
                            Bytes::copy_from_slice(&[me as u8, dst as u8]),
                        )
                        .unwrap();
                    }
                    for src in (0..4).filter(|&s| s != me) {
                        let got = ep.recv(src, Tag::app(0)).unwrap();
                        assert_eq!(&got[..], &[src as u8, me as u8]);
                    }
                });
            }
        });
    }

    #[test]
    fn fifo_order_per_peer_and_tag() {
        let endpoints = build_tcp_fabric(2).unwrap();
        for i in 0..100u32 {
            endpoints[0]
                .send(1, Tag::app(0), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for i in 0..100u32 {
            let got = endpoints[1].recv(0, Tag::app(0)).unwrap();
            assert_eq!(u32::from_le_bytes(got[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn lazy_mesh_dials_only_used_pairs() {
        let endpoints = build_tcp_fabric(6).unwrap();
        // Only 0 → 1 traffic: no other endpoint opens a data link.
        endpoints[0]
            .send(1, Tag::app(0), Bytes::from_static(b"sparse"))
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "sparse");
        assert_eq!(endpoints[0].outbound_links(), 1);
        assert_eq!(endpoints[1].inbound_links(), 1);
        for ep in &endpoints[2..] {
            assert_eq!(ep.outbound_links(), 0, "rank {}", ep.rank());
            assert_eq!(ep.inbound_links(), 0, "rank {}", ep.rank());
        }
        // Repeat sends reuse the dialed link instead of opening more.
        endpoints[0]
            .send(1, Tag::app(1), Bytes::from_static(b"again"))
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(1)).unwrap(), "again");
        assert_eq!(endpoints[0].outbound_links(), 1);
    }

    #[test]
    fn multicast_reaches_every_destination() {
        let endpoints = build_tcp_fabric(4).unwrap();
        let payload: Vec<u8> = (0..500_000u32).map(|i| (i % 251) as u8).collect();
        endpoints[1]
            .multicast(&[0, 2, 3], Tag::app(9), Bytes::from(payload.clone()))
            .unwrap();
        for dst in [0usize, 2, 3] {
            let got = endpoints[dst].recv(1, Tag::app(9)).unwrap();
            assert_eq!(&got[..], &payload[..], "dst {dst}");
        }
    }

    #[test]
    fn multicast_including_self_delivers_locally() {
        let endpoints = build_tcp_fabric(2).unwrap();
        endpoints[0]
            .multicast(&[0, 1], Tag::app(2), Bytes::from_static(b"both"))
            .unwrap();
        assert_eq!(endpoints[0].recv(0, Tag::app(2)).unwrap(), "both");
        assert_eq!(endpoints[1].recv(0, Tag::app(2)).unwrap(), "both");
    }

    #[test]
    fn multicast_duplicate_destinations_deliver_once_without_deadlock() {
        let endpoints = build_tcp_fabric(2).unwrap();
        endpoints[0]
            .multicast(&[1, 1], Tag::app(0), Bytes::from_static(b"dup"))
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "dup");
        assert!(endpoints[1].try_recv(0, Tag::app(0)).unwrap().is_none());
    }

    #[test]
    fn multicast_rejects_invalid_rank_before_sending() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let err = endpoints[0]
            .multicast(&[1, 9], Tag::app(0), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, NetError::InvalidRank { rank: 9, .. }));
        // Nothing was sent to the valid destination either.
        assert!(endpoints[1].try_recv(0, Tag::app(0)).unwrap().is_none());
    }

    #[test]
    fn exhausted_dial_budget_is_a_typed_error() {
        // A bound-then-dropped listener leaves a port that refuses every
        // connect: the retry budget must drain with backoff, then surface
        // ConnectFailed naming the rank and address — not a raw Io error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let started = std::time::Instant::now();
        let err = dial_with_retry(0, 3, addr).unwrap_err();
        // Backoffs 1+2+4+8+16+32+64 ms floor the failure path's duration.
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "retries must back off before giving up"
        );
        match err {
            NetError::ConnectFailed {
                rank,
                addr: dialed,
                attempts,
                ..
            } => {
                assert_eq!(rank, 3);
                assert_eq!(dialed, addr.to_string());
                assert_eq!(attempts, 8);
            }
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn dial_retry_rides_out_late_bring_up() {
        // The listener only starts accepting after the first attempts have
        // failed: the bounded retry must land the connection.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let opener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            TcpListener::bind(addr).unwrap()
        });
        let stream = dial_with_retry(1, 0, addr).expect("late listener must be reached");
        assert_eq!(stream.peer_addr().unwrap(), addr);
        drop(opener.join().unwrap());
    }

    #[test]
    fn shutdown_unblocks_peers() {
        let mut endpoints = build_tcp_fabric(2).unwrap();
        let b = endpoints.pop().unwrap();
        // Establish the 0 → b link first: with the lazy mesh, peer-death
        // detection rides on an existing connection's EOF (a never-used
        // pair has no socket to observe; the cluster layer covers that case
        // by shutting every endpoint down explicitly on abort).
        endpoints[0]
            .send(1, Tag::app(7), Bytes::from_static(b"warm"))
            .unwrap();
        assert_eq!(b.recv(0, Tag::app(7)).unwrap(), "warm");
        let handle = std::thread::spawn(move || b.recv(0, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        drop(endpoints); // drops endpoint 0 → socket shutdown → b's reactor EOFs
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(NetError::Disconnected { .. })));
    }

    #[test]
    fn invalid_rank_rejected() {
        let endpoints = build_tcp_fabric(2).unwrap();
        assert!(matches!(
            endpoints[0].send(7, Tag::app(0), Bytes::new()),
            Err(NetError::InvalidRank { .. })
        ));
    }

    #[test]
    fn bidirectional_bulk_exchange_cannot_deadlock() {
        // Both sides write 2 MB at each other before either reads: blocking
        // writes would deadlock once the socket buffers fill; the
        // non-blocking writers plus the always-draining reactors must not.
        let endpoints = build_tcp_fabric(2).unwrap();
        let big = vec![0xABu8; 2_000_000];
        std::thread::scope(|scope| {
            for ep in &endpoints {
                let big = &big;
                scope.spawn(move || {
                    let other = 1 - ep.rank();
                    ep.send(other, Tag::app(0), Bytes::from(big.clone()))
                        .unwrap();
                    let got = ep.recv(other, Tag::app(0)).unwrap();
                    assert_eq!(got.len(), big.len());
                });
            }
        });
    }

    #[test]
    fn concurrent_first_sends_to_one_peer_race_safely() {
        // Several threads racing the first send to the same destination
        // must agree on a single dialed link and deliver every frame.
        let endpoints = build_tcp_fabric(2).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let ep = &endpoints[0];
                scope.spawn(move || {
                    ep.send(1, Tag::app(t), Bytes::copy_from_slice(&[t as u8]))
                        .unwrap();
                });
            }
        });
        for t in 0..4u32 {
            assert_eq!(endpoints[1].recv(0, Tag::app(t)).unwrap()[0], t as u8);
        }
        assert_eq!(endpoints[0].outbound_links(), 1);
    }
}
