//! Real-socket transport: an event-driven TCP mesh over localhost.
//!
//! This is the "custom networking" substrate replacing the paper's Open MPI
//! deployment. The original design ran one blocking reader thread per peer
//! (`K−1` threads per endpoint, `O(K²)` for the fabric), which capped
//! emulation around `K ≈ 20`. It is now event-driven: every socket is
//! non-blocking, each endpoint runs a **single reactor thread** that polls
//! all of its peer sockets through [`nio::FrameReader`](crate::nio), and
//! sends go through resumable [`nio::FrameWrite`](crate::nio) state
//! machines. Thread count is `O(K)` and — together with the
//! [`registry`](crate::registry) mesh bring-up — single-host emulation
//! scales to `K = 128`.
//!
//! The endpoint also implements a real one-to-many primitive:
//! [`Transport::multicast`] interleaves chunked non-blocking writes across
//! all destination sockets ([`nio::drive_writes`]), so the copies of one
//! coded packet overlap on the wire instead of queueing behind each other —
//! the fanout/multicast fabrics of [`fabric`](crate::fabric).
//!
//! Every byte the algorithms shuffle really crosses the kernel's TCP stack,
//! so the TCP examples and tests exercise exactly the code path an EC2
//! deployment would. Frame format per message:
//! `[tag: u32 LE][len: u32 LE][payload]`. The peer's rank is implicit in
//! the connection.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::tcp::build_tcp_fabric;
//! use cts_net::message::Tag;
//! use cts_net::transport::Transport;
//!
//! let endpoints = build_tcp_fabric(3).unwrap();
//! // One native multicast: rank 0 → ranks 1 and 2, overlapped writes.
//! endpoints[0]
//!     .multicast(&[1, 2], Tag::app(0), Bytes::from_static(b"coded"))
//!     .unwrap();
//! assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "coded");
//! assert_eq!(endpoints[2].recv(0, Tag::app(0)).unwrap(), "coded");
//! ```

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::{NetError, Result};
use crate::mailbox::Mailbox;
use crate::message::{Message, Tag};
use crate::nio::{self, Backoff, FrameReader, FrameWrite, ReadStatus};
use crate::registry::{connect_mesh, RankRegistry};
use crate::transport::Transport;

/// Builds a fully connected TCP fabric of `k` endpoints on loopback.
///
/// Binds a [`RankRegistry`], establishes the mesh, switches every socket to
/// non-blocking mode, and starts one reactor per endpoint. Returns the
/// endpoints in rank order.
pub fn build_tcp_fabric(k: usize) -> Result<Vec<TcpEndpoint>> {
    let (registry, listeners) = RankRegistry::bind_loopback(k)?;
    let meshes = connect_mesh(&registry, listeners)?;
    meshes
        .into_iter()
        .enumerate()
        .map(|(rank, peers)| TcpEndpoint::start(rank, k, peers))
        .collect()
}

/// Rejects payloads the `u32` frame-length field (and the reader's
/// [`nio::MAX_FRAME`] guard) cannot represent, before any byte is written.
fn check_frame_size(payload: &Bytes) -> Result<()> {
    if payload.len() > nio::MAX_FRAME as usize {
        return Err(NetError::Io {
            what: format!(
                "payload of {} bytes exceeds the {} byte frame limit",
                payload.len(),
                nio::MAX_FRAME
            ),
        });
    }
    Ok(())
}

struct PeerLink {
    /// Write half: a lock serializes frame writes from this endpoint's
    /// threads; the stream itself is non-blocking, so writers resume
    /// through `nio` instead of blocking in the kernel.
    writer: Mutex<TcpStream>,
    /// Kept so `shutdown()` can force the reactor out of its polling loop
    /// and wake the peer's reactor with an EOF.
    raw: TcpStream,
}

/// One endpoint of a TCP fabric.
///
/// A single reactor thread polls all peer sockets, parses frames, and
/// delivers them into the endpoint's [`Mailbox`]; `send` and `multicast`
/// drive non-blocking writes under a per-peer lock. Dropping the endpoint
/// shuts the sockets down and joins the reactor.
pub struct TcpEndpoint {
    rank: usize,
    world: usize,
    mailbox: Arc<Mailbox>,
    peers: HashMap<usize, PeerLink>,
    stop: Arc<AtomicBool>,
    reactor: Mutex<Option<JoinHandle<()>>>,
}

impl TcpEndpoint {
    fn start(rank: usize, world: usize, peers: HashMap<usize, TcpStream>) -> Result<TcpEndpoint> {
        let mailbox = Arc::new(Mailbox::new(rank));
        let stop = Arc::new(AtomicBool::new(false));
        let mut links = HashMap::with_capacity(peers.len());
        let mut read_half = Vec::with_capacity(peers.len());
        for (peer, stream) in peers {
            stream.set_nonblocking(true)?;
            let reader_stream = stream.try_clone()?;
            let raw = stream.try_clone()?;
            read_half.push((peer, reader_stream));
            links.insert(
                peer,
                PeerLink {
                    writer: Mutex::new(stream),
                    raw,
                },
            );
        }
        let reactor = {
            let mailbox = Arc::clone(&mailbox);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("cts-net-reactor-{rank}"))
                .spawn(move || reactor_loop(read_half, &mailbox, &stop))
                .expect("spawn reactor thread")
        };
        Ok(TcpEndpoint {
            rank,
            world,
            mailbox,
            peers: links,
            stop,
            reactor: Mutex::new(Some(reactor)),
        })
    }

    /// Joins the reactor after shutting the sockets down.
    fn teardown(&self) {
        self.shutdown();
        if let Some(handle) = self.reactor.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// The per-endpoint event loop: round-robins every peer socket, feeding
/// parsed frames into the mailbox, with adaptive backoff while idle. Exits
/// when asked to stop or when every link has closed (at which point pending
/// receivers are woken with `Disconnected`).
fn reactor_loop(links: Vec<(usize, TcpStream)>, mailbox: &Mailbox, stop: &AtomicBool) {
    struct Link {
        peer: usize,
        stream: TcpStream,
        reader: FrameReader,
        open: bool,
    }
    let had_links = !links.is_empty();
    let mut links: Vec<Link> = links
        .into_iter()
        .map(|(peer, stream)| Link {
            peer,
            stream,
            reader: FrameReader::new(),
            open: true,
        })
        .collect();
    let mut frames: Vec<(u32, Bytes)> = Vec::new();
    // Reactors may sit idle through whole compute stages; a higher park cap
    // keeps K idle endpoints from re-polling K−1 sockets every millisecond.
    let mut backoff = Backoff::with_max_park_us(5_000);
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let mut progressed = false;
        let mut live = 0usize;
        for link in links.iter_mut().filter(|l| l.open) {
            match link.reader.poll(&link.stream, &mut frames) {
                ReadStatus::Progress => {
                    progressed = true;
                    live += 1;
                }
                ReadStatus::WouldBlock => live += 1,
                ReadStatus::Closed => link.open = false,
            }
            for (tag, payload) in frames.drain(..) {
                mailbox.deliver(Message {
                    src: link.peer,
                    tag: Tag(tag),
                    payload,
                });
            }
        }
        if had_links && live == 0 {
            break;
        }
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }
    // Wake pending receivers: no further messages will arrive.
    mailbox.close();
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        check_frame_size(&payload)?;
        if dst == self.rank {
            // Loopback without touching the wire, like MPI self-sends.
            self.mailbox.deliver(Message {
                src: self.rank,
                tag,
                payload,
            });
            return Ok(());
        }
        let link = self.peers.get(&dst).ok_or(NetError::InvalidRank {
            rank: dst,
            world: self.world,
        })?;
        let writer = link.writer.lock();
        nio::write_frame(&*writer, tag.0, &payload)?;
        Ok(())
    }

    fn multicast(&self, dsts: &[usize], tag: Tag, payload: Bytes) -> Result<()> {
        check_frame_size(&payload)?;
        // Validate first so no copy is sent on a bad destination list.
        for &dst in dsts {
            if dst != self.rank && !self.peers.contains_key(&dst) {
                return Err(NetError::InvalidRank {
                    rank: dst,
                    world: self.world,
                });
            }
        }
        // `dsts` is a set (trait contract): dedupe — a duplicate would
        // re-lock a peer's non-reentrant writer mutex — and sort, so
        // concurrent multicasts on one endpoint acquire the per-peer locks
        // in one global order (no lock-ordering deadlock).
        let mut distinct: Vec<usize> = dsts.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut guards = Vec::with_capacity(distinct.len());
        for &dst in &distinct {
            if dst == self.rank {
                self.mailbox.deliver(Message {
                    src: self.rank,
                    tag,
                    payload: payload.clone(),
                });
            } else {
                guards.push(self.peers[&dst].writer.lock());
            }
        }
        // One resumable frame writer per destination, driven round-robin so
        // the copies overlap on the wire.
        let mut ops: Vec<FrameWrite<'_, &TcpStream>> = guards
            .iter()
            .map(|guard| FrameWrite::new(&**guard, tag.0, &payload))
            .collect();
        nio::drive_writes(&mut ops)?;
        Ok(())
    }

    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        if src >= self.world {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world,
            });
        }
        self.mailbox.recv(src, tag)
    }

    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        if src >= self.world {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world,
            });
        }
        self.mailbox.recv_timeout(src, tag, timeout)
    }

    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        if src >= self.world {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world,
            });
        }
        Ok(self.mailbox.try_recv(src, tag))
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for link in self.peers.values() {
            let _ = link.raw.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.reactor.lock().as_ref() {
            handle.thread().unpark();
        }
        self.mailbox.close();
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_ping_pong() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let (a, b) = (&endpoints[0], &endpoints[1]);
        a.send(1, Tag::app(0), Bytes::from_static(b"over tcp"))
            .unwrap();
        assert_eq!(b.recv(0, Tag::app(0)).unwrap(), "over tcp");
        b.send(0, Tag::app(1), Bytes::from_static(b"back")).unwrap();
        assert_eq!(a.recv(1, Tag::app(1)).unwrap(), "back");
    }

    #[test]
    fn self_send_loops_back() {
        let endpoints = build_tcp_fabric(1).unwrap();
        endpoints[0]
            .send(0, Tag::app(0), Bytes::from_static(b"self"))
            .unwrap();
        assert_eq!(endpoints[0].recv(0, Tag::app(0)).unwrap(), "self");
    }

    #[test]
    fn large_payload_crosses_intact() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let big: Vec<u8> = (0..1_000_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        endpoints[0]
            .send(1, Tag::app(5), Bytes::from(big.clone()))
            .unwrap();
        let got = endpoints[1].recv(0, Tag::app(5)).unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..], &big[..]);
    }

    #[test]
    fn four_node_all_to_all() {
        let endpoints = build_tcp_fabric(4).unwrap();
        std::thread::scope(|scope| {
            for ep in &endpoints {
                scope.spawn(move || {
                    let me = ep.rank();
                    for dst in (0..4).filter(|&d| d != me) {
                        ep.send(
                            dst,
                            Tag::app(0),
                            Bytes::copy_from_slice(&[me as u8, dst as u8]),
                        )
                        .unwrap();
                    }
                    for src in (0..4).filter(|&s| s != me) {
                        let got = ep.recv(src, Tag::app(0)).unwrap();
                        assert_eq!(&got[..], &[src as u8, me as u8]);
                    }
                });
            }
        });
    }

    #[test]
    fn fifo_order_per_peer_and_tag() {
        let endpoints = build_tcp_fabric(2).unwrap();
        for i in 0..100u32 {
            endpoints[0]
                .send(1, Tag::app(0), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for i in 0..100u32 {
            let got = endpoints[1].recv(0, Tag::app(0)).unwrap();
            assert_eq!(u32::from_le_bytes(got[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn multicast_reaches_every_destination() {
        let endpoints = build_tcp_fabric(4).unwrap();
        let payload: Vec<u8> = (0..500_000u32).map(|i| (i % 251) as u8).collect();
        endpoints[1]
            .multicast(&[0, 2, 3], Tag::app(9), Bytes::from(payload.clone()))
            .unwrap();
        for dst in [0usize, 2, 3] {
            let got = endpoints[dst].recv(1, Tag::app(9)).unwrap();
            assert_eq!(&got[..], &payload[..], "dst {dst}");
        }
    }

    #[test]
    fn multicast_including_self_delivers_locally() {
        let endpoints = build_tcp_fabric(2).unwrap();
        endpoints[0]
            .multicast(&[0, 1], Tag::app(2), Bytes::from_static(b"both"))
            .unwrap();
        assert_eq!(endpoints[0].recv(0, Tag::app(2)).unwrap(), "both");
        assert_eq!(endpoints[1].recv(0, Tag::app(2)).unwrap(), "both");
    }

    #[test]
    fn multicast_duplicate_destinations_deliver_once_without_deadlock() {
        let endpoints = build_tcp_fabric(2).unwrap();
        endpoints[0]
            .multicast(&[1, 1], Tag::app(0), Bytes::from_static(b"dup"))
            .unwrap();
        assert_eq!(endpoints[1].recv(0, Tag::app(0)).unwrap(), "dup");
        assert!(endpoints[1].try_recv(0, Tag::app(0)).unwrap().is_none());
    }

    #[test]
    fn multicast_rejects_invalid_rank_before_sending() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let err = endpoints[0]
            .multicast(&[1, 9], Tag::app(0), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, NetError::InvalidRank { rank: 9, .. }));
        // Nothing was sent to the valid destination either.
        assert!(endpoints[1].try_recv(0, Tag::app(0)).unwrap().is_none());
    }

    #[test]
    fn shutdown_unblocks_peers() {
        let mut endpoints = build_tcp_fabric(2).unwrap();
        let b = endpoints.pop().unwrap();
        let handle = std::thread::spawn(move || b.recv(0, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        drop(endpoints); // drops endpoint 0 → socket shutdown → b's reactor EOFs
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(NetError::Disconnected { .. })));
    }

    #[test]
    fn invalid_rank_rejected() {
        let endpoints = build_tcp_fabric(2).unwrap();
        assert!(matches!(
            endpoints[0].send(7, Tag::app(0), Bytes::new()),
            Err(NetError::InvalidRank { .. })
        ));
    }

    #[test]
    fn bidirectional_bulk_exchange_cannot_deadlock() {
        // Both sides write 2 MB at each other before either reads: blocking
        // writes would deadlock once the socket buffers fill; the
        // non-blocking writers plus the always-draining reactors must not.
        let endpoints = build_tcp_fabric(2).unwrap();
        let big = vec![0xABu8; 2_000_000];
        std::thread::scope(|scope| {
            for ep in &endpoints {
                let big = &big;
                scope.spawn(move || {
                    let other = 1 - ep.rank();
                    ep.send(other, Tag::app(0), Bytes::from(big.clone()))
                        .unwrap();
                    let got = ep.recv(other, Tag::app(0)).unwrap();
                    assert_eq!(got.len(), big.len());
                });
            }
        });
    }
}
