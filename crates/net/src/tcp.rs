//! Real-socket transport: a full TCP mesh over localhost.
//!
//! This is the "custom networking" substrate replacing the paper's Open MPI
//! deployment: each endpoint owns one TCP connection per peer, writes
//! length-prefixed frames, and runs one reader thread per peer that feeds
//! the tag-matched mailbox. Every byte the algorithms shuffle really crosses
//! the kernel's TCP stack, so the TCP examples and tests exercise exactly
//! the code path an EC2 deployment would.
//!
//! Frame format per message: `[tag: u32 LE][len: u32 LE][payload]`.
//! The peer's rank is implicit in the connection.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::{NetError, Result};
use crate::mailbox::Mailbox;
use crate::message::{Message, Tag};
use crate::transport::Transport;

/// Upper bound on a single frame's payload (1 GiB) — a sanity check against
/// corrupted length headers.
const MAX_FRAME: u32 = 1 << 30;

/// Builds a fully connected TCP fabric of `k` endpoints on loopback.
///
/// All listeners are bound first, then the mesh is established pairwise
/// (higher rank connects to lower rank's listener and introduces itself
/// with a 4-byte hello). Returns the endpoints in rank order.
pub fn build_tcp_fabric(k: usize) -> Result<Vec<TcpEndpoint>> {
    assert!(k >= 1, "need at least one endpoint");
    // Bind all listeners up front so connects cannot race binds.
    let mut listeners = Vec::with_capacity(k);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(k);
    for _ in 0..k {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }

    // streams[i] holds i's socket to each peer.
    let mut streams: Vec<HashMap<usize, TcpStream>> = (0..k).map(|_| HashMap::new()).collect();

    // Higher rank j dials lower rank i. Loopback connects to a bound
    // listener succeed without a concurrent accept (backlog), so a serial
    // connect-then-accept sweep cannot deadlock.
    for i in 0..k {
        for (j, peer_streams) in streams.iter_mut().enumerate().skip(i + 1) {
            let stream = TcpStream::connect(addrs[i])?;
            stream.set_nodelay(true)?;
            let mut s = stream.try_clone()?;
            s.write_all(&(j as u32).to_le_bytes())?;
            peer_streams.insert(i, stream);
        }
        // Accept the k-1-i inbound connections for listener i.
        for _ in (i + 1)..k {
            let (mut stream, _) = listeners[i].accept()?;
            stream.set_nodelay(true)?;
            let mut hello = [0u8; 4];
            stream.read_exact(&mut hello)?;
            let peer = u32::from_le_bytes(hello) as usize;
            if peer <= i || peer >= k {
                return Err(NetError::Io {
                    what: format!("unexpected hello rank {peer} on listener {i}"),
                });
            }
            streams[i].insert(peer, stream);
        }
    }

    Ok(streams
        .into_iter()
        .enumerate()
        .map(|(rank, peers)| TcpEndpoint::start(rank, k, peers))
        .collect())
}

struct PeerLink {
    writer: Mutex<TcpStream>,
    // Kept so shutdown() can force reader threads out of blocking reads.
    raw: TcpStream,
}

/// One endpoint of a TCP fabric.
///
/// Reader threads (one per peer) parse frames and deliver them into the
/// endpoint's [`Mailbox`]; `send` frames the payload onto the peer's socket
/// under a per-peer write lock. Dropping the endpoint shuts the sockets down
/// and joins the readers.
pub struct TcpEndpoint {
    rank: usize,
    world: usize,
    mailbox: Arc<Mailbox>,
    peers: HashMap<usize, PeerLink>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpEndpoint {
    fn start(rank: usize, world: usize, peers: HashMap<usize, TcpStream>) -> TcpEndpoint {
        let mailbox = Arc::new(Mailbox::new(rank));
        let live_readers = Arc::new(AtomicUsize::new(peers.len()));
        let mut links = HashMap::with_capacity(peers.len());
        let mut readers = Vec::with_capacity(peers.len());
        for (peer, stream) in peers {
            let reader_stream = stream.try_clone().expect("clone tcp stream");
            let raw = stream.try_clone().expect("clone tcp stream");
            links.insert(
                peer,
                PeerLink {
                    writer: Mutex::new(stream),
                    raw,
                },
            );
            let mb = Arc::clone(&mailbox);
            let live = Arc::clone(&live_readers);
            readers.push(std::thread::spawn(move || {
                read_loop(reader_stream, peer, &mb);
                // Last reader out closes the mailbox so pending recvs see
                // Disconnected instead of hanging.
                if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    mb.close();
                }
            }));
        }
        TcpEndpoint {
            rank,
            world,
            mailbox,
            peers: links,
            readers: Mutex::new(readers),
        }
    }

    /// Joins all reader threads after shutting the sockets down.
    fn teardown(&self) {
        self.shutdown();
        let mut readers = self.readers.lock();
        for handle in readers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn read_loop(mut stream: TcpStream, peer: usize, mailbox: &Mailbox) {
    let mut header = [0u8; 8];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // EOF or shutdown
        }
        let tag = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME {
            return; // corrupted header; treat as disconnect
        }
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        mailbox.deliver(Message {
            src: peer,
            tag: Tag(tag),
            payload: Bytes::from(payload),
        });
    }
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        if dst == self.rank {
            // Loopback without touching the wire, like MPI self-sends.
            self.mailbox.deliver(Message {
                src: self.rank,
                tag,
                payload,
            });
            return Ok(());
        }
        let link = self.peers.get(&dst).ok_or(NetError::InvalidRank {
            rank: dst,
            world: self.world,
        })?;
        let mut header = [0u8; 8];
        header[0..4].copy_from_slice(&tag.0.to_le_bytes());
        header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut writer = link.writer.lock();
        writer.write_all(&header)?;
        writer.write_all(&payload)?;
        Ok(())
    }

    fn recv(&self, src: usize, tag: Tag) -> Result<Bytes> {
        if src >= self.world {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world,
            });
        }
        self.mailbox.recv(src, tag)
    }

    fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Bytes> {
        if src >= self.world {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world,
            });
        }
        self.mailbox.recv_timeout(src, tag, timeout)
    }

    fn try_recv(&self, src: usize, tag: Tag) -> Result<Option<Bytes>> {
        if src >= self.world {
            return Err(NetError::InvalidRank {
                rank: src,
                world: self.world,
            });
        }
        Ok(self.mailbox.try_recv(src, tag))
    }

    fn shutdown(&self) {
        for link in self.peers.values() {
            let _ = link.raw.shutdown(std::net::Shutdown::Both);
        }
        self.mailbox.close();
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_ping_pong() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let (a, b) = (&endpoints[0], &endpoints[1]);
        a.send(1, Tag::app(0), Bytes::from_static(b"over tcp"))
            .unwrap();
        assert_eq!(b.recv(0, Tag::app(0)).unwrap(), "over tcp");
        b.send(0, Tag::app(1), Bytes::from_static(b"back")).unwrap();
        assert_eq!(a.recv(1, Tag::app(1)).unwrap(), "back");
    }

    #[test]
    fn self_send_loops_back() {
        let endpoints = build_tcp_fabric(1).unwrap();
        endpoints[0]
            .send(0, Tag::app(0), Bytes::from_static(b"self"))
            .unwrap();
        assert_eq!(endpoints[0].recv(0, Tag::app(0)).unwrap(), "self");
    }

    #[test]
    fn large_payload_crosses_intact() {
        let endpoints = build_tcp_fabric(2).unwrap();
        let big: Vec<u8> = (0..1_000_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        endpoints[0]
            .send(1, Tag::app(5), Bytes::from(big.clone()))
            .unwrap();
        let got = endpoints[1].recv(0, Tag::app(5)).unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..], &big[..]);
    }

    #[test]
    fn four_node_all_to_all() {
        let endpoints = build_tcp_fabric(4).unwrap();
        std::thread::scope(|scope| {
            for ep in &endpoints {
                scope.spawn(move || {
                    let me = ep.rank();
                    for dst in (0..4).filter(|&d| d != me) {
                        ep.send(
                            dst,
                            Tag::app(0),
                            Bytes::copy_from_slice(&[me as u8, dst as u8]),
                        )
                        .unwrap();
                    }
                    for src in (0..4).filter(|&s| s != me) {
                        let got = ep.recv(src, Tag::app(0)).unwrap();
                        assert_eq!(&got[..], &[src as u8, me as u8]);
                    }
                });
            }
        });
    }

    #[test]
    fn fifo_order_per_peer_and_tag() {
        let endpoints = build_tcp_fabric(2).unwrap();
        for i in 0..100u32 {
            endpoints[0]
                .send(1, Tag::app(0), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for i in 0..100u32 {
            let got = endpoints[1].recv(0, Tag::app(0)).unwrap();
            assert_eq!(u32::from_le_bytes(got[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn shutdown_unblocks_peers() {
        let mut endpoints = build_tcp_fabric(2).unwrap();
        let b = endpoints.pop().unwrap();
        let handle = std::thread::spawn(move || b.recv(0, Tag::app(0)));
        std::thread::sleep(Duration::from_millis(20));
        drop(endpoints); // drops endpoint 0 → socket shutdown → b's reader EOFs
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(NetError::Disconnected { .. })));
    }

    #[test]
    fn invalid_rank_rejected() {
        let endpoints = build_tcp_fabric(2).unwrap();
        assert!(matches!(
            endpoints[0].send(7, Tag::app(0), Bytes::new()),
            Err(NetError::InvalidRank { .. })
        ));
    }
}
