//! SPMD cluster execution.
//!
//! The paper's deployment (Fig. 8) is a coordinator plus `K` worker
//! processes running the same program. Here each worker is a thread running
//! the user's closure against its own [`Communicator`]; the harness thread
//! plays the coordinator (it stages per-node inputs before the run and
//! collects results and the transfer trace after). Workers communicate only
//! through the fabric — in-memory channels or real TCP sockets — and
//! worlds of up to `K = 128` ranks are supported on one host.
//!
//! ```
//! use bytes::Bytes;
//! use cts_net::cluster::{run_spmd, ClusterConfig};
//! use cts_net::message::Tag;
//!
//! // A 3-rank ring exchange over the in-memory fabric.
//! let run = run_spmd(&ClusterConfig::local(3), |comm| {
//!     let next = (comm.rank() + 1) % 3;
//!     comm.send(next, Tag::app(0), Bytes::copy_from_slice(&[comm.rank() as u8]))
//!         .unwrap();
//!     comm.recv((comm.rank() + 2) % 3, Tag::app(0)).unwrap()[0]
//! })
//! .unwrap();
//! assert_eq!(run.results, vec![2, 0, 1]);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cts_core::metrics::{Histogram, MetricsHub};
use parking_lot::Mutex;

use crate::comm::{BcastAlgorithm, Communicator};
use crate::error::Result;
use crate::fabric::ShuffleFabric;
use crate::fault::{FaultRule, FaultyTransport};
use crate::local::LocalFabric;
use crate::rate::{Nic, NicMeter, NicProfile};
use crate::span::{SpanCollector, SpanLog};
use crate::tcp::build_tcp_fabric;
use crate::trace::{Trace, TraceCollector};
use crate::transport::Transport;
use crate::udp::{build_udp_fabric_with, UdpConfig};

/// Which fabric the cluster runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process mailboxes (fast; the default for experiments).
    #[default]
    Local,
    /// Real TCP sockets over loopback.
    Tcp,
    /// Physical UDP/IP multicast for group sends, with the TCP mesh as the
    /// unicast/control channel ([`udp`](crate::udp)). Selecting the
    /// [`ShuffleFabric::UdpMulticast`] fabric resolves to this transport
    /// at build time ([`ClusterConfig::resolved_transport`]); requires
    /// kernel multicast support (bring-up fails descriptively otherwise).
    Udp,
}

/// A fault injected on one rank's outgoing traffic: the rank's transport
/// is wrapped in a [`FaultyTransport`] applying `rule` to every send —
/// the cluster-level hook the straggler/failure tests use to slow down or
/// kill one node's shuffle egress deterministically.
#[derive(Clone)]
pub struct ClusterFault {
    /// The rank whose sends are faulted.
    pub rank: usize,
    /// The rule applied to each of that rank's outgoing messages.
    pub rule: Arc<FaultRule>,
}

impl std::fmt::Debug for ClusterFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterFault")
            .field("rank", &self.rank)
            .field("rule", &"<rule>")
            .finish()
    }
}

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker nodes `K` (up to
    /// [`registry::MAX_WORLD`](crate::registry::MAX_WORLD) = 128).
    pub k: usize,
    /// Fabric type.
    pub transport: TransportKind,
    /// Optional per-node emulated NIC (egress rate cap, per-transfer
    /// latency, multicast penalty). `None` runs at memory/loopback speed.
    pub nic: Option<NicProfile>,
    /// Legacy broadcast algorithm (the [`Communicator::broadcast`] path).
    pub bcast: BcastAlgorithm,
    /// How [`Communicator::multicast`] group sends hit the wire.
    pub fabric: ShuffleFabric,
    /// Whether to record a transfer trace.
    pub trace_enabled: bool,
    /// Whether to record per-stage wall-clock spans (the observability
    /// plane's timing layer; a bounded ring, on by default).
    pub spans_enabled: bool,
    /// Tuning (chunk size, NACK cadence, retransmit budgets, fault
    /// injection, stats sink) for the [`TransportKind::Udp`] fabric;
    /// ignored by the others.
    pub udp: UdpConfig,
    /// Optional message-level fault on one rank's sends (straggler
    /// slowdown, blackhole, corruption). Applies on every transport kind.
    pub fault: Option<ClusterFault>,
}

impl ClusterConfig {
    /// An in-memory cluster of `k` nodes with tracing on.
    pub fn local(k: usize) -> Self {
        ClusterConfig {
            k,
            transport: TransportKind::Local,
            nic: None,
            bcast: BcastAlgorithm::default(),
            fabric: ShuffleFabric::default(),
            trace_enabled: true,
            spans_enabled: true,
            udp: UdpConfig::default(),
            fault: None,
        }
    }

    /// A loopback-TCP cluster of `k` nodes with tracing on.
    pub fn tcp(k: usize) -> Self {
        ClusterConfig {
            transport: TransportKind::Tcp,
            ..ClusterConfig::local(k)
        }
    }

    /// A physical UDP-multicast cluster of `k` nodes with tracing on
    /// (equivalent to `local(k).with_fabric(ShuffleFabric::UdpMulticast)`).
    pub fn udp(k: usize) -> Self {
        ClusterConfig::local(k).with_fabric(ShuffleFabric::UdpMulticast)
    }

    /// Sets the per-node egress rate limit (bytes/second), keeping any
    /// other NIC parameters already configured.
    pub fn with_rate_limit(mut self, bps: f64) -> Self {
        let mut nic = self.nic.unwrap_or_default();
        nic.rate_bytes_per_sec = Some(bps);
        self.nic = Some(nic);
        self
    }

    /// Installs a full emulated-NIC profile on every node.
    pub fn with_nic(mut self, nic: NicProfile) -> Self {
        self.nic = Some(nic);
        self
    }

    /// Selects the legacy broadcast algorithm.
    pub fn with_bcast(mut self, algo: BcastAlgorithm) -> Self {
        self.bcast = algo;
        self
    }

    /// Selects the shuffle fabric. The `transport` field is left untouched
    /// — [`resolved_transport`](Self::resolved_transport) couples the two
    /// at build time instead, so choosing `UdpMulticast` and later moving
    /// back to an emulated fabric never clobbers an explicitly configured
    /// transport (e.g. `tcp(k)` stays TCP through a fabric sweep).
    pub fn with_fabric(mut self, fabric: ShuffleFabric) -> Self {
        self.fabric = fabric;
        self
    }

    /// The transport the cluster will actually build:
    /// [`ShuffleFabric::UdpMulticast`] requires the UDP fabric — the only
    /// substrate that can realize it physically — and overrides the
    /// configured kind; every other fabric runs on whatever `transport`
    /// says.
    pub fn resolved_transport(&self) -> TransportKind {
        if self.fabric == ShuffleFabric::UdpMulticast {
            TransportKind::Udp
        } else {
            self.transport
        }
    }

    /// Overrides the UDP-fabric tuning (chunk size, NACK cadence,
    /// retransmit budgets, datagram fault injection, stats sink).
    pub fn with_udp(mut self, udp: UdpConfig) -> Self {
        self.udp = udp;
        self
    }

    /// Injects a message-level fault on `rank`'s outgoing traffic (see
    /// [`ClusterFault`]).
    pub fn with_fault(mut self, rank: usize, rule: Arc<FaultRule>) -> Self {
        self.fault = Some(ClusterFault { rank, rule });
        self
    }

    /// Enables or disables trace recording.
    pub fn with_trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Enables or disables stage-span recording.
    pub fn with_spans(mut self, enabled: bool) -> Self {
        self.spans_enabled = enabled;
        self
    }
}

/// The outcome of an SPMD run: one result per rank plus the transfer trace.
#[derive(Debug)]
pub struct ClusterRun<R> {
    /// Per-rank return values, rank order.
    pub results: Vec<R>,
    /// Recorded transfer trace (empty if tracing was disabled). On a
    /// [`SharedFabric`] this is already filtered to the submitting job.
    pub trace: Trace,
    /// Recorded stage spans (empty if spans were disabled), filtered to
    /// the submitting job.
    pub spans: SpanLog,
}

/// A job's identity on a [`SharedFabric`]: the tag-namespace `slot`
/// (0 = exclusive, [`Tag::scoped`](crate::message::Tag::scoped)) and a
/// process-unique `id` stamped on trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobBinding {
    /// Tag-namespace slot, `0..=`[`Tag::MAX_JOB_SLOT`](crate::message::Tag::MAX_JOB_SLOT).
    pub slot: u8,
    /// Trace/job identifier (need not be dense; must be unique per live job).
    pub id: u32,
}

impl JobBinding {
    /// The exclusive binding used by one-shot runs: slot 0 (identity tag
    /// scoping, full 24-bit sequence space), job id 0.
    pub const ROOT: JobBinding = JobBinding { slot: 0, id: 0 };
}

/// A resident cluster fabric that outlives any single job.
///
/// This inverts the one-shot ownership model: [`run_spmd`] builds a fabric,
/// runs one job, and tears it down, while a `SharedFabric` is built once
/// (transports, trace collector, optional per-rank fault wrapping) and then
/// serves many [`run_job`](SharedFabric::run_job) calls — concurrently, from
/// multiple threads — each isolated by its [`JobBinding`]:
///
/// - **tags**: every `Communicator` entry point rewrites tags into the
///   job's slot namespace, so two jobs using `Tag::app(0)` on the same
///   mailbox never cross-match;
/// - **traces**: events are stamped with the job id and the returned
///   [`ClusterRun::trace`] is pre-filtered to it;
/// - **pacing**: each job gets its own emulated [`Nic`] token buckets
///   (from `nic_override` or the cluster default), so one tenant
///   saturating its egress budget stalls only its own sends.
///
/// A panicking job is catastrophic: it shuts down the whole fabric (to
/// unblock every peer, including other jobs' ranks) before re-raising the
/// panic. Engine-level failures should surface as `Err` results instead.
pub struct SharedFabric {
    transports: Vec<Arc<dyn Transport>>,
    trace: Arc<TraceCollector>,
    spans: Arc<SpanCollector>,
    metrics: Arc<MetricsHub>,
    /// Distribution of individual NIC token-bucket stalls (ns), shared by
    /// every job's NICs.
    nic_wait_hist: Arc<Histogram>,
    /// Per-job NIC meters, created lazily on the job's first shaped run.
    meters: Mutex<Vec<(u32, Arc<NicMeter>)>>,
    config: ClusterConfig,
}

impl std::fmt::Debug for SharedFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedFabric")
            .field("k", &self.config.k)
            .field("transport", &self.config.resolved_transport())
            .finish()
    }
}

impl SharedFabric {
    /// Builds the fabric for `config`: transports for all `k` ranks, the
    /// shared trace collector, and any configured per-rank fault wrapper.
    pub fn build(config: &ClusterConfig) -> Result<SharedFabric> {
        let k = config.k;
        assert!(
            (1..=crate::registry::MAX_WORLD).contains(&k),
            "world size {k} outside 1..={} (trace masks are 128-bit)",
            crate::registry::MAX_WORLD
        );
        let trace = Arc::new(TraceCollector::new(config.trace_enabled));
        let spans = Arc::new(SpanCollector::new(config.spans_enabled));
        let metrics = Arc::new(MetricsHub::new());
        let nic_wait_hist = metrics.histogram_scaled("cts_nic_wait_seconds", 1e-9);
        let mut transports: Vec<Arc<dyn Transport>> = match config.resolved_transport() {
            TransportKind::Local => {
                let fabric = LocalFabric::new(k);
                (0..k)
                    .map(|r| Arc::new(fabric.endpoint(r)) as Arc<dyn Transport>)
                    .collect()
            }
            TransportKind::Tcp => build_tcp_fabric(k)?
                .into_iter()
                .map(|ep| Arc::new(ep) as Arc<dyn Transport>)
                .collect(),
            TransportKind::Udp => build_udp_fabric_with(k, config.udp.clone())?
                .into_iter()
                .map(|ep| Arc::new(ep) as Arc<dyn Transport>)
                .collect(),
        };
        if let Some(fault) = &config.fault {
            assert!(
                fault.rank < k,
                "faulted rank {} outside world {k}",
                fault.rank
            );
            let rule = Arc::clone(&fault.rule);
            let inner = Arc::clone(&transports[fault.rank]);
            transports[fault.rank] = Arc::new(FaultyTransport::new(
                inner,
                Box::new(move |dst, tag, payload, idx| rule(dst, tag, payload, idx)),
            ));
        }
        Ok(SharedFabric {
            transports,
            trace,
            spans,
            metrics,
            nic_wait_hist,
            meters: Mutex::new(Vec::new()),
            config: config.clone(),
        })
    }

    /// World size `K`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// The configuration the fabric was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Rank `rank`'s transport endpoint (for health monitors that need raw
    /// transport access on exclusive fabrics).
    pub fn transport(&self, rank: usize) -> Arc<dyn Transport> {
        Arc::clone(&self.transports[rank])
    }

    /// A snapshot of the full (all-jobs) trace recorded so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.trace.snapshot()
    }

    /// A snapshot of the retained (all-jobs) stage spans.
    pub fn spans_snapshot(&self) -> SpanLog {
        self.spans.snapshot()
    }

    /// The fabric's metric registry. Subsystems riding this fabric (the
    /// job runtime, the sort service) register their instruments here so
    /// one render call exposes the whole plane.
    pub fn metrics(&self) -> &Arc<MetricsHub> {
        &self.metrics
    }

    /// The per-job NIC meter for `job`, created on first use.
    pub fn job_meter(&self, job: u32) -> Arc<NicMeter> {
        let mut meters = self.meters.lock();
        if let Some((_, m)) = meters.iter().find(|(id, _)| *id == job) {
            return Arc::clone(m);
        }
        let m = Arc::new(NicMeter::new());
        meters.push((job, Arc::clone(&m)));
        m
    }

    /// All per-job NIC meters created so far, in creation order.
    pub fn job_meters(&self) -> Vec<(u32, Arc<NicMeter>)> {
        self.meters
            .lock()
            .iter()
            .map(|(id, m)| (*id, Arc::clone(m)))
            .collect()
    }

    /// Renders the fabric's full metric inventory as Prometheus text:
    /// everything registered on the hub, plus the UDP fabric's datagram
    /// counters when the physical multicast transport is in use.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.metrics.render_prometheus();
        if self.config.resolved_transport() == TransportKind::Udp {
            let st = &self.config.udp.stats;
            for (name, v) in [
                ("cts_udp_datagrams_sent_total", st.datagrams_sent()),
                ("cts_udp_datagrams_received_total", st.datagrams_received()),
                ("cts_udp_dropped_by_fault_total", st.dropped_by_fault()),
                ("cts_udp_messages_completed_total", st.messages_completed()),
                ("cts_udp_nacks_sent_total", st.nacks_sent()),
                ("cts_udp_status_rounds_total", st.status_rounds()),
                (
                    "cts_udp_mcast_repair_chunks_total",
                    st.mcast_repair_chunks(),
                ),
                ("cts_udp_tcp_repair_chunks_total", st.tcp_repair_chunks()),
            ] {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
        }
        out
    }

    /// Shuts down every transport, waking any blocked receiver. Irreversible.
    pub fn shutdown(&self) {
        for t in &self.transports {
            t.shutdown();
        }
    }

    /// Runs one SPMD job over the shared fabric: `f` on every rank with
    /// `inputs[rank]`, each rank's [`Communicator`] scoped to `binding`.
    ///
    /// `nic_override` replaces the cluster-default NIC profile for this job
    /// only — the per-job backpressure hook: a throttled tenant's token
    /// buckets pace that tenant's sends without touching anyone else's.
    ///
    /// Safe to call concurrently from multiple threads as long as each live
    /// job uses a distinct nonzero slot (slot 0 is reserved for exclusive
    /// runs). If any rank panics the whole fabric is shut down and the
    /// first panic re-raised.
    ///
    /// # Panics
    /// Panics if `inputs.len() != k`.
    pub fn run_job<I, R, F>(
        &self,
        binding: JobBinding,
        nic_override: Option<NicProfile>,
        inputs: Vec<I>,
        f: F,
    ) -> Result<ClusterRun<R>>
    where
        I: Send,
        R: Send,
        F: Fn(&Communicator, I) -> R + Send + Sync,
    {
        let k = self.config.k;
        assert_eq!(inputs.len(), k, "need exactly one input per node");
        let profile = nic_override.or(self.config.nic);

        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..k).map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<Box<dyn std::any::Any + Send>>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            let meter = profile.map(|_| self.job_meter(binding.id));
            for rank in 0..k {
                let transport = Arc::clone(&self.transports[rank]);
                let trace = Arc::clone(&self.trace);
                let spans = Arc::clone(&self.spans);
                let metrics = Arc::clone(&self.metrics);
                let nic = profile.map(|p| {
                    let meter = Arc::clone(meter.as_ref().expect("meter exists when shaped"));
                    Arc::new(Nic::new(p).with_meter(meter, Some(Arc::clone(&self.nic_wait_hist))))
                });
                let bcast = self.config.bcast;
                let fabric = self.config.fabric;
                let slots = &slots;
                let results = &results;
                let panics = &panics;
                let this = &*self;
                let f = &f;
                scope.spawn(move || {
                    let comm = Communicator::new(transport, trace, nic, bcast)
                        .with_fabric(fabric)
                        .with_job(binding.slot, binding.id)
                        .with_spans(spans)
                        .with_metrics(metrics);
                    let input = slots[rank].lock().take().expect("input taken once");
                    match catch_unwind(AssertUnwindSafe(|| f(&comm, input))) {
                        Ok(r) => {
                            comm.finish_spans();
                            *results[rank].lock() = Some(r);
                        }
                        Err(payload) => {
                            // Unblock every peer — including other jobs'
                            // ranks — before propagating.
                            this.shutdown();
                            panics.lock().push(payload);
                        }
                    }
                });
            }
        });

        let mut panics = panics.into_inner();
        if let Some(first) = panics.drain(..).next() {
            resume_unwind(first);
        }

        let results = results
            .into_iter()
            .map(|m| m.into_inner().expect("every rank produced a result"))
            .collect();
        Ok(ClusterRun {
            results,
            trace: self.trace.snapshot().for_job(binding.id),
            spans: self.spans.snapshot().for_job(binding.id),
        })
    }
}

/// Runs `f` on every rank of a fresh fabric, SPMD style.
///
/// If any node panics, the whole fabric is shut down (so no peer blocks
/// forever on a receive) and the first panic is re-raised on the caller.
pub fn run_spmd<R, F>(config: &ClusterConfig, f: F) -> Result<ClusterRun<R>>
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    run_spmd_with_inputs(config, vec![(); config.k], move |comm, ()| f(comm))
}

/// Like [`run_spmd`] but hands `inputs[rank]` to each node — the
/// coordinator's file-placement step.
///
/// Implemented as an ephemeral [`SharedFabric`] running a single job at
/// [`JobBinding::ROOT`], so every one-shot caller exercises the same code
/// path the resident runtime uses.
///
/// # Panics
/// Panics if `inputs.len() != config.k`.
pub fn run_spmd_with_inputs<I, R, F>(
    config: &ClusterConfig,
    inputs: Vec<I>,
    f: F,
) -> Result<ClusterRun<R>>
where
    I: Send,
    R: Send,
    F: Fn(&Communicator, I) -> R + Send + Sync,
{
    let fabric = SharedFabric::build(config)?;
    fabric.run_job(JobBinding::ROOT, None, inputs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;
    use bytes::Bytes;

    #[test]
    fn spmd_ring_local() {
        let run = run_spmd(&ClusterConfig::local(4), |comm| {
            let me = comm.rank();
            let next = (me + 1) % 4;
            let prev = (me + 3) % 4;
            comm.send(next, Tag::app(0), Bytes::copy_from_slice(&[me as u8]))
                .unwrap();
            comm.recv(prev, Tag::app(0)).unwrap()[0] as usize
        })
        .unwrap();
        assert_eq!(run.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn spmd_ring_tcp() {
        let run = run_spmd(&ClusterConfig::tcp(3), |comm| {
            let me = comm.rank();
            let next = (me + 1) % 3;
            let prev = (me + 2) % 3;
            comm.send(next, Tag::app(0), Bytes::copy_from_slice(&[me as u8]))
                .unwrap();
            comm.recv(prev, Tag::app(0)).unwrap()[0] as usize
        })
        .unwrap();
        assert_eq!(run.results, vec![2, 0, 1]);
    }

    #[test]
    fn inputs_are_distributed_by_rank() {
        let inputs: Vec<String> = (0..3).map(|i| format!("input-{i}")).collect();
        let run = run_spmd_with_inputs(&ClusterConfig::local(3), inputs, |comm, input| {
            format!("{}@{}", input, comm.rank())
        })
        .unwrap();
        assert_eq!(run.results, vec!["input-0@0", "input-1@1", "input-2@2"]);
    }

    #[test]
    fn trace_is_collected() {
        let run = run_spmd(&ClusterConfig::local(2), |comm| {
            comm.set_stage("Shuffle");
            if comm.rank() == 0 {
                comm.send(1, Tag::app(0), Bytes::from(vec![0u8; 42]))
                    .unwrap();
            } else {
                comm.recv(0, Tag::app(0)).unwrap();
            }
        })
        .unwrap();
        assert_eq!(run.trace.stage_bytes("Shuffle"), 42);
    }

    #[test]
    fn node_panic_propagates_without_hanging() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_spmd(&ClusterConfig::local(3), |comm| {
                if comm.rank() == 1 {
                    panic!("node 1 exploded");
                }
                // Ranks 0 and 2 wait for a message that never comes; the
                // abort must wake them.
                let _ = comm.recv(1, Tag::app(0));
            })
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("exploded"));
    }

    #[test]
    fn fabric_selection_resolves_transport_without_clobbering_it() {
        let cfg = ClusterConfig::local(3).with_fabric(ShuffleFabric::UdpMulticast);
        assert_eq!(cfg.resolved_transport(), TransportKind::Udp);
        // Moving off the physical fabric must not leave the UDP transport
        // (and its kernel multicast requirement) behind …
        let cfg = cfg.with_fabric(ShuffleFabric::Multicast);
        assert_eq!(cfg.resolved_transport(), TransportKind::Local);
        // … and an explicitly chosen transport survives a fabric sweep
        // through udp-multicast and back.
        let cfg = ClusterConfig::tcp(3)
            .with_fabric(ShuffleFabric::UdpMulticast)
            .with_fabric(ShuffleFabric::Fanout);
        assert_eq!(cfg.transport, TransportKind::Tcp);
        assert_eq!(cfg.resolved_transport(), TransportKind::Tcp);
    }

    #[test]
    fn spmd_multicast_over_udp() {
        if crate::udp::skip_without_multicast() {
            return;
        }
        let run = run_spmd(&ClusterConfig::udp(3), |comm| {
            comm.set_stage("Shuffle");
            let data = (comm.rank() == 1).then(|| Bytes::from(vec![7u8; 3000]));
            comm.multicast(1, &[0, 1, 2], Tag::new(Tag::BCAST, 0), data)
                .unwrap()
                .len()
        })
        .unwrap();
        assert_eq!(run.results, vec![3000, 3000, 3000]);
        // Physically one egress crossing: the trace records wire_copies = 1.
        assert_eq!(run.trace.stage_wire_sends("Shuffle"), 1);
    }

    #[test]
    fn barrier_over_both_fabrics() {
        for cfg in [ClusterConfig::local(5), ClusterConfig::tcp(5)] {
            let run = run_spmd(&cfg, |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
                comm.rank()
            })
            .unwrap();
            assert_eq!(run.results, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn shared_fabric_runs_concurrent_jobs_isolated() {
        // Two jobs, same world, same tags, interleaved on one fabric: each
        // must see only its own traffic and its own trace events.
        let fabric = SharedFabric::build(&ClusterConfig::local(3)).unwrap();
        let run_ring = |slot: u8, id: u32, byte: u8| {
            fabric
                .run_job(
                    JobBinding { slot, id },
                    None,
                    vec![byte; 3],
                    |comm: &Communicator, b: u8| {
                        comm.set_stage("Shuffle");
                        let next = (comm.rank() + 1) % 3;
                        let prev = (comm.rank() + 2) % 3;
                        for _ in 0..16 {
                            comm.send(next, Tag::app(0), Bytes::copy_from_slice(&[b]))
                                .unwrap();
                            assert_eq!(comm.recv(prev, Tag::app(0)).unwrap()[0], b);
                            comm.barrier().unwrap();
                        }
                        b
                    },
                )
                .unwrap()
        };
        let (a, b) = std::thread::scope(|s| {
            let ja = s.spawn(|| run_ring(1, 0xA1, 0x11));
            let jb = s.spawn(|| run_ring(2, 0xB2, 0x22));
            (ja.join().unwrap(), jb.join().unwrap())
        });
        assert_eq!(a.results, vec![0x11; 3]);
        assert_eq!(b.results, vec![0x22; 3]);
        // Per-job traces are disjoint and each accounts only its own bytes.
        assert_eq!(a.trace.jobs(), vec![0xA1]);
        assert_eq!(b.trace.jobs(), vec![0xB2]);
        assert_eq!(a.trace.stage_bytes("Shuffle"), 16 * 3);
        assert_eq!(b.trace.stage_bytes("Shuffle"), 16 * 3);
        // The fabric-wide trace saw both.
        let all = fabric.trace_snapshot();
        assert_eq!(all.jobs(), vec![0xA1, 0xB2]);
    }

    #[test]
    fn stage_spans_bracket_each_job_per_rank() {
        let fabric = SharedFabric::build(&ClusterConfig::local(3)).unwrap();
        let run = fabric
            .run_job(
                JobBinding { slot: 1, id: 42 },
                None,
                vec![(); 3],
                |comm: &Communicator, ()| {
                    comm.set_stage("Map");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    comm.set_stage("Shuffle");
                    comm.barrier().unwrap();
                },
            )
            .unwrap();
        // Two stages × three ranks, all stamped with the job id.
        assert_eq!(run.spans.spans.len(), 6);
        assert!(run.spans.spans.iter().all(|s| s.job == 42));
        assert_eq!(run.spans.stages_in_order(), vec!["Map", "Shuffle"]);
        assert_eq!(run.spans.stage_durations_ns("Map").len(), 3);
        // The Map stage really took its sleep on every rank.
        assert!(run
            .spans
            .stage_durations_ns("Map")
            .iter()
            .all(|&d| d >= 2_000_000));
        // The final stage was closed by the harness, not left dangling.
        assert!(run.spans.stage_durations_ns("Shuffle").len() == 3);
        // Spans disabled → nothing recorded, and set_stage stays legal.
        let quiet = SharedFabric::build(&ClusterConfig::local(2).with_spans(false)).unwrap();
        let run = quiet
            .run_job(JobBinding::ROOT, None, vec![(); 2], |comm, ()| {
                comm.set_stage("Map");
            })
            .unwrap();
        assert!(run.spans.spans.is_empty());
    }

    #[test]
    fn job_meters_attribute_nic_waits_per_tenant() {
        // Job A is rate-limited hard, job B runs unshaped: only A's meter
        // may record token-bucket stalls.
        let fabric = SharedFabric::build(&ClusterConfig::local(2)).unwrap();
        let slow = NicProfile::rate_limited(1_000_000.0);
        fabric
            .run_job(
                JobBinding { slot: 1, id: 1 },
                Some(slow),
                vec![(); 2],
                |comm: &Communicator, ()| {
                    if comm.rank() == 0 {
                        comm.send(1, Tag::app(0), Bytes::from(vec![0u8; 300_000]))
                            .unwrap();
                        comm.send(1, Tag::app(0), Bytes::from(vec![0u8; 1]))
                            .unwrap();
                    } else {
                        comm.recv(0, Tag::app(0)).unwrap();
                        comm.recv(0, Tag::app(0)).unwrap();
                    }
                },
            )
            .unwrap();
        let meters = fabric.job_meters();
        assert_eq!(meters.len(), 1, "unshaped jobs create no meter");
        let (id, meter) = &meters[0];
        assert_eq!(*id, 1);
        assert!(meter.waits.get() >= 1);
        assert!(meter.wait_ns.get() > 0);
        // The fabric-wide histogram saw the same stalls.
        let text = fabric.render_prometheus();
        assert!(text.contains("cts_nic_wait_seconds_count"));
    }

    #[test]
    fn shared_fabric_reuses_transports_across_sequential_jobs() {
        let fabric = SharedFabric::build(&ClusterConfig::tcp(2)).unwrap();
        for (slot, id) in [(1u8, 7u32), (2, 8), (1, 9)] {
            let run = fabric
                .run_job(JobBinding { slot, id }, None, vec![(); 2], |comm, ()| {
                    if comm.rank() == 0 {
                        comm.send(1, Tag::app(3), Bytes::from(vec![id as u8; 4]))
                            .unwrap();
                        0
                    } else {
                        comm.recv(0, Tag::app(3)).unwrap()[0] as u32
                    }
                })
                .unwrap();
            assert_eq!(run.results, vec![0, id]);
            assert_eq!(run.trace.jobs(), vec![id]);
        }
    }

    #[test]
    fn rate_limited_cluster_throttles() {
        use std::time::Instant;
        // 1 MB/s egress; send 200 KB beyond burst → ≥ ~0.13 s.
        let cfg = ClusterConfig::local(2).with_rate_limit(1_000_000.0);
        let start = Instant::now();
        run_spmd(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::app(0), Bytes::from(vec![0u8; 200_000]))
                    .unwrap();
                comm.send(1, Tag::app(0), Bytes::from(vec![0u8; 1]))
                    .unwrap();
            } else {
                comm.recv(0, Tag::app(0)).unwrap();
                comm.recv(0, Tag::app(0)).unwrap();
            }
        })
        .unwrap();
        assert!(start.elapsed().as_millis() >= 100);
    }
}
