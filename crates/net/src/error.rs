//! Error type for the message-passing substrate.

/// Errors produced by transports, mailboxes, and collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer (or the whole fabric) has shut down; no further messages
    /// will arrive.
    Disconnected {
        /// Which endpoint observed the disconnect.
        rank: usize,
    },
    /// A blocking receive exceeded its deadline.
    Timeout {
        /// The source rank the receive was waiting on.
        src: usize,
        /// The tag the receive was waiting on.
        tag: u32,
    },
    /// A rank outside `0..world_size` was addressed.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The fabric's world size.
        world: usize,
    },
    /// An operating-system level I/O failure (TCP transport).
    Io {
        /// Stringified `std::io::Error`.
        what: String,
    },
    /// A collective was invoked inconsistently (e.g. broadcast root not in
    /// the group, or a member list not containing the caller).
    CollectiveMisuse {
        /// Description of the inconsistency.
        what: String,
    },
    /// Fault injection dropped this message (testing only).
    InjectedFault {
        /// Description supplied by the fault rule.
        what: String,
    },
    /// The health layer declared this peer dead: its heartbeats stopped
    /// and the bounded probe budget expired. Unlike [`Disconnected`]
    /// (whole-fabric teardown), this names the one peer that will never
    /// speak again, so callers can recover around it.
    ///
    /// [`Disconnected`]: NetError::Disconnected
    PeerDead {
        /// Which endpoint observed the death.
        rank: usize,
        /// The peer declared dead.
        peer: usize,
    },
    /// A lazy TCP dial exhausted its bounded retry budget without the
    /// peer ever accepting.
    ConnectFailed {
        /// The rank that could not be reached.
        rank: usize,
        /// The address dialed (stringified socket address).
        addr: String,
        /// How many connect attempts were made before giving up.
        attempts: u32,
        /// The last OS error, stringified.
        last: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected { rank } => write!(f, "endpoint {rank} disconnected"),
            NetError::Timeout { src, tag } => {
                write!(f, "timed out waiting for message from {src} tag {tag:#x}")
            }
            NetError::InvalidRank { rank, world } => {
                write!(f, "rank {rank} out of range for world of {world}")
            }
            NetError::Io { what } => write!(f, "I/O error: {what}"),
            NetError::CollectiveMisuse { what } => write!(f, "collective misuse: {what}"),
            NetError::InjectedFault { what } => write!(f, "injected fault: {what}"),
            NetError::PeerDead { rank, peer } => {
                write!(f, "endpoint {rank}: peer {peer} declared dead")
            }
            NetError::ConnectFailed {
                rank,
                addr,
                attempts,
                last,
            } => write!(
                f,
                "connect to rank {rank} at {addr} failed after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io {
            what: e.to_string(),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            NetError::Disconnected { rank: 3 }.to_string(),
            "endpoint 3 disconnected"
        );
        assert!(NetError::Timeout { src: 1, tag: 255 }
            .to_string()
            .contains("0xff"));
        assert!(NetError::InvalidRank { rank: 9, world: 4 }
            .to_string()
            .contains("world of 4"));
    }

    #[test]
    fn dead_and_connect_failures_name_the_peer() {
        let dead = NetError::PeerDead { rank: 0, peer: 7 };
        assert_eq!(dead.to_string(), "endpoint 0: peer 7 declared dead");
        let conn = NetError::ConnectFailed {
            rank: 3,
            addr: "127.0.0.1:4242".into(),
            attempts: 8,
            last: "connection refused".into(),
        };
        let msg = conn.to_string();
        assert!(msg.contains("rank 3"));
        assert!(msg.contains("127.0.0.1:4242"));
        assert!(msg.contains("8 attempts"));
        assert!(msg.contains("refused"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe burst");
        let net: NetError = io.into();
        assert!(net.to_string().contains("pipe burst"));
    }
}
