//! Per-rank liveness: heartbeats, deadlines, and the Alive → Suspect →
//! Dead state machine.
//!
//! Every rank in a recovery-enabled job runs a [`Heartbeat`] thread that
//! beacons to all peers on [`Tag::HEARTBEAT`], and keeps a [`HealthBoard`]
//! that drains those beacons whenever the engine polls. A peer that stops
//! beaconing moves `Alive → Suspect` once its deadline lapses, then
//! through a bounded sequence of exponentially backed-off probe windows
//! before it is finally declared `Dead` — late heartbeats at any point
//! snap it back to `Alive`, so a scheduling hiccup never kills a healthy
//! rank. On death the board calls
//! [`Transport::mark_peer_dead`], turning any receive still blocked on
//! that peer into the typed
//! [`PeerDead`](crate::error::NetError::PeerDead) error instead of an
//! indefinite wait.
//!
//! Detection is heartbeat-only on purpose: the in-memory fabric gives
//! peers no socket EOF to observe when an endpoint stops (its mailbox
//! just goes quiet), so deadline expiry is the one signal that works
//! uniformly across local, TCP, and UDP fabrics.
//!
//! ```
//! use std::time::Duration;
//! use cts_net::health::{HealthConfig, Liveness};
//!
//! let cfg = HealthConfig::from_heartbeat(Duration::from_millis(10));
//! // A peer is only declared dead after the suspect deadline plus every
//! // probe window expires — far longer than one missed beacon.
//! assert!(cfg.death_deadline() > 10 * cfg.heartbeat);
//! assert_eq!(Liveness::default(), Liveness::Alive);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cts_core::metrics::Counter;

use crate::message::Tag;
use crate::transport::Transport;

/// Liveness of one peer as seen by one observer. Observers can disagree
/// transiently; the engine reconciles views at its synchronization points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats are arriving within deadline.
    #[default]
    Alive,
    /// The heartbeat deadline lapsed; probe windows are running.
    Suspect,
    /// Every probe window expired — the peer will never speak again.
    Dead,
}

/// Deadlines governing the liveness state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Interval between heartbeat beacons.
    pub heartbeat: Duration,
    /// Silence after which a peer turns `Suspect`.
    pub suspect_after: Duration,
    /// Number of probe windows a suspect gets before being declared dead.
    pub probes: u32,
    /// First probe window; each subsequent window doubles (bounded
    /// exponential backoff, `probes` windows total).
    pub probe_base: Duration,
}

impl HealthConfig {
    /// Deadlines derived from a heartbeat interval: suspect after 8 missed
    /// beacons, then 3 probe windows of 4×, 8×, and 16× the interval —
    /// death after 36 intervals of total silence.
    pub fn from_heartbeat(heartbeat: Duration) -> Self {
        HealthConfig {
            heartbeat,
            suspect_after: heartbeat * 8,
            probes: 3,
            probe_base: heartbeat * 4,
        }
    }

    /// Total silence needed to declare death: the suspect deadline plus
    /// all probe windows.
    pub fn death_deadline(&self) -> Duration {
        let mut total = self.suspect_after;
        let mut window = self.probe_base;
        for _ in 0..self.probes {
            total += window;
            window *= 2;
        }
        total
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::from_heartbeat(Duration::from_millis(25))
    }
}

/// The background beacon thread: sends an empty [`Tag::HEARTBEAT`] message
/// to every peer each interval until stopped. Send failures are ignored —
/// a beacon that cannot reach a peer is indistinguishable from a lost one,
/// and the peer's own detector handles the silence.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the beacon thread for `transport`'s rank.
    pub fn spawn(transport: Arc<dyn Transport>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let me = transport.rank();
            let k = transport.world_size();
            let tag = Tag::new(Tag::HEARTBEAT, 0);
            while !flag.load(Ordering::Acquire) {
                for dst in (0..k).filter(|&d| d != me) {
                    let _ = transport.send(dst, tag, Bytes::new());
                }
                std::thread::sleep(interval);
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the beacon and joins the thread. A crashed rank calls this
    /// *before* going silent — its death is only observable because the
    /// beacons cease.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One rank's view of every peer's liveness, advanced by draining
/// heartbeat queues on [`tick`](HealthBoard::tick).
pub struct HealthBoard {
    me: usize,
    k: usize,
    cfg: HealthConfig,
    last_seen: Vec<Instant>,
    state: Vec<Liveness>,
    /// Observability: counts of `→ Suspect` and `→ Dead` transitions this
    /// board performs, shared with the fabric's metrics hub when attached.
    transitions: Option<(Arc<Counter>, Arc<Counter>)>,
}

impl HealthBoard {
    /// A board for rank `me` in a world of `k`, with all peers initially
    /// alive as of now.
    pub fn new(me: usize, k: usize, cfg: HealthConfig) -> Self {
        HealthBoard {
            me,
            k,
            cfg,
            last_seen: vec![Instant::now(); k],
            state: vec![Liveness::Alive; k],
            transitions: None,
        }
    }

    /// Attaches transition counters: `suspect` increments on every
    /// `→ Suspect` edge, `dead` on every `→ Dead` declaration (including
    /// merged masks).
    pub fn with_transition_counters(mut self, suspect: Arc<Counter>, dead: Arc<Counter>) -> Self {
        self.transitions = Some((suspect, dead));
        self
    }

    fn note_transition(&self, to: Liveness) {
        if let Some((suspect, dead)) = &self.transitions {
            match to {
                Liveness::Suspect => suspect.inc(),
                Liveness::Dead => dead.inc(),
                Liveness::Alive => {}
            }
        }
    }

    /// Drains queued heartbeats from every peer and advances the state
    /// machine on the observed silences. Newly dead peers are reported to
    /// `transport` via [`Transport::mark_peer_dead`]. Cheap when idle —
    /// one `try_recv` per live peer.
    pub fn tick(&mut self, transport: &dyn Transport) {
        let tag = Tag::new(Tag::HEARTBEAT, 0);
        let now = Instant::now();
        for peer in 0..self.k {
            if peer == self.me || self.state[peer] == Liveness::Dead {
                continue;
            }
            let mut beat = false;
            while let Ok(Some(_)) = transport.try_recv(peer, tag) {
                beat = true;
            }
            if beat {
                self.last_seen[peer] = now;
                self.state[peer] = Liveness::Alive;
                continue;
            }
            let silence = now.duration_since(self.last_seen[peer]);
            if silence >= self.cfg.death_deadline() {
                self.note_transition(Liveness::Dead);
                self.state[peer] = Liveness::Dead;
                transport.mark_peer_dead(peer);
            } else if silence >= self.cfg.suspect_after {
                if self.state[peer] != Liveness::Suspect {
                    self.note_transition(Liveness::Suspect);
                }
                self.state[peer] = Liveness::Suspect;
            }
        }
    }

    /// Force-marks `peer` dead (e.g. learned from a coordinator's
    /// dead-mask rather than own observation).
    pub fn declare_dead(&mut self, peer: usize, transport: &dyn Transport) {
        if peer < self.k && peer != self.me && self.state[peer] != Liveness::Dead {
            self.note_transition(Liveness::Dead);
            self.state[peer] = Liveness::Dead;
            transport.mark_peer_dead(peer);
        }
    }

    /// Merges a dead-mask (bit per rank) into this board.
    pub fn merge_dead_mask(&mut self, mask: u128, transport: &dyn Transport) {
        for peer in 0..self.k.min(128) {
            if mask & (1u128 << peer) != 0 {
                self.declare_dead(peer, transport);
            }
        }
    }

    /// Current liveness of `peer` (the owner reads as alive).
    pub fn liveness(&self, peer: usize) -> Liveness {
        if peer == self.me {
            Liveness::Alive
        } else {
            self.state[peer]
        }
    }

    /// True unless `peer` has been declared dead (suspects still count as
    /// alive — they may yet beat the probe windows).
    pub fn is_alive(&self, peer: usize) -> bool {
        self.liveness(peer) != Liveness::Dead
    }

    /// Bit-per-rank mask of declared-dead peers.
    pub fn dead_mask(&self) -> u128 {
        let mut mask = 0u128;
        for peer in 0..self.k.min(128) {
            if self.state[peer] == Liveness::Dead && peer != self.me {
                mask |= 1u128 << peer;
            }
        }
        mask
    }

    /// The smallest rank this board still believes alive — the
    /// deterministic coordinator choice for liveness-aware collectives.
    pub fn min_alive(&self) -> usize {
        (0..self.k)
            .find(|&p| self.is_alive(p))
            .expect("own rank is always alive")
    }

    /// Number of ranks not declared dead.
    pub fn alive_count(&self) -> usize {
        (0..self.k).filter(|&p| self.is_alive(p)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;

    fn fast() -> HealthConfig {
        HealthConfig::from_heartbeat(Duration::from_millis(5))
    }

    #[test]
    fn deadlines_compose() {
        let cfg = fast();
        // 8×5ms suspect + (20 + 40 + 80)ms probes = 180ms.
        assert_eq!(cfg.death_deadline(), Duration::from_millis(180));
    }

    #[test]
    fn beating_peer_stays_alive() {
        let fabric = LocalFabric::new(2);
        let tx = Arc::new(fabric.endpoint(1));
        let rx = fabric.endpoint(0);
        let mut hb = Heartbeat::spawn(tx, Duration::from_millis(2));
        let mut board = HealthBoard::new(0, 2, fast());
        let deadline = Instant::now() + fast().death_deadline() + Duration::from_millis(50);
        while Instant::now() < deadline {
            board.tick(&rx);
            assert_eq!(board.liveness(1), Liveness::Alive);
            std::thread::sleep(Duration::from_millis(5));
        }
        hb.stop();
    }

    #[test]
    fn silent_peer_walks_alive_suspect_dead() {
        let fabric = LocalFabric::new(2);
        let rx = fabric.endpoint(0);
        let cfg = fast();
        let mut board = HealthBoard::new(0, 2, cfg);
        assert_eq!(board.liveness(1), Liveness::Alive);
        // No heartbeats ever arrive: the peer must pass through Suspect
        // before Dead, and death must take the full probed deadline.
        let start = Instant::now();
        let mut saw_suspect = false;
        loop {
            board.tick(&rx);
            match board.liveness(1) {
                Liveness::Alive => {}
                Liveness::Suspect => saw_suspect = true,
                Liveness::Dead => break,
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(saw_suspect, "death must pass through Suspect");
        assert!(
            start.elapsed() >= cfg.death_deadline(),
            "probe windows must delay the declaration"
        );
        // The transport learned of the death: blocked receives are typed.
        assert!(matches!(
            rx.recv(1, Tag::app(0)),
            Err(crate::error::NetError::PeerDead { rank: 0, peer: 1 })
        ));
        assert_eq!(board.dead_mask(), 0b10);
        assert_eq!(board.min_alive(), 0);
        assert_eq!(board.alive_count(), 1);
    }

    #[test]
    fn late_heartbeat_resurrects_a_suspect() {
        let fabric = LocalFabric::new(2);
        let rx = fabric.endpoint(0);
        let tx = fabric.endpoint(1);
        let cfg = fast();
        let mut board = HealthBoard::new(0, 2, cfg);
        // Let the peer turn suspect …
        std::thread::sleep(cfg.suspect_after + Duration::from_millis(10));
        board.tick(&rx);
        assert_eq!(board.liveness(1), Liveness::Suspect);
        // … then a beacon lands inside a probe window.
        tx.send(0, Tag::new(Tag::HEARTBEAT, 0), Bytes::new())
            .unwrap();
        board.tick(&rx);
        assert_eq!(board.liveness(1), Liveness::Alive);
    }

    #[test]
    fn transition_counters_count_each_edge_once() {
        let fabric = LocalFabric::new(3);
        let rx = fabric.endpoint(0);
        let suspect = Arc::new(Counter::new());
        let dead = Arc::new(Counter::new());
        let cfg = fast();
        let mut board = HealthBoard::new(0, 3, cfg)
            .with_transition_counters(Arc::clone(&suspect), Arc::clone(&dead));
        std::thread::sleep(cfg.suspect_after + Duration::from_millis(10));
        board.tick(&rx);
        board.tick(&rx); // still suspect: no second count
        assert_eq!(suspect.get(), 2, "both silent peers turn suspect once");
        assert_eq!(dead.get(), 0);
        board.declare_dead(1, &rx);
        board.declare_dead(1, &rx); // idempotent
        board.merge_dead_mask(0b110, &rx);
        assert_eq!(dead.get(), 2, "each peer's death counted once");
    }

    #[test]
    fn merged_masks_and_declarations_are_idempotent() {
        let fabric = LocalFabric::new(4);
        let rx = fabric.endpoint(0);
        let mut board = HealthBoard::new(0, 4, fast());
        board.merge_dead_mask(0b1010, &rx);
        assert_eq!(board.dead_mask(), 0b1010);
        board.declare_dead(3, &rx);
        board.merge_dead_mask(0b1010, &rx);
        assert_eq!(board.dead_mask(), 0b1010);
        assert_eq!(board.min_alive(), 0);
        assert_eq!(board.alive_count(), 2);
        // Own rank can never be declared dead.
        board.declare_dead(0, &rx);
        assert!(board.is_alive(0));
    }
}
