//! Message and tag types.
//!
//! Every transfer carries a 32-bit [`Tag`] that receivers match on, exactly
//! like MPI's `tag` argument. The high byte is a *purpose* namespace so that
//! application traffic, collectives, and control messages never collide.
//!
//! ```
//! use cts_net::message::Tag;
//!
//! let tag = Tag::new(Tag::BCAST, 1234); // multicast-group 1234's payloads
//! assert_eq!(tag.purpose(), Tag::BCAST);
//! assert_eq!(tag.seq(), 1234);
//! assert_ne!(tag, Tag::app(1234)); // purposes never collide
//! ```

use bytes::Bytes;

/// A 32-bit message tag: `purpose << 24 | sequence`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tag(pub u32);

impl Tag {
    /// Application point-to-point traffic (the Shuffle stage).
    pub const APP: u8 = 0x00;
    /// Barrier control messages.
    pub const BARRIER: u8 = 0xB0;
    /// Broadcast payloads (one sub-tag per multicast group).
    pub const BCAST: u8 = 0xB1;
    /// Gather payloads.
    pub const GATHER: u8 = 0xB2;
    /// Scatter payloads.
    pub const SCATTER: u8 = 0xB3;
    /// UDP-fabric control requests (status queries, NACKs) carried over the
    /// TCP control channel and serviced by each endpoint's control thread.
    pub const UDP_CTRL: u8 = 0xC0;
    /// UDP-fabric status replies, awaited synchronously by the requester.
    pub const UDP_REPLY: u8 = 0xC1;
    /// UDP-fabric repair data: chunks retransmitted over TCP unicast after
    /// the bounded multicast-retransmit budget is exhausted.
    pub const UDP_REPAIR: u8 = 0xC2;
    /// Heartbeat beacons from the health layer (one fixed sub-tag; the
    /// monitor drains the whole queue on every tick).
    pub const HEARTBEAT: u8 = 0xC3;
    /// Liveness-aware barrier control messages (recovery mode): arrivals
    /// carry the sender's dead-mask, releases carry the coordinator's.
    pub const RBARRIER: u8 = 0xC4;
    /// Recovery-plan data: re-executed or forwarded intermediate values
    /// unicast from a helper to a dead rank's successor (sub-tag = file id).
    pub const RECOVER: u8 = 0xC5;

    /// Builds a tag in the given purpose namespace with a 24-bit sequence.
    ///
    /// # Panics
    /// Panics if `seq` does not fit in 24 bits.
    #[inline]
    pub fn new(purpose: u8, seq: u32) -> Tag {
        assert!(seq < (1 << 24), "tag sequence {seq} exceeds 24 bits");
        Tag(((purpose as u32) << 24) | seq)
    }

    /// Application tag with sequence `seq`.
    #[inline]
    pub fn app(seq: u32) -> Tag {
        Tag::new(Tag::APP, seq)
    }

    /// The purpose byte.
    #[inline]
    pub fn purpose(self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// The 24-bit sequence.
    #[inline]
    pub fn seq(self) -> u32 {
        self.0 & 0x00FF_FFFF
    }

    /// Bits of the sequence left to a job once a nonzero job slot is
    /// scoped in ([`Tag::scoped`]): slots occupy the top 6 sequence bits.
    pub const JOB_SEQ_BITS: u32 = 18;
    /// Highest usable job slot (6 slot bits, slot 0 = unscoped).
    pub const MAX_JOB_SLOT: u8 = 63;

    /// Rewrites this tag into job slot `slot`'s namespace.
    ///
    /// Slot 0 is the identity: exclusive (one-shot) runs keep the full
    /// 24-bit sequence space and the exact wire tags of prior releases.
    /// Nonzero slots pack the slot into sequence bits 18..24, giving each
    /// of up to 63 concurrent jobs on a shared fabric a disjoint tag
    /// namespace at the cost of an 18-bit per-job sequence space. Applied
    /// exactly once, at the [`Communicator`](crate::comm::Communicator)
    /// boundary.
    ///
    /// # Panics
    /// Panics if `slot` exceeds [`Tag::MAX_JOB_SLOT`], or if `slot` is
    /// nonzero and the sequence does not fit in [`Tag::JOB_SEQ_BITS`] bits.
    #[inline]
    pub fn scoped(self, slot: u8) -> Tag {
        if slot == 0 {
            return self;
        }
        assert!(
            slot <= Tag::MAX_JOB_SLOT,
            "job slot {slot} exceeds {}",
            Tag::MAX_JOB_SLOT
        );
        let seq = self.seq();
        assert!(
            seq < (1 << Tag::JOB_SEQ_BITS),
            "tag sequence {seq} exceeds the {}-bit job-scoped space \
             (too many multicast groups/epochs for a shared-fabric job)",
            Tag::JOB_SEQ_BITS
        );
        Tag(((self.purpose() as u32) << 24) | ((slot as u32) << Tag::JOB_SEQ_BITS) | seq)
    }

    /// The job slot a tag is scoped to (0 = unscoped/exclusive).
    #[inline]
    pub fn job_slot(self) -> u8 {
        ((self.seq() >> Tag::JOB_SEQ_BITS) & 0x3F) as u8
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tag({:#04x}:{})", self.purpose(), self.seq())
    }
}

/// An in-flight message: source rank, tag, and payload.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sender's rank.
    pub src: usize,
    /// Matching tag.
    pub tag: Tag,
    /// Payload bytes (cheaply cloneable; in-memory transport shares the
    /// underlying buffer with the sender).
    pub payload: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_packing() {
        let t = Tag::new(Tag::BCAST, 12345);
        assert_eq!(t.purpose(), Tag::BCAST);
        assert_eq!(t.seq(), 12345);
        assert_eq!(Tag::app(7).purpose(), Tag::APP);
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn tag_rejects_oversized_seq() {
        Tag::new(Tag::APP, 1 << 24);
    }

    #[test]
    fn tag_display() {
        let t = Tag::new(Tag::BARRIER, 2);
        assert_eq!(t.to_string(), "tag(0xb0:2)");
    }

    #[test]
    fn distinct_purposes_never_collide() {
        assert_ne!(Tag::new(Tag::APP, 5), Tag::new(Tag::BCAST, 5));
    }

    #[test]
    fn job_scoping_slot_zero_is_identity() {
        let t = Tag::new(Tag::BCAST, (1 << 24) - 1);
        assert_eq!(t.scoped(0), t);
        assert_eq!(t.job_slot(), 63, "slot bits overlap the high seq bits");
    }

    #[test]
    fn job_scoping_separates_slots() {
        let t = Tag::app(1234);
        let a = t.scoped(1);
        let b = t.scoped(2);
        assert_ne!(a, b);
        assert_ne!(a, t);
        assert_eq!(a.purpose(), Tag::APP);
        assert_eq!(a.job_slot(), 1);
        assert_eq!(b.job_slot(), 2);
        // The job-local sequence survives underneath the slot bits.
        assert_eq!(a.seq() & ((1 << Tag::JOB_SEQ_BITS) - 1), 1234);
    }

    #[test]
    #[should_panic(expected = "job-scoped space")]
    fn job_scoping_rejects_oversized_seq() {
        Tag::app(1 << Tag::JOB_SEQ_BITS).scoped(3);
    }

    #[test]
    #[should_panic(expected = "exceeds 63")]
    fn job_scoping_rejects_oversized_slot() {
        Tag::app(1).scoped(64);
    }
}
