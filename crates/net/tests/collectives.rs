//! Property tests of the collectives: flat and binomial-tree broadcasts
//! must deliver identical payloads to every member for arbitrary group
//! compositions and roots, over both fabrics.

use std::sync::Arc;

use bytes::Bytes;
use cts_net::cluster::{run_spmd, ClusterConfig};
use cts_net::comm::BcastAlgorithm;
use cts_net::message::Tag;
use cts_net::trace::EventKind;
use proptest::prelude::*;

/// Deterministic payload per (root, round).
fn payload(root: usize, round: usize) -> Bytes {
    Bytes::from(
        (0..(31 + root * 7 + round * 3))
            .map(|i| (root * 89 + round * 17 + i) as u8)
            .collect::<Vec<u8>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every member of a random group receives the root's payload, for
    /// both algorithms, across several rounds with rotating roots.
    #[test]
    fn broadcast_delivers_for_random_groups(
        k in 2usize..=8,
        member_bits in 0u64..256,
        algo_flat in any::<bool>(),
    ) {
        let members: Vec<usize> = (0..k).filter(|i| member_bits >> i & 1 == 1).collect();
        prop_assume!(members.len() >= 2);
        let algo = if algo_flat {
            BcastAlgorithm::Flat
        } else {
            BcastAlgorithm::BinomialTree
        };
        let cfg = ClusterConfig::local(k).with_bcast(algo);
        let members = Arc::new(members);
        let members2 = Arc::clone(&members);

        let run = run_spmd(&cfg, move |comm| {
            if !members2.contains(&comm.rank()) {
                return Vec::new();
            }
            let mut got = Vec::new();
            for (round, &root) in members2.iter().enumerate() {
                let data = (comm.rank() == root).then(|| payload(root, round));
                got.push(
                    comm.broadcast(root, &members2, Tag::new(Tag::BCAST, round as u32), data)
                        .unwrap(),
                );
            }
            got
        })
        .unwrap();

        for (rank, got) in run.results.iter().enumerate() {
            if members.contains(&rank) {
                prop_assert_eq!(got.len(), members.len());
                for (round, &root) in members.iter().enumerate() {
                    prop_assert_eq!(&got[round], &payload(root, round));
                }
            } else {
                prop_assert!(got.is_empty());
            }
        }
        // Exactly one Multicast event per broadcast, with fanout m-1.
        let multicasts: Vec<_> = run
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .collect();
        prop_assert_eq!(multicasts.len(), members.len());
        for m in multicasts {
            prop_assert_eq!(m.fanout() as usize, members.len() - 1);
        }
    }

    /// Gather returns payloads in member order for arbitrary groups/roots.
    #[test]
    fn gather_orders_by_member(
        k in 2usize..=8,
        member_bits in 0u64..256,
        root_sel in 0usize..8,
    ) {
        let members: Vec<usize> = (0..k).filter(|i| member_bits >> i & 1 == 1).collect();
        prop_assume!(!members.is_empty());
        let root = members[root_sel % members.len()];
        let members = Arc::new(members);
        let members2 = Arc::clone(&members);

        let run = run_spmd(&ClusterConfig::local(k), move |comm| {
            if !members2.contains(&comm.rank()) {
                return None;
            }
            comm.gather(
                root,
                &members2,
                Tag::new(Tag::GATHER, 0),
                Bytes::copy_from_slice(&[comm.rank() as u8]),
            )
            .unwrap()
        })
        .unwrap();

        for (rank, res) in run.results.iter().enumerate() {
            if rank == root {
                let gathered = res.as_ref().expect("root gathers");
                let ids: Vec<usize> = gathered.iter().map(|b| b[0] as usize).collect();
                prop_assert_eq!(&ids, &*members);
            } else {
                prop_assert!(res.is_none());
            }
        }
    }
}

/// K = 64 on one host — far beyond the old thread-per-rank fabric's
/// comfort zone: every rank multicasts to a sliding group of 4 over the
/// in-memory fabric, with per-fabric egress accounting checked end to end.
#[test]
fn k64_multicast_groups_scale_on_local_fabric() {
    use cts_net::fabric::ShuffleFabric;
    let k = 64usize;
    for (fabric, copies_per_send) in [
        (ShuffleFabric::SerialUnicast, 3u64),
        (ShuffleFabric::Multicast, 1),
    ] {
        let cfg = ClusterConfig::local(k).with_fabric(fabric);
        let run = run_spmd(&cfg, move |comm| {
            comm.set_stage("Shuffle");
            let mut heard = 0usize;
            for root in 0..k {
                let mut members: Vec<usize> = (0..4).map(|i| (root + i) % k).collect();
                members.sort_unstable();
                if !members.contains(&comm.rank()) {
                    continue;
                }
                let data = (comm.rank() == root).then(|| Bytes::copy_from_slice(&[root as u8; 32]));
                let got = comm
                    .multicast(root, &members, Tag::new(Tag::BCAST, root as u32), data)
                    .unwrap();
                assert_eq!(got[0] as usize, root);
                heard += 1;
            }
            heard
        })
        .unwrap();
        // Every rank participates in exactly 4 sliding groups.
        assert!(run.results.iter().all(|&h| h == 4));
        // 64 group sends; per-fabric egress frames.
        assert_eq!(
            run.trace.stage_wire_sends("Shuffle"),
            64 * copies_per_send,
            "{fabric}"
        );
        // Masks above rank 63 exercise the u128 receiver sets.
        assert!(run
            .trace
            .events
            .iter()
            .any(|e| e.dsts >= (1u128 << 62) && e.kind == EventKind::Multicast));
    }
}

/// The registry + single-reactor TCP fabric sustains a K = 32 mesh (496
/// sockets, 32 reactor threads) through a barrier and a multicast round.
#[test]
fn k32_tcp_mesh_barrier_and_multicast() {
    use cts_net::fabric::ShuffleFabric;
    let k = 32usize;
    let cfg = ClusterConfig::tcp(k).with_fabric(ShuffleFabric::Multicast);
    let run = run_spmd(&cfg, move |comm| {
        comm.barrier().unwrap();
        let members: Vec<usize> = (0..k).collect();
        let data = (comm.rank() == 5).then(|| Bytes::from_static(b"wide"));
        let got = comm
            .multicast(5, &members, Tag::new(Tag::BCAST, 0), data)
            .unwrap();
        comm.barrier().unwrap();
        got
    })
    .unwrap();
    assert!(run.results.iter().all(|r| r == "wide"));
}

/// A deterministic stress test: many interleaved broadcasts in overlapping
/// groups over TCP, exercising the FIFO-per-channel relay ordering the
/// coded shuffle depends on.
#[test]
fn overlapping_groups_over_tcp_stay_ordered() {
    let k = 5;
    let groups: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![1, 2, 3],
        vec![0, 2, 4],
        vec![0, 1, 2, 3, 4],
        vec![2, 3, 4],
    ];
    let groups = Arc::new(groups);
    let groups2 = Arc::clone(&groups);

    let run = run_spmd(&ClusterConfig::tcp(k), move |comm| {
        let mut received = Vec::new();
        for (gi, members) in groups2.iter().enumerate() {
            if !members.contains(&comm.rank()) {
                continue;
            }
            for &root in members {
                let data = (comm.rank() == root).then(|| payload(root, gi));
                let got = comm
                    .broadcast(root, members, Tag::new(Tag::BCAST, gi as u32), data)
                    .unwrap();
                received.push((gi, root, got));
            }
        }
        received
    })
    .unwrap();

    for (rank, received) in run.results.iter().enumerate() {
        for (gi, root, got) in received {
            assert_eq!(
                got,
                &payload(*root, *gi),
                "rank {rank} group {gi} root {root}"
            );
        }
    }
}
