//! Grep — shuffle-dominated line matching, one of the paper's §VI
//! candidates for coded execution ("e.g., Grep, SelfJoin").
//!
//! Map emits every line containing the pattern, partitioned by a hash of
//! the line so output work balances across reducers. Intermediates are the
//! matching lines themselves (newline-terminated); reduce sorts them for a
//! deterministic, order-insensitive result.

use crate::workload::{InputFormat, Workload};

/// The Grep workload: distributed substring search.
#[derive(Clone, Debug)]
pub struct Grep {
    pattern: Vec<u8>,
}

impl Grep {
    /// A grep for `pattern` (non-empty).
    ///
    /// # Panics
    /// Panics if `pattern` is empty.
    pub fn new(pattern: impl Into<Vec<u8>>) -> Self {
        let pattern = pattern.into();
        assert!(!pattern.is_empty(), "grep pattern must be non-empty");
        Grep { pattern }
    }

    /// The search pattern.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    fn matches(&self, line: &[u8]) -> bool {
        line.windows(self.pattern.len())
            .any(|w| w == &self.pattern[..])
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Workload for Grep {
    fn name(&self) -> &str {
        "grep"
    }

    fn format(&self) -> InputFormat {
        InputFormat::Lines
    }

    fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); num_partitions];
        for line in file.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            if self.matches(line) {
                let p = (fnv1a(line) % num_partitions as u64) as usize;
                out[p].extend_from_slice(line);
                out[p].push(b'\n');
            }
        }
        out
    }

    fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
        let mut lines: Vec<&[u8]> = data
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        lines.sort_unstable();
        let mut out = Vec::with_capacity(data.len());
        for line in lines {
            out.extend_from_slice(line);
            out.push(b'\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::run_sequential;
    use bytes::Bytes;

    #[test]
    fn finds_matching_lines() {
        let input = Bytes::from_static(b"error: disk full\nok\nerror: cpu melted\nfine\n");
        let grep = Grep::new(&b"error"[..]);
        let outputs = run_sequential(&grep, &input, 2);
        let all: Vec<u8> = outputs.into_iter().flatten().collect();
        let text = String::from_utf8(all).unwrap();
        assert!(text.contains("disk full"));
        assert!(text.contains("cpu melted"));
        assert!(!text.contains("ok"));
        assert!(!text.contains("fine"));
    }

    #[test]
    fn no_matches_is_empty() {
        let input = Bytes::from_static(b"nothing here\nat all\n");
        let grep = Grep::new(&b"zebra"[..]);
        let outputs = run_sequential(&grep, &input, 3);
        assert!(outputs.iter().all(|o| o.is_empty()));
    }

    #[test]
    fn pattern_at_line_edges() {
        let grep = Grep::new(&b"end"[..]);
        assert!(grep.matches(b"the end"));
        assert!(grep.matches(b"endgame"));
        assert!(grep.matches(b"end"));
        assert!(!grep.matches(b"en d"));
        assert!(!grep.matches(b"e"));
    }

    #[test]
    fn reduce_sorts_lines() {
        let grep = Grep::new(&b"x"[..]);
        let out = grep.reduce(0, b"xb\nxa\nxc\n");
        assert_eq!(out, b"xa\nxb\nxc\n");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        Grep::new(Vec::new());
    }
}
