//! The workload abstraction: what varies between TeraSort, WordCount,
//! Grep, … (the paper's §VI "beyond sorting" direction).
//!
//! A [`Workload`] is byte-oriented, mirroring the paper's implementation
//! where intermediate values are serialized buffers and the shuffle layer
//! never looks inside them:
//!
//! * [`Workload::map_file`] hashes one input file into `K` per-partition
//!   serialized intermediates (the paper's `Hash(F)` producing
//!   `{I¹_F, …, I^K_F}`);
//! * [`Workload::reduce`] turns the *concatenation* of a partition's
//!   intermediates into final output (the paper's `Sort`).
//!
//! Two contracts make a workload coding-compatible:
//! 1. intermediates must be concatenation-mergeable — `reduce` sees the
//!    pieces in an arbitrary (but deterministic) file order;
//! 2. `reduce` must be insensitive to that order (sort, aggregate, …) so
//!    uncoded and coded executions produce identical output.

use bytes::Bytes;

/// How raw input bytes split into files without breaking records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputFormat {
    /// Fixed-width records of the given byte size (TeraGen: 100).
    FixedWidth(usize),
    /// Newline-delimited text; splits land after `\n`.
    Lines,
}

impl InputFormat {
    /// Splits `input` into `n` contiguous files at record boundaries, as
    /// evenly as byte counts allow. Zero-copy: files share `input`'s
    /// buffer.
    ///
    /// # Panics
    /// Panics if `n == 0`, or for `FixedWidth(w)` if `w == 0` or the input
    /// length is not a multiple of `w`.
    pub fn split(&self, input: &Bytes, n: usize) -> Vec<Bytes> {
        assert!(n > 0, "cannot split into zero files");
        match *self {
            InputFormat::FixedWidth(w) => {
                assert!(w > 0, "record width must be positive");
                assert!(
                    input.len().is_multiple_of(w),
                    "input length {} is not a multiple of record width {w}",
                    input.len()
                );
                let records = input.len() / w;
                let base = records / n;
                let extra = records % n;
                let mut out = Vec::with_capacity(n);
                let mut offset = 0usize;
                for i in 0..n {
                    let count = base + usize::from(i < extra);
                    let bytes = count * w;
                    out.push(input.slice(offset..offset + bytes));
                    offset += bytes;
                }
                debug_assert_eq!(offset, input.len());
                out
            }
            InputFormat::Lines => {
                let len = input.len();
                let mut cuts = Vec::with_capacity(n + 1);
                cuts.push(0usize);
                for i in 1..n {
                    let target = len * i / n;
                    let target = target.max(*cuts.last().unwrap());
                    // Advance to just past the next newline (or EOF).
                    let cut = input[target..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map(|p| target + p + 1)
                        .unwrap_or(len);
                    cuts.push(cut);
                }
                cuts.push(len);
                cuts.windows(2).map(|w| input.slice(w[0]..w[1])).collect()
            }
        }
    }
}

/// A MapReduce workload runnable by both engines.
pub trait Workload: Send + Sync {
    /// Human-readable name ("terasort", "wordcount", …).
    fn name(&self) -> &str;

    /// The input splitting rule.
    fn format(&self) -> InputFormat;

    /// Hashes one file into `num_partitions` serialized intermediates
    /// (`out[p]` holds the KV pairs of partition `p`).
    fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>>;

    /// Produces the final output of `partition` from the concatenation of
    /// all its intermediates. Must be insensitive to concatenation order.
    fn reduce(&self, partition: usize, data: &[u8]) -> Vec<u8>;

    /// Parallel variant of [`map_file`](Workload::map_file), driven by the
    /// engine's [`WorkerPool`](cts_core::exec::WorkerPool). The default
    /// ignores the pool; workloads that can chunk their input (TeraSort's
    /// fixed-width records) override this. **Must** produce output
    /// byte-identical to `map_file` for every thread count.
    fn map_file_par(
        &self,
        file: &[u8],
        num_partitions: usize,
        pool: &cts_core::exec::WorkerPool,
    ) -> Vec<Vec<u8>> {
        let _ = pool;
        self.map_file(file, num_partitions)
    }

    /// Parallel variant of [`reduce`](Workload::reduce); same contract:
    /// byte-identical to the serial `reduce` for every thread count.
    fn reduce_par(
        &self,
        partition: usize,
        data: &[u8],
        pool: &cts_core::exec::WorkerPool,
    ) -> Vec<u8> {
        let _ = pool;
        self.reduce(partition, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_split_even() {
        let input = Bytes::from(vec![7u8; 100 * 10]);
        let files = InputFormat::FixedWidth(100).split(&input, 5);
        assert_eq!(files.len(), 5);
        assert!(files.iter().all(|f| f.len() == 200));
    }

    #[test]
    fn fixed_width_split_remainder_spread() {
        // 11 records over 4 files: 3,3,3,2.
        let input = Bytes::from(vec![0u8; 11 * 4]);
        let files = InputFormat::FixedWidth(4).split(&input, 4);
        let lens: Vec<usize> = files.iter().map(|f| f.len() / 4).collect();
        assert_eq!(lens, vec![3, 3, 3, 2]);
        let total: usize = files.iter().map(|f| f.len()).sum();
        assert_eq!(total, input.len());
    }

    #[test]
    #[should_panic(expected = "multiple of record width")]
    fn fixed_width_rejects_partial_records() {
        InputFormat::FixedWidth(100).split(&Bytes::from(vec![0u8; 150]), 2);
    }

    #[test]
    fn lines_split_at_newlines() {
        let input = Bytes::from_static(b"aa\nbbbb\nc\ndddd\ne\n");
        let files = InputFormat::Lines.split(&input, 3);
        assert_eq!(files.len(), 3);
        // Re-concatenation is lossless.
        let joined: Vec<u8> = files.iter().flat_map(|f| f.iter().copied()).collect();
        assert_eq!(&joined[..], &input[..]);
        // Every file ends at a line boundary (or is last).
        for f in &files[..2] {
            assert!(f.is_empty() || f.last() == Some(&b'\n'), "{f:?}");
        }
    }

    #[test]
    fn lines_split_handles_no_trailing_newline() {
        let input = Bytes::from_static(b"one\ntwo\nthree");
        let files = InputFormat::Lines.split(&input, 2);
        let joined: Vec<u8> = files.iter().flat_map(|f| f.iter().copied()).collect();
        assert_eq!(&joined[..], &input[..]);
    }

    #[test]
    fn lines_split_more_files_than_lines() {
        let input = Bytes::from_static(b"only\n");
        let files = InputFormat::Lines.split(&input, 4);
        assert_eq!(files.len(), 4);
        let non_empty: Vec<&Bytes> = files.iter().filter(|f| !f.is_empty()).collect();
        assert_eq!(non_empty.len(), 1);
    }

    #[test]
    fn split_is_zero_copy() {
        let input = Bytes::from(vec![1u8; 400]);
        let files = InputFormat::FixedWidth(100).split(&input, 2);
        assert_eq!(files[0].as_ptr(), input.as_ptr());
    }

    #[test]
    fn empty_input_splits_into_empty_files() {
        let input = Bytes::new();
        for fmt in [InputFormat::FixedWidth(100), InputFormat::Lines] {
            let files = fmt.split(&input, 3);
            assert_eq!(files.len(), 3);
            assert!(files.iter().all(|f| f.is_empty()));
        }
    }
}
