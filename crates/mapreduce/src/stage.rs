//! Stage names, wall-clock timing, and engine configuration.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cts_core::decode::DecodeMode;
use cts_core::exec::{Budget, WorkerPool};
use cts_core::field::FieldKind;
use cts_net::cluster::ClusterConfig;
use cts_net::fabric::ShuffleFabric;
use cts_net::fault::CrashSpec;
use cts_net::rate::NicProfile;

/// Canonical stage labels (also used as trace stage names).
pub mod stages {
    /// Multicast-group initialization (coded only).
    pub const CODEGEN: &str = "CodeGen";
    /// Hashing input files into key partitions.
    pub const MAP: &str = "Map";
    /// Serialization: Pack (uncoded) / Encode incl. XOR (coded).
    pub const PACK_ENCODE: &str = "PackEncode";
    /// The data shuffle — the only stage whose trace events the network
    /// model charges.
    pub const SHUFFLE: &str = "Shuffle";
    /// Deserialization: Unpack (uncoded) / Decode incl. XOR (coded).
    pub const UNPACK_DECODE: &str = "UnpackDecode";
    /// Local per-partition reduction.
    pub const REDUCE: &str = "Reduce";
    /// Speculative re-execution traffic after a rank death (coded engine
    /// in recovery mode only).
    pub const RECOVER: &str = "Recover";
}

/// Whether and how the coded engine recovers from rank deaths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// No health layer: a dead rank fails the job fast with a typed error
    /// (the panic-teardown path guarantees no hang). The default.
    #[default]
    Off,
    /// Heartbeat failure detection plus speculative re-execution: a dead
    /// rank's map responsibilities are re-run by survivors holding the
    /// r-fold replicated inputs, and its reduce partition is adopted by a
    /// deterministic successor. Requires GF(256), quorum decode, and
    /// `r ≥ 2`.
    Speculative,
}

impl std::str::FromStr for RecoveryMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "off" => Ok(RecoveryMode::Off),
            "speculative" => Ok(RecoveryMode::Speculative),
            other => Err(format!(
                "unknown recovery mode `{other}` (expected `speculative` or `off`)"
            )),
        }
    }
}

/// Measured wall-clock stage durations for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeWall {
    /// CodeGen duration.
    pub codegen: Duration,
    /// Map duration.
    pub map: Duration,
    /// Pack/Encode duration.
    pub pack_encode: Duration,
    /// Shuffle duration (includes waiting for peers — synchronous stages).
    pub shuffle: Duration,
    /// Unpack/Decode duration.
    pub unpack_decode: Duration,
    /// Reduce duration.
    pub reduce: Duration,
}

impl NodeWall {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.codegen + self.map + self.pack_encode + self.shuffle + self.unpack_decode + self.reduce
    }
}

/// Cluster-wide wall times: the per-stage maximum over nodes (stages are
/// barrier-synchronized, so the slowest node defines the stage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallTimes {
    /// Slowest node per stage.
    pub max: NodeWall,
}

impl WallTimes {
    /// Aggregates per-node measurements.
    pub fn aggregate(nodes: &[NodeWall]) -> Self {
        let mut max = NodeWall::default();
        for n in nodes {
            max.codegen = max.codegen.max(n.codegen);
            max.map = max.map.max(n.map);
            max.pack_encode = max.pack_encode.max(n.pack_encode);
            max.shuffle = max.shuffle.max(n.shuffle);
            max.unpack_decode = max.unpack_decode.max(n.unpack_decode);
            max.reduce = max.reduce.max(n.reduce);
        }
        WallTimes { max }
    }
}

/// A simple scoped stopwatch.
pub struct StageTimer {
    started: Instant,
}

impl StageTimer {
    /// Starts timing.
    pub fn start() -> Self {
        StageTimer {
            started: Instant::now(),
        }
    }

    /// Stops and returns the elapsed duration.
    pub fn stop(self) -> Duration {
        self.started.elapsed()
    }
}

/// Parameters shared by the engines.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker count `K`.
    pub k: usize,
    /// Redundancy `r` (ignored by the uncoded engine).
    pub r: usize,
    /// Cluster fabric configuration.
    pub cluster: ClusterConfig,
    /// Insert a global barrier after every multicast group / sender turn so
    /// *wall-clock* execution is strictly serial like the paper's. The
    /// virtual-time model replays the trace serially regardless, so this
    /// only matters for rate-limited real-time runs.
    pub strict_serial_shuffle: bool,
    /// Decode each coded packet as it arrives instead of in a separate
    /// stage afterwards — a first step toward the paper's §VI
    /// *asynchronous execution* direction: XOR cancellation overlaps the
    /// waits of the multicast shuffle. Outputs are identical; the decode
    /// work simply lands inside the Shuffle wall-clock window (stats and
    /// traced bytes are unchanged, so the paper-scale model is
    /// unaffected).
    pub pipelined_decode: bool,
    /// Intra-node worker threads for the CPU-bound stages (Map hashing,
    /// per-group encode, per-packet decode, the Reduce sort). `1` (the
    /// default) runs every stage inline; higher values lease workers from
    /// the process-wide [`cts_core::exec`] budget, so K-node single-host
    /// emulation never oversubscribes the machine. Outputs are
    /// byte-identical for any value.
    pub threads: usize,
    /// The finite field coded packets are combined in: `Gf2` (the paper's
    /// XOR code, the default and reference oracle) or `Gf256` (q-ary
    /// linear combinations over runtime-dispatched SIMD kernels). Sorted
    /// outputs are byte-identical for either choice; only the coded wire
    /// payloads differ.
    pub field: FieldKind,
    /// When a receiver releases a decoded group: `All` (the paper's
    /// barrier-on-all cancel-and-divide, the default) or `Quorum` — with
    /// GF(256), MDS-mixed packets let any `r − 1` of a group's `r`
    /// packets reach full rank, so the shuffle proceeds without its
    /// slowest sender. Sorted outputs are byte-identical either way.
    pub decode: DecodeMode,
    /// How long the quorum shuffle's receive loop tolerates zero progress
    /// before declaring the shuffle stalled. Defaults to 10 s (the old
    /// hard-coded `QUORUM_IDLE_TIMEOUT`).
    pub idle_timeout: Duration,
    /// Rank-death handling (see [`RecoveryMode`]).
    pub recovery: RecoveryMode,
    /// Heartbeat interval for the health layer when recovery is on; the
    /// suspect/death deadlines derive from it
    /// (see [`cts_net::health::HealthConfig::from_heartbeat`]).
    pub heartbeat: Duration,
    /// Crash injection for failure testing: each spec kills one rank
    /// fail-stop at a stage point. Empty in production.
    pub crashes: Vec<CrashSpec>,
    /// Cooperative yield granularity for this job's worker pools: `1` (the
    /// default) keeps the legacy hold-for-the-whole-call lease behavior;
    /// `n > 1` splits each pool call into up to `n` slices, releasing and
    /// re-acquiring the thread lease between slices so concurrent jobs
    /// sharing one [`Budget`] interleave instead of serializing. Outputs
    /// are byte-identical for any value.
    pub yield_slices: usize,
    /// The thread-lease budget this job's pools draw from. `None` (the
    /// default) uses the process-wide [`cts_core::exec::global_budget`];
    /// a resident runtime installs its own budget here so *it* owns the
    /// compute that all tenant jobs share.
    pub budget: Option<Arc<Budget>>,
}

impl EngineConfig {
    /// Local in-memory cluster, redundancy `r`.
    pub fn local(k: usize, r: usize) -> Self {
        EngineConfig {
            k,
            r,
            cluster: ClusterConfig::local(k),
            strict_serial_shuffle: false,
            pipelined_decode: false,
            threads: 1,
            field: FieldKind::Gf2,
            decode: DecodeMode::All,
            idle_timeout: Duration::from_secs(10),
            recovery: RecoveryMode::Off,
            heartbeat: Duration::from_millis(25),
            crashes: Vec::new(),
            yield_slices: 1,
            budget: None,
        }
    }

    /// Loopback-TCP cluster, redundancy `r`.
    pub fn tcp(k: usize, r: usize) -> Self {
        EngineConfig {
            cluster: ClusterConfig::tcp(k),
            ..EngineConfig::local(k, r)
        }
    }

    /// Enables pipelined (asynchronous) decode.
    pub fn with_pipelined_decode(mut self) -> Self {
        self.pipelined_decode = true;
        self
    }

    /// Sets the intra-node worker-thread count for the CPU-bound stages
    /// (`0` = the machine's available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the coding field for the coded engine's packets (GF(2)
    /// XOR — the default — or GF(256) q-ary combinations). A pure
    /// performance/algebra knob: outputs are byte-identical either way.
    pub fn with_field(mut self, field: FieldKind) -> Self {
        self.field = field;
        self
    }

    /// Selects the group release policy (see
    /// [`EngineConfig::decode`]).
    pub fn with_decode(mut self, decode: DecodeMode) -> Self {
        self.decode = decode;
        self
    }

    /// Shorthand for quorum decode: release each group as soon as its
    /// MDS system reaches full rank instead of waiting for every sender.
    pub fn decode_quorum(self) -> Self {
        self.with_decode(DecodeMode::Quorum)
    }

    /// Selects how the coded shuffle's group sends hit the wire
    /// (serial-unicast, fanout, native multicast, or physical
    /// `udp-multicast` — the latter switches the cluster onto the UDP
    /// transport with its NACK reliability layer).
    pub fn with_fabric(mut self, fabric: ShuffleFabric) -> Self {
        self.cluster = self.cluster.with_fabric(fabric);
        self
    }

    /// Installs an emulated NIC on every node (egress rate, per-transfer
    /// latency, multicast `α`) so shuffle wall-clock is *measured* under
    /// the paper's network conditions instead of at memory speed.
    pub fn with_nic(mut self, nic: NicProfile) -> Self {
        self.cluster = self.cluster.with_nic(nic);
        self
    }

    /// Sets the quorum shuffle's receive-idle deadline (how long zero
    /// progress is tolerated before the shuffle is declared stalled).
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Selects the rank-death handling mode. `Speculative` requires
    /// GF(256), quorum decode, and `r ≥ 2` — validated when the job runs
    /// (`BadConfig` otherwise), since `field`/`decode`/`r` may be set
    /// after this call.
    pub fn with_recovery(mut self, recovery: RecoveryMode) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the health layer's heartbeat interval (recovery mode only).
    /// Death is declared after ~36 silent intervals (suspect deadline
    /// plus three exponentially backed-off probe windows).
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Adds a crash-at-point injection (failure testing).
    pub fn with_crash(mut self, spec: CrashSpec) -> Self {
        self.crashes.push(spec);
        self
    }

    /// Sets the cooperative yield granularity (see
    /// [`EngineConfig::yield_slices`]).
    pub fn with_yield_slices(mut self, slices: usize) -> Self {
        self.yield_slices = slices;
        self
    }

    /// Installs the thread-lease budget this job's pools draw from (see
    /// [`EngineConfig::budget`]).
    pub fn with_budget(mut self, budget: Arc<Budget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Builds the worker pool every engine stage of this job uses,
    /// honoring `threads`, `yield_slices`, and `budget`.
    pub fn worker_pool(&self) -> WorkerPool {
        let mut pool = WorkerPool::new(self.threads);
        if self.yield_slices > 1 {
            pool = pool.with_yield(self.yield_slices);
        }
        if let Some(budget) = &self.budget {
            pool = pool.with_budget(Arc::clone(budget));
        }
        pool
    }

    /// The crash point at which `rank` dies under this config, if any.
    pub fn crash_point_of(&self, rank: usize) -> Option<cts_net::fault::CrashPoint> {
        self.crashes
            .iter()
            .find(|s| s.rank == rank)
            .map(|s| s.point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_aggregate_takes_maxima() {
        let a = NodeWall {
            map: Duration::from_millis(10),
            reduce: Duration::from_millis(5),
            ..Default::default()
        };
        let b = NodeWall {
            map: Duration::from_millis(3),
            reduce: Duration::from_millis(9),
            ..Default::default()
        };
        let w = WallTimes::aggregate(&[a, b]);
        assert_eq!(w.max.map, Duration::from_millis(10));
        assert_eq!(w.max.reduce, Duration::from_millis(9));
    }

    #[test]
    fn node_wall_total_sums() {
        let n = NodeWall {
            codegen: Duration::from_millis(1),
            map: Duration::from_millis(2),
            pack_encode: Duration::from_millis(3),
            shuffle: Duration::from_millis(4),
            unpack_decode: Duration::from_millis(5),
            reduce: Duration::from_millis(6),
        };
        assert_eq!(n.total(), Duration::from_millis(21));
    }

    #[test]
    fn recovery_knobs_round_trip() {
        let cfg = EngineConfig::local(4, 2)
            .with_recovery(RecoveryMode::Speculative)
            .with_heartbeat(Duration::from_millis(10))
            .with_idle_timeout(Duration::from_secs(3))
            .with_crash(CrashSpec {
                rank: 2,
                point: cts_net::fault::CrashPoint::MidMap,
            });
        assert_eq!(cfg.recovery, RecoveryMode::Speculative);
        assert_eq!(cfg.heartbeat, Duration::from_millis(10));
        assert_eq!(cfg.idle_timeout, Duration::from_secs(3));
        assert_eq!(
            cfg.crash_point_of(2),
            Some(cts_net::fault::CrashPoint::MidMap)
        );
        assert_eq!(cfg.crash_point_of(1), None);
        assert_eq!("speculative".parse(), Ok(RecoveryMode::Speculative));
        assert_eq!("off".parse(), Ok(RecoveryMode::Off));
        assert!("on".parse::<RecoveryMode>().is_err());
    }

    #[test]
    fn timer_measures_something() {
        let t = StageTimer::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.stop() >= Duration::from_millis(4));
    }
}
