//! The conventional TeraSort-style engine (paper §III).
//!
//! Five stages, barrier-synchronized like the paper's implementation:
//!
//! 1. **File placement** (untimed, done by the harness/coordinator): the
//!    input splits into `K` files, file `k` on node `k`.
//! 2. **Map**: node `k` hashes file `F_{k}` into `K` intermediates.
//! 3. **Pack**: intermediates destined to other nodes are finalized as
//!    contiguous buffers (one TCP flow per intermediate — paper §V-A).
//! 4. **Shuffle**: serial unicast (Fig. 9(a)): senders take turns; each
//!    sends `I^j_{k}` to node `j` back-to-back.
//! 5. **Unpack + Reduce**: node `k` deserializes what it received and
//!    reduces its partition.

use bytes::Bytes;
use cts_net::cluster::{JobBinding, SharedFabric};
use cts_net::message::Tag;
use cts_net::span::SpanLog;
use cts_net::trace::Trace;
use cts_netsim::stats::{NodeStats, RunStats};

use crate::error::{EngineError, Result};
use crate::stage::{stages, EngineConfig, NodeWall, StageTimer, WallTimes};
use crate::workload::Workload;

/// The result of an engine run.
#[derive(Debug)]
pub struct JobOutcome {
    /// Final output of each partition (`outputs[p]` reduced by node `p`).
    pub outputs: Vec<Vec<u8>>,
    /// Per-node measured work counts (feed to `cts_netsim::PerfModel`).
    pub stats: RunStats,
    /// Recorded transfer trace.
    pub trace: Trace,
    /// Recorded per-rank stage spans (the timeline's raw material).
    pub spans: SpanLog,
    /// Measured wall-clock stage times (slowest node per stage).
    pub wall: WallTimes,
}

/// Runs `workload` over `input` with conventional uncoded execution.
///
/// Builds an ephemeral [`SharedFabric`] and submits the job at
/// [`JobBinding::ROOT`] — the one-shot path and the resident runtime's
/// per-job path are the same code.
///
/// # Errors
/// Propagates transport failures; panics in worker closures propagate as
/// panics (after fabric teardown).
pub fn run_uncoded<W: Workload>(
    workload: &W,
    input: Bytes,
    cfg: &EngineConfig,
) -> Result<JobOutcome> {
    check_k(cfg.k)?;
    let fabric = SharedFabric::build(&cfg.cluster)?;
    run_uncoded_on(&fabric, JobBinding::ROOT, workload, input, cfg)
}

fn check_k(k: usize) -> Result<()> {
    if k == 0 || k > 64 {
        return Err(EngineError::BadConfig {
            what: format!("K must be in 1..=64, got {k}"),
        });
    }
    Ok(())
}

/// Runs `workload` as one job on an existing [`SharedFabric`], isolated
/// under `binding` (tags, trace events, and the returned trace are scoped
/// to it). The job's emulated NIC comes from `cfg.cluster.nic`, so a
/// throttled tenant paces only its own sends.
///
/// # Errors
/// `BadConfig` if `cfg.k` does not match the fabric's world size;
/// otherwise as [`run_uncoded`].
pub fn run_uncoded_on<W: Workload>(
    fabric: &SharedFabric,
    binding: JobBinding,
    workload: &W,
    input: Bytes,
    cfg: &EngineConfig,
) -> Result<JobOutcome> {
    let k = cfg.k;
    check_k(k)?;
    if k != fabric.k() {
        return Err(EngineError::BadConfig {
            what: format!("job wants K = {k} on a fabric of {} ranks", fabric.k()),
        });
    }
    let files = workload.format().split(&input, k);

    let run = fabric.run_job(binding, cfg.cluster.nic, files, |comm, file: Bytes| {
        node_main(workload, comm, file, cfg)
    })?;

    let mut outputs = Vec::with_capacity(k);
    let mut stats = RunStats::new(k, 1);
    let mut walls = Vec::with_capacity(k);
    for (rank, result) in run.results.into_iter().enumerate() {
        let (output, node_stats, wall) = result?;
        outputs.push(output);
        stats.per_node[rank] = node_stats;
        walls.push(wall);
    }
    Ok(JobOutcome {
        outputs,
        stats,
        trace: run.trace,
        spans: run.spans,
        wall: WallTimes::aggregate(&walls),
    })
}

type NodeResult = Result<(Vec<u8>, NodeStats, NodeWall)>;

fn node_main<W: Workload>(
    workload: &W,
    comm: &cts_net::Communicator,
    file: Bytes,
    cfg: &EngineConfig,
) -> NodeResult {
    let k = comm.world_size();
    let me = comm.rank();
    let mut stats = NodeStats::default();
    let mut wall = NodeWall::default();
    let pool = cfg.worker_pool();

    // ---- Map ----------------------------------------------------------
    comm.set_stage(stages::MAP);
    let timer = StageTimer::start();
    stats.map_input_bytes = file.len() as u64;
    stats.files_mapped = 1;
    let intermediates = workload.map_file_par(&file, k, &pool);
    debug_assert_eq!(intermediates.len(), k);
    wall.map = timer.stop();
    comm.barrier()?;

    // ---- Pack ---------------------------------------------------------
    comm.set_stage(stages::PACK_ENCODE);
    let timer = StageTimer::start();
    let mut packed: Vec<Option<Bytes>> = Vec::with_capacity(k);
    for (p, data) in intermediates.into_iter().enumerate() {
        if p == me {
            packed.push(Some(Bytes::from(data)));
        } else {
            stats.pack_bytes += data.len() as u64;
            packed.push(Some(Bytes::from(data)));
        }
    }
    wall.pack_encode = timer.stop();
    comm.barrier()?;

    // ---- Shuffle: serial unicast (Fig. 9(a)) ---------------------------
    comm.set_stage(stages::SHUFFLE);
    let timer = StageTimer::start();
    let mut received: Vec<Bytes> = Vec::with_capacity(k - 1);
    for sender in 0..k {
        if sender == me {
            // Staggered destination order (s+1, s+2, …): irrelevant for the
            // serial schedule, hotspot-free for the parallel-shuffle replay.
            for i in 1..k {
                let dst = (me + i) % k;
                let payload = packed[dst].take().expect("each partition sent once");
                stats.sent_bytes += payload.len() as u64;
                comm.send(dst, Tag::app(sender as u32), payload)?;
            }
        } else {
            let payload = comm.recv(sender, Tag::app(sender as u32))?;
            stats.recv_bytes += payload.len() as u64;
            received.push(payload);
        }
        if cfg.strict_serial_shuffle {
            comm.barrier()?;
        }
    }
    comm.barrier()?;
    wall.shuffle = timer.stop();

    // ---- Unpack --------------------------------------------------------
    comm.set_stage(stages::UNPACK_DECODE);
    let timer = StageTimer::start();
    let own = packed[me].take().expect("own partition kept");
    let mut partition_data =
        Vec::with_capacity(own.len() + received.iter().map(|b| b.len()).sum::<usize>());
    partition_data.extend_from_slice(&own);
    for buf in &received {
        stats.unpack_bytes += buf.len() as u64;
        partition_data.extend_from_slice(buf);
    }
    wall.unpack_decode = timer.stop();
    comm.barrier()?;

    // ---- Reduce --------------------------------------------------------
    comm.set_stage(stages::REDUCE);
    let timer = StageTimer::start();
    stats.reduce_input_bytes = partition_data.len() as u64;
    let output = workload.reduce_par(me, &partition_data, &pool);
    wall.reduce = timer.stop();
    comm.barrier()?;

    Ok((output, stats, wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::run_sequential;
    use crate::workload::InputFormat;

    /// Trivial workload: records are single bytes, partition = value % K,
    /// reduce sorts.
    struct ByteSort;

    impl Workload for ByteSort {
        fn name(&self) -> &str {
            "bytesort"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            let mut v = data.to_vec();
            v.sort_unstable();
            v
        }
    }

    fn sample_input(len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| ((i * 131 + 17) % 251) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn matches_sequential_reference() {
        let input = sample_input(1000);
        let cfg = EngineConfig::local(4, 1);
        let outcome = run_uncoded(&ByteSort, input.clone(), &cfg).unwrap();
        let reference = run_sequential(&ByteSort, &input, 4);
        assert_eq!(outcome.outputs, reference);
    }

    #[test]
    fn every_input_byte_lands_somewhere() {
        let input = sample_input(777);
        let outcome = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(3, 1)).unwrap();
        let total: usize = outcome.outputs.iter().map(|o| o.len()).sum();
        assert_eq!(total, input.len());
    }

    #[test]
    fn stats_account_for_shuffle_bytes() {
        let input = sample_input(1200);
        let outcome = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(4, 1)).unwrap();
        // Sent == received globally.
        assert_eq!(
            outcome.stats.total(|n| n.sent_bytes),
            outcome.stats.total(|n| n.recv_bytes)
        );
        // Trace shuffle bytes match node-side accounting.
        assert_eq!(
            outcome.trace.stage_bytes(stages::SHUFFLE),
            outcome.stats.shuffle_bytes()
        );
        // Communication load ≈ 1 - 1/K (uniform bytes).
        let load = outcome.stats.comm_load(input.len() as u64);
        assert!((load - 0.75).abs() < 0.05, "load {load}");
    }

    #[test]
    fn single_node_shuffles_nothing() {
        let input = sample_input(500);
        let outcome = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(1, 1)).unwrap();
        assert_eq!(outcome.stats.shuffle_bytes(), 0);
        let mut expect = input.to_vec();
        expect.sort_unstable();
        assert_eq!(outcome.outputs[0], expect);
    }

    #[test]
    fn strict_serial_shuffle_gives_same_answer() {
        let input = sample_input(900);
        let mut cfg = EngineConfig::local(3, 1);
        cfg.strict_serial_shuffle = true;
        let a = run_uncoded(&ByteSort, input.clone(), &cfg).unwrap();
        let b = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(3, 1)).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn works_over_tcp() {
        let input = sample_input(600);
        let outcome = run_uncoded(&ByteSort, input.clone(), &EngineConfig::tcp(3, 1)).unwrap();
        let reference = run_sequential(&ByteSort, &input, 3);
        assert_eq!(outcome.outputs, reference);
    }

    #[test]
    fn rejects_bad_k() {
        let err = run_uncoded(&ByteSort, Bytes::new(), &EngineConfig::local(0, 1)).unwrap_err();
        assert!(matches!(err, EngineError::BadConfig { .. }));
    }
}
