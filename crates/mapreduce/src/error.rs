//! Engine error type.

use cts_core::error::CodedError;
use cts_net::error::NetError;

/// Errors surfaced by the MapReduce engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine configuration is invalid (K/r out of range, mismatched
    /// cluster size, too many multicast groups for the tag space, …).
    BadConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// A transport or collective failure.
    Net(NetError),
    /// A coding-layer failure (malformed packet, missing intermediate, …).
    Coded(CodedError),
    /// The shuffle protocol was violated (wrong packet count, incomplete
    /// decode, unexpected sender, …) — typically caused by data corruption
    /// or fault injection.
    Protocol {
        /// Description of the violation.
        what: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadConfig { what } => write!(f, "bad engine config: {what}"),
            EngineError::Net(e) => write!(f, "network error: {e}"),
            EngineError::Coded(e) => write!(f, "coding error: {e}"),
            EngineError::Protocol { what } => write!(f, "shuffle protocol violation: {what}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Net(e) => Some(e),
            EngineError::Coded(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for EngineError {
    fn from(e: NetError) -> Self {
        EngineError::Net(e)
    }
}

impl From<CodedError> for EngineError {
    fn from(e: CodedError) -> Self {
        EngineError::Coded(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = NetError::Disconnected { rank: 2 }.into();
        assert!(e.to_string().contains("disconnected"));
        let e: EngineError = CodedError::InvalidParameters {
            what: "r too big".into(),
        }
        .into();
        assert!(e.to_string().contains("r too big"));
        let e = EngineError::Protocol {
            what: "missing packet".into(),
        };
        assert!(e.to_string().contains("missing packet"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: EngineError = NetError::Timeout { src: 0, tag: 1 }.into();
        assert!(e.source().is_some());
        let e = EngineError::BadConfig { what: "k".into() };
        assert!(e.source().is_none());
    }
}
