//! Engine error type.

use cts_core::error::CodedError;
use cts_net::error::NetError;
use cts_net::fault::CrashPoint;

/// A structured post-mortem for a job that failure handling could not (or
/// was not allowed to) save: who died, where, and which multicast groups
/// lost more senders than the MDS quorum tolerates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Ranks declared dead, ascending.
    pub dead: Vec<usize>,
    /// Multicast groups whose decode became unsatisfiable (≥ 2 dead
    /// senders: quorum needs any `r − 1` of `r`, so one death per group is
    /// the recovery capacity). Ascending group ids; empty when the failure
    /// was fatal for a different reason (stated in `what`).
    pub unrecoverable_groups: Vec<u64>,
    /// Human-readable summary of why the job could not be finished.
    pub what: String,
}

impl std::fmt::Display for JobReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dead ranks {:?}, {} unrecoverable group(s)",
            self.dead,
            self.unrecoverable_groups.len()
        )?;
        if !self.unrecoverable_groups.is_empty() {
            write!(f, " {:?}", self.unrecoverable_groups)?;
        }
        write!(f, ": {}", self.what)
    }
}

/// Errors surfaced by the MapReduce engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine configuration is invalid (K/r out of range, mismatched
    /// cluster size, too many multicast groups for the tag space, …).
    BadConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// A transport or collective failure.
    Net(NetError),
    /// A coding-layer failure (malformed packet, missing intermediate, …).
    Coded(CodedError),
    /// The shuffle protocol was violated (wrong packet count, incomplete
    /// decode, unexpected sender, …) — typically caused by data corruption
    /// or fault injection.
    Protocol {
        /// Description of the violation.
        what: String,
    },
    /// A rank died while recovery was off: the job fails fast with the
    /// crash's identity instead of hanging on the dead peer.
    RankDied {
        /// The rank that died.
        rank: usize,
        /// Where in the job it died.
        point: CrashPoint,
    },
    /// Recovery capacity was exhausted — the structured report names the
    /// dead ranks and the groups whose quorum became unsatisfiable.
    Unrecoverable(JobReport),
    /// The runtime refused the job at admission: its bounded queue is full
    /// (or it is shutting down). Backpressure surfaces here, at the
    /// submitter, instead of as a silent stall inside the runtime.
    Busy {
        /// Why admission refused (queue depth, shutdown, …).
        what: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadConfig { what } => write!(f, "bad engine config: {what}"),
            EngineError::Net(e) => write!(f, "network error: {e}"),
            EngineError::Coded(e) => write!(f, "coding error: {e}"),
            EngineError::Protocol { what } => write!(f, "shuffle protocol violation: {what}"),
            EngineError::RankDied { rank, point } => {
                write!(f, "rank {rank} died at {point} (recovery off)")
            }
            EngineError::Unrecoverable(report) => {
                write!(f, "unrecoverable failure: {report}")
            }
            EngineError::Busy { what } => write!(f, "job refused at admission: {what}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Net(e) => Some(e),
            EngineError::Coded(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for EngineError {
    fn from(e: NetError) -> Self {
        EngineError::Net(e)
    }
}

impl From<CodedError> for EngineError {
    fn from(e: CodedError) -> Self {
        EngineError::Coded(e)
    }
}

impl From<cts_net::admission::AdmissionError> for EngineError {
    fn from(e: cts_net::admission::AdmissionError) -> Self {
        EngineError::Busy {
            what: e.to_string(),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = NetError::Disconnected { rank: 2 }.into();
        assert!(e.to_string().contains("disconnected"));
        let e: EngineError = CodedError::InvalidParameters {
            what: "r too big".into(),
        }
        .into();
        assert!(e.to_string().contains("r too big"));
        let e = EngineError::Protocol {
            what: "missing packet".into(),
        };
        assert!(e.to_string().contains("missing packet"));
    }

    #[test]
    fn failure_variants_render_structured_reports() {
        let died = EngineError::RankDied {
            rank: 5,
            point: CrashPoint::MidMap,
        };
        assert_eq!(died.to_string(), "rank 5 died at mid-map (recovery off)");
        let report = JobReport {
            dead: vec![1, 4],
            unrecoverable_groups: vec![3, 17],
            what: "2 dead senders in one group exceeds the quorum margin".into(),
        };
        let e = EngineError::Unrecoverable(report.clone());
        let msg = e.to_string();
        assert!(msg.contains("[1, 4]"));
        assert!(msg.contains("2 unrecoverable group(s) [3, 17]"));
        assert!(msg.contains("quorum margin"));
        assert_eq!(e, EngineError::Unrecoverable(report));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: EngineError = NetError::Timeout { src: 0, tag: 1 }.into();
        assert!(e.source().is_some());
        let e = EngineError::BadConfig { what: "k".into() };
        assert!(e.source().is_none());
    }
}
