//! Inverted index — the RankedInvertedIndex-style workload the paper's
//! §I cites (its reference \[6\]) among the shuffle-bound applications.
//!
//! Input lines are `doc_id<TAB>text`. Map emits `(word, doc_id)` pairs
//! partitioned by word; reduce groups each word's postings into a sorted,
//! deduplicated list: `word: doc1,doc2,…\n`, sorted by word.
//!
//! Intermediate format per entry:
//! `[word_len: u16 LE][word][doc_len: u16 LE][doc_id]`.

use std::collections::BTreeMap;

use crate::workload::{InputFormat, Workload};

/// The inverted-index workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct InvertedIndex;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn push_entry(buf: &mut Vec<u8>, word: &[u8], doc: &[u8]) {
    buf.extend_from_slice(&(word.len() as u16).to_le_bytes());
    buf.extend_from_slice(word);
    buf.extend_from_slice(&(doc.len() as u16).to_le_bytes());
    buf.extend_from_slice(doc);
}

fn parse_entries(mut data: &[u8]) -> impl Iterator<Item = (&[u8], &[u8])> {
    std::iter::from_fn(move || {
        if data.len() < 2 {
            return None;
        }
        let wl = u16::from_le_bytes(data[..2].try_into().unwrap()) as usize;
        if data.len() < 2 + wl + 2 {
            return None;
        }
        let word = &data[2..2 + wl];
        let dl = u16::from_le_bytes(data[2 + wl..4 + wl].try_into().unwrap()) as usize;
        if data.len() < 4 + wl + dl {
            return None;
        }
        let doc = &data[4 + wl..4 + wl + dl];
        data = &data[4 + wl + dl..];
        Some((word, doc))
    })
}

impl Workload for InvertedIndex {
    fn name(&self) -> &str {
        "inverted-index"
    }

    fn format(&self) -> InputFormat {
        InputFormat::Lines
    }

    fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); num_partitions];
        for line in file.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let Some(tab) = line.iter().position(|&b| b == b'\t') else {
                continue; // malformed line: skip
            };
            let (doc, text) = (&line[..tab], &line[tab + 1..]);
            // Dedup words within the document deterministically.
            let mut words: Vec<&[u8]> = text
                .split(|&b| b.is_ascii_whitespace())
                .filter(|w| !w.is_empty())
                .collect();
            words.sort_unstable();
            words.dedup();
            for word in words {
                let p = (fnv1a(word) % num_partitions as u64) as usize;
                push_entry(&mut out[p], word, doc);
            }
        }
        out
    }

    fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
        let mut postings: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
        for (word, doc) in parse_entries(data) {
            postings
                .entry(word.to_vec())
                .or_default()
                .push(doc.to_vec());
        }
        let mut out = Vec::new();
        for (word, mut docs) in postings {
            docs.sort_unstable();
            docs.dedup();
            out.extend_from_slice(&word);
            out.extend_from_slice(b": ");
            for (i, d) in docs.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                out.extend_from_slice(d);
            }
            out.push(b'\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::run_sequential;
    use bytes::Bytes;

    #[test]
    fn builds_postings() {
        let input = Bytes::from_static(b"d1\tthe quick fox\nd2\tthe lazy dog\nd3\tquick dog\n");
        let outputs = run_sequential(&InvertedIndex, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        assert!(text.contains("the: d1,d2\n"), "{text}");
        assert!(text.contains("quick: d1,d3\n"), "{text}");
        assert!(text.contains("dog: d2,d3\n"), "{text}");
        assert!(text.contains("fox: d1\n"), "{text}");
    }

    #[test]
    fn within_document_duplicates_collapse() {
        let input = Bytes::from_static(b"d1\tbuffalo buffalo buffalo\n");
        let outputs = run_sequential(&InvertedIndex, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        assert_eq!(text, "buffalo: d1\n");
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let input = Bytes::from_static(b"no-tab-here\nd2\tok\n");
        let outputs = run_sequential(&InvertedIndex, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        assert_eq!(text, "ok: d2\n");
    }

    #[test]
    fn entries_roundtrip() {
        let mut buf = Vec::new();
        push_entry(&mut buf, b"word", b"doc-42");
        push_entry(&mut buf, b"w2", b"d");
        let got: Vec<(&[u8], &[u8])> = parse_entries(&buf).collect();
        assert_eq!(
            got,
            vec![
                (b"word".as_ref(), b"doc-42".as_ref()),
                (b"w2".as_ref(), b"d".as_ref())
            ]
        );
    }

    #[test]
    fn output_is_sorted_by_word() {
        let input = Bytes::from_static(b"d1\tzebra apple mango\n");
        let outputs = run_sequential(&InvertedIndex, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["apple: d1", "mango: d1", "zebra: d1"]);
    }
}
