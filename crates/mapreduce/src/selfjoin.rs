//! SelfJoin — the other workload the paper names explicitly among the
//! shuffle-bound applications (§I via its reference \[6\], and §VI:
//! "coded versions of many other distributed computing applications
//! whose performance is limited by data shuffling (e.g., Grep,
//! SelfJoin)").
//!
//! Input lines are `key<TAB>value`. The join emits, for every key, all
//! ordered pairs of *distinct* values seen with that key — the classic
//! PUMA SelfJoin benchmark shape. Map partitions by key hash;
//! intermediates are `(key, value)` entries; reduce groups, sorts, and
//! expands pairs, emitting `key: v1×v2\n` lines sorted lexicographically.

use std::collections::BTreeMap;

use crate::workload::{InputFormat, Workload};

/// The SelfJoin workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfJoin;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn push_entry(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(&(value.len() as u16).to_le_bytes());
    buf.extend_from_slice(value);
}

fn parse_entries(mut data: &[u8]) -> impl Iterator<Item = (&[u8], &[u8])> {
    std::iter::from_fn(move || {
        if data.len() < 2 {
            return None;
        }
        let kl = u16::from_le_bytes(data[..2].try_into().unwrap()) as usize;
        if data.len() < 2 + kl + 2 {
            return None;
        }
        let key = &data[2..2 + kl];
        let vl = u16::from_le_bytes(data[2 + kl..4 + kl].try_into().unwrap()) as usize;
        if data.len() < 4 + kl + vl {
            return None;
        }
        let value = &data[4 + kl..4 + kl + vl];
        data = &data[4 + kl + vl..];
        Some((key, value))
    })
}

impl Workload for SelfJoin {
    fn name(&self) -> &str {
        "selfjoin"
    }

    fn format(&self) -> InputFormat {
        InputFormat::Lines
    }

    fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); num_partitions];
        for line in file.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let Some(tab) = line.iter().position(|&b| b == b'\t') else {
                continue;
            };
            let (key, value) = (&line[..tab], &line[tab + 1..]);
            let p = (fnv1a(key) % num_partitions as u64) as usize;
            push_entry(&mut out[p], key, value);
        }
        out
    }

    fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
        let mut by_key: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
        for (key, value) in parse_entries(data) {
            by_key.entry(key.to_vec()).or_default().push(value.to_vec());
        }
        let mut out = Vec::new();
        for (key, mut values) in by_key {
            values.sort_unstable();
            values.dedup();
            for a in &values {
                for b in &values {
                    if a < b {
                        out.extend_from_slice(&key);
                        out.extend_from_slice(b": ");
                        out.extend_from_slice(a);
                        out.push(b'x');
                        out.extend_from_slice(b);
                        out.push(b'\n');
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::run_sequential;
    use bytes::Bytes;

    #[test]
    fn joins_values_sharing_a_key() {
        let input = Bytes::from_static(b"k1\ta\nk1\tb\nk1\tc\nk2\tx\n");
        let outputs = run_sequential(&SelfJoin, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        assert!(text.contains("k1: axb\n"));
        assert!(text.contains("k1: axc\n"));
        assert!(text.contains("k1: bxc\n"));
        // Singleton keys produce no pairs.
        assert!(!text.contains("k2"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn duplicate_values_collapse() {
        let input = Bytes::from_static(b"k\tv\nk\tv\nk\tw\n");
        let outputs = run_sequential(&SelfJoin, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        assert_eq!(text, "k: vxw\n");
    }

    #[test]
    fn pairs_are_unordered_and_unique() {
        let input = Bytes::from_static(b"k\tb\nk\ta\n");
        let outputs = run_sequential(&SelfJoin, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        // Emitted once, smaller value first.
        assert_eq!(text, "k: axb\n");
    }

    #[test]
    fn keys_route_to_one_partition() {
        let input = Bytes::from_static(b"alpha\t1\nalpha\t2\nbeta\t3\nbeta\t4\n");
        let parts = SelfJoin.map_file(&input, 4);
        let non_empty = parts.iter().filter(|p| !p.is_empty()).count();
        assert!(non_empty <= 2);
        // All alpha entries share a partition.
        let p_alpha = (fnv1a(b"alpha") % 4) as usize;
        let entries: Vec<(&[u8], &[u8])> = parse_entries(&parts[p_alpha]).collect();
        assert!(entries.iter().filter(|(k, _)| *k == b"alpha").count() == 2);
    }

    #[test]
    fn entry_roundtrip() {
        let mut buf = Vec::new();
        push_entry(&mut buf, b"key", b"value-1");
        push_entry(&mut buf, b"", b"v");
        let got: Vec<(&[u8], &[u8])> = parse_entries(&buf).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (b"key".as_ref(), b"value-1".as_ref()));
        assert_eq!(got[1].1, b"v");
    }

    #[test]
    fn malformed_lines_skipped() {
        let input = Bytes::from_static(b"no-tab\nk\ta\nk\tb\n");
        let outputs = run_sequential(&SelfJoin, &input, 2);
        let all: String = outputs
            .iter()
            .map(|o| String::from_utf8_lossy(o).to_string())
            .collect();
        assert_eq!(all.trim(), "k: axb");
    }
}
