//! Reference execution and output-equivalence checking.

use bytes::Bytes;

use crate::workload::Workload;

/// Runs `workload` sequentially on one machine: the whole input is mapped
/// as a single file and each partition is reduced directly. This is the
/// ground truth both engines must match (their intermediates arrive in
/// different concatenation orders, which order-insensitive reduces absorb).
pub fn run_sequential<W: Workload>(workload: &W, input: &Bytes, k: usize) -> Vec<Vec<u8>> {
    let intermediates = workload.map_file(input, k);
    intermediates
        .into_iter()
        .enumerate()
        .map(|(p, data)| workload.reduce(p, &data))
        .collect()
}

/// Compares two engine outputs partition by partition; returns the indices
/// of mismatching partitions (empty means equivalent).
pub fn diff_outputs(a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<usize> {
    let mut bad: Vec<usize> = (0..a.len().max(b.len()))
        .filter(|&i| a.get(i) != b.get(i))
        .collect();
    bad.dedup();
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::InputFormat;

    struct CountBytes;

    impl Workload for CountBytes {
        fn name(&self) -> &str {
            "countbytes"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            (data.len() as u64).to_le_bytes().to_vec()
        }
    }

    #[test]
    fn sequential_reduces_every_partition() {
        let input = Bytes::from_static(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let outputs = run_sequential(&CountBytes, &input, 4);
        assert_eq!(outputs.len(), 4);
        let total: u64 = outputs
            .iter()
            .map(|o| u64::from_le_bytes(o[..8].try_into().unwrap()))
            .sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn diff_outputs_finds_mismatches() {
        let a = vec![vec![1u8], vec![2], vec![3]];
        let mut b = a.clone();
        assert!(diff_outputs(&a, &b).is_empty());
        b[1] = vec![9];
        assert_eq!(diff_outputs(&a, &b), vec![1]);
        b.pop();
        assert_eq!(diff_outputs(&a, &b), vec![1, 2]);
    }
}
